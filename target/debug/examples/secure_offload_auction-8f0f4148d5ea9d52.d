/root/repo/target/debug/examples/secure_offload_auction-8f0f4148d5ea9d52.d: crates/myrtus/../../examples/secure_offload_auction.rs

/root/repo/target/debug/examples/secure_offload_auction-8f0f4148d5ea9d52: crates/myrtus/../../examples/secure_offload_auction.rs

crates/myrtus/../../examples/secure_offload_auction.rs:
