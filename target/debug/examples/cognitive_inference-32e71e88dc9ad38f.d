/root/repo/target/debug/examples/cognitive_inference-32e71e88dc9ad38f.d: crates/myrtus/../../examples/cognitive_inference.rs Cargo.toml

/root/repo/target/debug/examples/libcognitive_inference-32e71e88dc9ad38f.rmeta: crates/myrtus/../../examples/cognitive_inference.rs Cargo.toml

crates/myrtus/../../examples/cognitive_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
