/root/repo/target/debug/examples/secure_offload_auction-c1c609820c1a32e9.d: crates/myrtus/../../examples/secure_offload_auction.rs

/root/repo/target/debug/examples/secure_offload_auction-c1c609820c1a32e9: crates/myrtus/../../examples/secure_offload_auction.rs

crates/myrtus/../../examples/secure_offload_auction.rs:
