/root/repo/target/debug/examples/telerehab_dpe_flow-f31383dd135deb5f.d: crates/myrtus/../../examples/telerehab_dpe_flow.rs

/root/repo/target/debug/examples/telerehab_dpe_flow-f31383dd135deb5f: crates/myrtus/../../examples/telerehab_dpe_flow.rs

crates/myrtus/../../examples/telerehab_dpe_flow.rs:
