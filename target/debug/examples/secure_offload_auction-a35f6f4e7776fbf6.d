/root/repo/target/debug/examples/secure_offload_auction-a35f6f4e7776fbf6.d: crates/myrtus/../../examples/secure_offload_auction.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_offload_auction-a35f6f4e7776fbf6.rmeta: crates/myrtus/../../examples/secure_offload_auction.rs Cargo.toml

crates/myrtus/../../examples/secure_offload_auction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
