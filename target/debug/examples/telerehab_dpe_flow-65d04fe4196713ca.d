/root/repo/target/debug/examples/telerehab_dpe_flow-65d04fe4196713ca.d: crates/myrtus/../../examples/telerehab_dpe_flow.rs

/root/repo/target/debug/examples/telerehab_dpe_flow-65d04fe4196713ca: crates/myrtus/../../examples/telerehab_dpe_flow.rs

crates/myrtus/../../examples/telerehab_dpe_flow.rs:
