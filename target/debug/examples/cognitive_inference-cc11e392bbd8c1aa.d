/root/repo/target/debug/examples/cognitive_inference-cc11e392bbd8c1aa.d: crates/myrtus/../../examples/cognitive_inference.rs

/root/repo/target/debug/examples/cognitive_inference-cc11e392bbd8c1aa: crates/myrtus/../../examples/cognitive_inference.rs

crates/myrtus/../../examples/cognitive_inference.rs:
