/root/repo/target/debug/examples/telerehab_dpe_flow-783e685cfadca583.d: crates/myrtus/../../examples/telerehab_dpe_flow.rs Cargo.toml

/root/repo/target/debug/examples/libtelerehab_dpe_flow-783e685cfadca583.rmeta: crates/myrtus/../../examples/telerehab_dpe_flow.rs Cargo.toml

crates/myrtus/../../examples/telerehab_dpe_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
