/root/repo/target/debug/examples/smart_mobility-bce3ade1e78f7011.d: crates/myrtus/../../examples/smart_mobility.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_mobility-bce3ade1e78f7011.rmeta: crates/myrtus/../../examples/smart_mobility.rs Cargo.toml

crates/myrtus/../../examples/smart_mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
