/root/repo/target/debug/examples/quickstart-15886feed3a52c0b.d: crates/myrtus/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-15886feed3a52c0b: crates/myrtus/../../examples/quickstart.rs

crates/myrtus/../../examples/quickstart.rs:
