/root/repo/target/debug/examples/quickstart-80d7e7a0592fc02d.d: crates/myrtus/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-80d7e7a0592fc02d.rmeta: crates/myrtus/../../examples/quickstart.rs Cargo.toml

crates/myrtus/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
