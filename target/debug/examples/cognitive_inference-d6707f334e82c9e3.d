/root/repo/target/debug/examples/cognitive_inference-d6707f334e82c9e3.d: crates/myrtus/../../examples/cognitive_inference.rs

/root/repo/target/debug/examples/cognitive_inference-d6707f334e82c9e3: crates/myrtus/../../examples/cognitive_inference.rs

crates/myrtus/../../examples/cognitive_inference.rs:
