/root/repo/target/debug/examples/smart_mobility-48273ab06f4d19ea.d: crates/myrtus/../../examples/smart_mobility.rs

/root/repo/target/debug/examples/smart_mobility-48273ab06f4d19ea: crates/myrtus/../../examples/smart_mobility.rs

crates/myrtus/../../examples/smart_mobility.rs:
