/root/repo/target/debug/examples/smart_mobility-7519d2ea4fdb09e9.d: crates/myrtus/../../examples/smart_mobility.rs

/root/repo/target/debug/examples/smart_mobility-7519d2ea4fdb09e9: crates/myrtus/../../examples/smart_mobility.rs

crates/myrtus/../../examples/smart_mobility.rs:
