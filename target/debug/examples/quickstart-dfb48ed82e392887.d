/root/repo/target/debug/examples/quickstart-dfb48ed82e392887.d: crates/myrtus/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dfb48ed82e392887: crates/myrtus/../../examples/quickstart.rs

crates/myrtus/../../examples/quickstart.rs:
