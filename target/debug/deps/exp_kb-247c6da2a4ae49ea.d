/root/repo/target/debug/deps/exp_kb-247c6da2a4ae49ea.d: crates/bench/src/bin/exp_kb.rs Cargo.toml

/root/repo/target/debug/deps/libexp_kb-247c6da2a4ae49ea.rmeta: crates/bench/src/bin/exp_kb.rs Cargo.toml

crates/bench/src/bin/exp_kb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
