/root/repo/target/debug/deps/myrtus-4e5bfae570995b58.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus-4e5bfae570995b58.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs Cargo.toml

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
