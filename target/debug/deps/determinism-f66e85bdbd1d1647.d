/root/repo/target/debug/deps/determinism-f66e85bdbd1d1647.d: crates/myrtus/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-f66e85bdbd1d1647: crates/myrtus/../../tests/determinism.rs

crates/myrtus/../../tests/determinism.rs:
