/root/repo/target/debug/deps/figure4-3015c8f5c662643b.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-3015c8f5c662643b: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
