/root/repo/target/debug/deps/end_to_end-a683a8295191ab8a.d: crates/myrtus/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a683a8295191ab8a: crates/myrtus/../../tests/end_to_end.rs

crates/myrtus/../../tests/end_to_end.rs:
