/root/repo/target/debug/deps/placement_eval-336a8e592b752df2.d: crates/bench/benches/placement_eval.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_eval-336a8e592b752df2.rmeta: crates/bench/benches/placement_eval.rs Cargo.toml

crates/bench/benches/placement_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
