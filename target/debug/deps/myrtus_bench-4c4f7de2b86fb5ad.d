/root/repo/target/debug/deps/myrtus_bench-4c4f7de2b86fb5ad.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmyrtus_bench-4c4f7de2b86fb5ad.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmyrtus_bench-4c4f7de2b86fb5ad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
