/root/repo/target/debug/deps/myrtus_dpe-fa57efa0ea2b5aab.d: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_dpe-fa57efa0ea2b5aab.rmeta: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs Cargo.toml

crates/dpe/src/lib.rs:
crates/dpe/src/cgra.rs:
crates/dpe/src/codegen.rs:
crates/dpe/src/deploy.rs:
crates/dpe/src/dse.rs:
crates/dpe/src/flow.rs:
crates/dpe/src/hls.rs:
crates/dpe/src/ir.rs:
crates/dpe/src/kernels.rs:
crates/dpe/src/mdc.rs:
crates/dpe/src/nn.rs:
crates/dpe/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
