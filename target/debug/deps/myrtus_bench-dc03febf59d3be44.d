/root/repo/target/debug/deps/myrtus_bench-dc03febf59d3be44.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmyrtus_bench-dc03febf59d3be44.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmyrtus_bench-dc03febf59d3be44.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
