/root/repo/target/debug/deps/exp_cgra-afeb47c5aa1792a8.d: crates/bench/src/bin/exp_cgra.rs

/root/repo/target/debug/deps/exp_cgra-afeb47c5aa1792a8: crates/bench/src/bin/exp_cgra.rs

crates/bench/src/bin/exp_cgra.rs:
