/root/repo/target/debug/deps/myrtus_workload-7c93b73af2e8ca26.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/myrtus_workload-7c93b73af2e8ca26: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/compile.rs:
crates/workload/src/graph.rs:
crates/workload/src/opset.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/tosca.rs:
crates/workload/src/trace.rs:
