/root/repo/target/debug/deps/myrtus_dpe-17ded6786ce9db33.d: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs

/root/repo/target/debug/deps/myrtus_dpe-17ded6786ce9db33: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs

crates/dpe/src/lib.rs:
crates/dpe/src/cgra.rs:
crates/dpe/src/codegen.rs:
crates/dpe/src/deploy.rs:
crates/dpe/src/dse.rs:
crates/dpe/src/flow.rs:
crates/dpe/src/hls.rs:
crates/dpe/src/ir.rs:
crates/dpe/src/kernels.rs:
crates/dpe/src/mdc.rs:
crates/dpe/src/nn.rs:
crates/dpe/src/transform.rs:
