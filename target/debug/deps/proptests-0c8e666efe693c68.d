/root/repo/target/debug/deps/proptests-0c8e666efe693c68.d: crates/myrtus/../../tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-0c8e666efe693c68.rmeta: crates/myrtus/../../tests/proptests.rs Cargo.toml

crates/myrtus/../../tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
