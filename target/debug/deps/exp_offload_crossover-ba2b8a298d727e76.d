/root/repo/target/debug/deps/exp_offload_crossover-ba2b8a298d727e76.d: crates/bench/src/bin/exp_offload_crossover.rs Cargo.toml

/root/repo/target/debug/deps/libexp_offload_crossover-ba2b8a298d727e76.rmeta: crates/bench/src/bin/exp_offload_crossover.rs Cargo.toml

crates/bench/src/bin/exp_offload_crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
