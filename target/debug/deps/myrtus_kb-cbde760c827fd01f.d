/root/repo/target/debug/deps/myrtus_kb-cbde760c827fd01f.d: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

/root/repo/target/debug/deps/libmyrtus_kb-cbde760c827fd01f.rlib: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

/root/repo/target/debug/deps/libmyrtus_kb-cbde760c827fd01f.rmeta: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

crates/kb/src/lib.rs:
crates/kb/src/command.rs:
crates/kb/src/facade.rs:
crates/kb/src/history.rs:
crates/kb/src/raft.rs:
crates/kb/src/registry.rs:
crates/kb/src/store.rs:
