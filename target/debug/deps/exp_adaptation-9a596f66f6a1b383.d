/root/repo/target/debug/deps/exp_adaptation-9a596f66f6a1b383.d: crates/bench/src/bin/exp_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adaptation-9a596f66f6a1b383.rmeta: crates/bench/src/bin/exp_adaptation.rs Cargo.toml

crates/bench/src/bin/exp_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
