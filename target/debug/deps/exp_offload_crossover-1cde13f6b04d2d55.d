/root/repo/target/debug/deps/exp_offload_crossover-1cde13f6b04d2d55.d: crates/bench/src/bin/exp_offload_crossover.rs

/root/repo/target/debug/deps/exp_offload_crossover-1cde13f6b04d2d55: crates/bench/src/bin/exp_offload_crossover.rs

crates/bench/src/bin/exp_offload_crossover.rs:
