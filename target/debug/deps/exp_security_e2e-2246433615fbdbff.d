/root/repo/target/debug/deps/exp_security_e2e-2246433615fbdbff.d: crates/bench/src/bin/exp_security_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libexp_security_e2e-2246433615fbdbff.rmeta: crates/bench/src/bin/exp_security_e2e.rs Cargo.toml

crates/bench/src/bin/exp_security_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
