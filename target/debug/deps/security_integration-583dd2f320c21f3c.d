/root/repo/target/debug/deps/security_integration-583dd2f320c21f3c.d: crates/myrtus/../../tests/security_integration.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_integration-583dd2f320c21f3c.rmeta: crates/myrtus/../../tests/security_integration.rs Cargo.toml

crates/myrtus/../../tests/security_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
