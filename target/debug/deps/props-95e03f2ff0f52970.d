/root/repo/target/debug/deps/props-95e03f2ff0f52970.d: crates/dpe/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-95e03f2ff0f52970.rmeta: crates/dpe/tests/props.rs Cargo.toml

crates/dpe/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
