/root/repo/target/debug/deps/figure2-d887f8c8fdb9f94e.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-d887f8c8fdb9f94e: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
