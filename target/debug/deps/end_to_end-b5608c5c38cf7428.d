/root/repo/target/debug/deps/end_to_end-b5608c5c38cf7428.d: crates/myrtus/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b5608c5c38cf7428: crates/myrtus/../../tests/end_to_end.rs

crates/myrtus/../../tests/end_to_end.rs:
