/root/repo/target/debug/deps/myrtus_bench-5ef52001d648100d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/myrtus_bench-5ef52001d648100d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
