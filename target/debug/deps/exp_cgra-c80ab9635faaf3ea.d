/root/repo/target/debug/deps/exp_cgra-c80ab9635faaf3ea.d: crates/bench/src/bin/exp_cgra.rs Cargo.toml

/root/repo/target/debug/deps/libexp_cgra-c80ab9635faaf3ea.rmeta: crates/bench/src/bin/exp_cgra.rs Cargo.toml

crates/bench/src/bin/exp_cgra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
