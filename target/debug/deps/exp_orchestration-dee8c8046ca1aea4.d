/root/repo/target/debug/deps/exp_orchestration-dee8c8046ca1aea4.d: crates/bench/src/bin/exp_orchestration.rs Cargo.toml

/root/repo/target/debug/deps/libexp_orchestration-dee8c8046ca1aea4.rmeta: crates/bench/src/bin/exp_orchestration.rs Cargo.toml

crates/bench/src/bin/exp_orchestration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
