/root/repo/target/debug/deps/security_integration-8bf78c88583aeecb.d: crates/myrtus/../../tests/security_integration.rs

/root/repo/target/debug/deps/security_integration-8bf78c88583aeecb: crates/myrtus/../../tests/security_integration.rs

crates/myrtus/../../tests/security_integration.rs:
