/root/repo/target/debug/deps/exp_offload_crossover-76769ec005640862.d: crates/bench/src/bin/exp_offload_crossover.rs Cargo.toml

/root/repo/target/debug/deps/libexp_offload_crossover-76769ec005640862.rmeta: crates/bench/src/bin/exp_offload_crossover.rs Cargo.toml

crates/bench/src/bin/exp_offload_crossover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
