/root/repo/target/debug/deps/myrtus_mirto-3d0813e5bb602200.d: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_mirto-3d0813e5bb602200.rmeta: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs Cargo.toml

crates/mirto/src/lib.rs:
crates/mirto/src/agent.rs:
crates/mirto/src/api.rs:
crates/mirto/src/deployer.rs:
crates/mirto/src/engine.rs:
crates/mirto/src/fl.rs:
crates/mirto/src/frevo.rs:
crates/mirto/src/images.rs:
crates/mirto/src/managers/mod.rs:
crates/mirto/src/managers/network.rs:
crates/mirto/src/managers/node.rs:
crates/mirto/src/managers/privsec.rs:
crates/mirto/src/managers/wl.rs:
crates/mirto/src/placement.rs:
crates/mirto/src/policies.rs:
crates/mirto/src/rl.rs:
crates/mirto/src/swarm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
