/root/repo/target/debug/deps/table1-7a9392362a5878ec.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7a9392362a5878ec: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
