/root/repo/target/debug/deps/exp_frevo-80f979257f60d5f6.d: crates/bench/src/bin/exp_frevo.rs Cargo.toml

/root/repo/target/debug/deps/libexp_frevo-80f979257f60d5f6.rmeta: crates/bench/src/bin/exp_frevo.rs Cargo.toml

crates/bench/src/bin/exp_frevo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
