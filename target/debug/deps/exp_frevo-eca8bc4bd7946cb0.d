/root/repo/target/debug/deps/exp_frevo-eca8bc4bd7946cb0.d: crates/bench/src/bin/exp_frevo.rs

/root/repo/target/debug/deps/exp_frevo-eca8bc4bd7946cb0: crates/bench/src/bin/exp_frevo.rs

crates/bench/src/bin/exp_frevo.rs:
