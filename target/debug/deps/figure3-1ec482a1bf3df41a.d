/root/repo/target/debug/deps/figure3-1ec482a1bf3df41a.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-1ec482a1bf3df41a: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
