/root/repo/target/debug/deps/kb_integration-c0d83e83b4535ae2.d: crates/myrtus/../../tests/kb_integration.rs Cargo.toml

/root/repo/target/debug/deps/libkb_integration-c0d83e83b4535ae2.rmeta: crates/myrtus/../../tests/kb_integration.rs Cargo.toml

crates/myrtus/../../tests/kb_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
