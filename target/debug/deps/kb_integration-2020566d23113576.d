/root/repo/target/debug/deps/kb_integration-2020566d23113576.d: crates/myrtus/../../tests/kb_integration.rs

/root/repo/target/debug/deps/kb_integration-2020566d23113576: crates/myrtus/../../tests/kb_integration.rs

crates/myrtus/../../tests/kb_integration.rs:
