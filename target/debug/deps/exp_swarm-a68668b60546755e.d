/root/repo/target/debug/deps/exp_swarm-a68668b60546755e.d: crates/bench/src/bin/exp_swarm.rs

/root/repo/target/debug/deps/exp_swarm-a68668b60546755e: crates/bench/src/bin/exp_swarm.rs

crates/bench/src/bin/exp_swarm.rs:
