/root/repo/target/debug/deps/determinism-da7e65d286a05c70.d: crates/myrtus/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-da7e65d286a05c70: crates/myrtus/../../tests/determinism.rs

crates/myrtus/../../tests/determinism.rs:
