/root/repo/target/debug/deps/figure1-ed9149b2df87b1c9.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-ed9149b2df87b1c9: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
