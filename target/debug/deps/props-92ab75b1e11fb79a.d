/root/repo/target/debug/deps/props-92ab75b1e11fb79a.d: crates/kb/tests/props.rs

/root/repo/target/debug/deps/props-92ab75b1e11fb79a: crates/kb/tests/props.rs

crates/kb/tests/props.rs:
