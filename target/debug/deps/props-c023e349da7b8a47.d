/root/repo/target/debug/deps/props-c023e349da7b8a47.d: crates/dpe/tests/props.rs

/root/repo/target/debug/deps/props-c023e349da7b8a47: crates/dpe/tests/props.rs

crates/dpe/tests/props.rs:
