/root/repo/target/debug/deps/exp_operating_points-4c710829344de8f7.d: crates/bench/src/bin/exp_operating_points.rs

/root/repo/target/debug/deps/exp_operating_points-4c710829344de8f7: crates/bench/src/bin/exp_operating_points.rs

crates/bench/src/bin/exp_operating_points.rs:
