/root/repo/target/debug/deps/exp_adaptation-5ff9503f75e9fb71.d: crates/bench/src/bin/exp_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libexp_adaptation-5ff9503f75e9fb71.rmeta: crates/bench/src/bin/exp_adaptation.rs Cargo.toml

crates/bench/src/bin/exp_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
