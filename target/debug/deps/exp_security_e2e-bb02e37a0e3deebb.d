/root/repo/target/debug/deps/exp_security_e2e-bb02e37a0e3deebb.d: crates/bench/src/bin/exp_security_e2e.rs

/root/repo/target/debug/deps/exp_security_e2e-bb02e37a0e3deebb: crates/bench/src/bin/exp_security_e2e.rs

crates/bench/src/bin/exp_security_e2e.rs:
