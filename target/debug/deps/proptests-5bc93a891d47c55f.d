/root/repo/target/debug/deps/proptests-5bc93a891d47c55f.d: crates/myrtus/../../tests/proptests.rs

/root/repo/target/debug/deps/proptests-5bc93a891d47c55f: crates/myrtus/../../tests/proptests.rs

crates/myrtus/../../tests/proptests.rs:
