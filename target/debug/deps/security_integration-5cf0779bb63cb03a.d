/root/repo/target/debug/deps/security_integration-5cf0779bb63cb03a.d: crates/myrtus/../../tests/security_integration.rs

/root/repo/target/debug/deps/security_integration-5cf0779bb63cb03a: crates/myrtus/../../tests/security_integration.rs

crates/myrtus/../../tests/security_integration.rs:
