/root/repo/target/debug/deps/myrtus-c8ba015ddf6f33b6.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/libmyrtus-c8ba015ddf6f33b6.rlib: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/libmyrtus-c8ba015ddf6f33b6.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
