/root/repo/target/debug/deps/props-883eb2fb8ef47aa3.d: crates/continuum/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-883eb2fb8ef47aa3.rmeta: crates/continuum/tests/props.rs Cargo.toml

crates/continuum/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
