/root/repo/target/debug/deps/myrtus_kb-d52e01b3c39ee93e.d: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_kb-d52e01b3c39ee93e.rmeta: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs Cargo.toml

crates/kb/src/lib.rs:
crates/kb/src/command.rs:
crates/kb/src/facade.rs:
crates/kb/src/history.rs:
crates/kb/src/raft.rs:
crates/kb/src/registry.rs:
crates/kb/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
