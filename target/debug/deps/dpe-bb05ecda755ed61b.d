/root/repo/target/debug/deps/dpe-bb05ecda755ed61b.d: crates/bench/benches/dpe.rs Cargo.toml

/root/repo/target/debug/deps/libdpe-bb05ecda755ed61b.rmeta: crates/bench/benches/dpe.rs Cargo.toml

crates/bench/benches/dpe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
