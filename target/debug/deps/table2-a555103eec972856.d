/root/repo/target/debug/deps/table2-a555103eec972856.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a555103eec972856: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
