/root/repo/target/debug/deps/end_to_end-7e4af88d67e21ee6.d: crates/myrtus/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-7e4af88d67e21ee6.rmeta: crates/myrtus/../../tests/end_to_end.rs Cargo.toml

crates/myrtus/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
