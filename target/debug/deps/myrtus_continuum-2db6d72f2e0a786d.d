/root/repo/target/debug/deps/myrtus_continuum-2db6d72f2e0a786d.d: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

/root/repo/target/debug/deps/libmyrtus_continuum-2db6d72f2e0a786d.rlib: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

/root/repo/target/debug/deps/libmyrtus_continuum-2db6d72f2e0a786d.rmeta: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

crates/continuum/src/lib.rs:
crates/continuum/src/cluster.rs:
crates/continuum/src/energy.rs:
crates/continuum/src/engine.rs:
crates/continuum/src/fault.rs:
crates/continuum/src/ids.rs:
crates/continuum/src/monitor.rs:
crates/continuum/src/net.rs:
crates/continuum/src/node.rs:
crates/continuum/src/stats.rs:
crates/continuum/src/task.rs:
crates/continuum/src/time.rs:
crates/continuum/src/topology.rs:
