/root/repo/target/debug/deps/myrtus_bench-059bd7a6919484d6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/myrtus_bench-059bd7a6919484d6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
