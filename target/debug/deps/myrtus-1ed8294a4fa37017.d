/root/repo/target/debug/deps/myrtus-1ed8294a4fa37017.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/myrtus-1ed8294a4fa37017: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
