/root/repo/target/debug/deps/figure1-2d4a24a36ca80d42.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-2d4a24a36ca80d42: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
