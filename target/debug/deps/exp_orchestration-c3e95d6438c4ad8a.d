/root/repo/target/debug/deps/exp_orchestration-c3e95d6438c4ad8a.d: crates/bench/src/bin/exp_orchestration.rs

/root/repo/target/debug/deps/exp_orchestration-c3e95d6438c4ad8a: crates/bench/src/bin/exp_orchestration.rs

crates/bench/src/bin/exp_orchestration.rs:
