/root/repo/target/debug/deps/exp_federated-fe27d78ca4c77ebd.d: crates/bench/src/bin/exp_federated.rs

/root/repo/target/debug/deps/exp_federated-fe27d78ca4c77ebd: crates/bench/src/bin/exp_federated.rs

crates/bench/src/bin/exp_federated.rs:
