/root/repo/target/debug/deps/myrtus_bench-466a7943f472c287.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_bench-466a7943f472c287.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
