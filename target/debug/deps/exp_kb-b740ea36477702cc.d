/root/repo/target/debug/deps/exp_kb-b740ea36477702cc.d: crates/bench/src/bin/exp_kb.rs

/root/repo/target/debug/deps/exp_kb-b740ea36477702cc: crates/bench/src/bin/exp_kb.rs

crates/bench/src/bin/exp_kb.rs:
