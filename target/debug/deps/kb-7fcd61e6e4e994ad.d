/root/repo/target/debug/deps/kb-7fcd61e6e4e994ad.d: crates/bench/benches/kb.rs Cargo.toml

/root/repo/target/debug/deps/libkb-7fcd61e6e4e994ad.rmeta: crates/bench/benches/kb.rs Cargo.toml

crates/bench/benches/kb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
