/root/repo/target/debug/deps/proptests-dc4359191e5e3ad9.d: crates/myrtus/../../tests/proptests.rs

/root/repo/target/debug/deps/proptests-dc4359191e5e3ad9: crates/myrtus/../../tests/proptests.rs

crates/myrtus/../../tests/proptests.rs:
