/root/repo/target/debug/deps/exp_swarm-8ab0f30145d4dd05.d: crates/bench/src/bin/exp_swarm.rs

/root/repo/target/debug/deps/exp_swarm-8ab0f30145d4dd05: crates/bench/src/bin/exp_swarm.rs

crates/bench/src/bin/exp_swarm.rs:
