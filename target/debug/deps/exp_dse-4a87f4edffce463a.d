/root/repo/target/debug/deps/exp_dse-4a87f4edffce463a.d: crates/bench/src/bin/exp_dse.rs

/root/repo/target/debug/deps/exp_dse-4a87f4edffce463a: crates/bench/src/bin/exp_dse.rs

crates/bench/src/bin/exp_dse.rs:
