/root/repo/target/debug/deps/exp_kb-4c865d013fb9bc57.d: crates/bench/src/bin/exp_kb.rs Cargo.toml

/root/repo/target/debug/deps/libexp_kb-4c865d013fb9bc57.rmeta: crates/bench/src/bin/exp_kb.rs Cargo.toml

crates/bench/src/bin/exp_kb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
