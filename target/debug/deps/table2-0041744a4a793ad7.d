/root/repo/target/debug/deps/table2-0041744a4a793ad7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0041744a4a793ad7: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
