/root/repo/target/debug/deps/myrtus_workload-9195ea1568b4adeb.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libmyrtus_workload-9195ea1568b4adeb.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libmyrtus_workload-9195ea1568b4adeb.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/compile.rs:
crates/workload/src/graph.rs:
crates/workload/src/opset.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/tosca.rs:
crates/workload/src/trace.rs:
