/root/repo/target/debug/deps/myrtus_bench-e0319e069cd1fed0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_bench-e0319e069cd1fed0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
