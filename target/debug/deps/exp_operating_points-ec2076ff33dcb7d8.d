/root/repo/target/debug/deps/exp_operating_points-ec2076ff33dcb7d8.d: crates/bench/src/bin/exp_operating_points.rs Cargo.toml

/root/repo/target/debug/deps/libexp_operating_points-ec2076ff33dcb7d8.rmeta: crates/bench/src/bin/exp_operating_points.rs Cargo.toml

crates/bench/src/bin/exp_operating_points.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
