/root/repo/target/debug/deps/exp_dse-1664c92a79345543.d: crates/bench/src/bin/exp_dse.rs

/root/repo/target/debug/deps/exp_dse-1664c92a79345543: crates/bench/src/bin/exp_dse.rs

crates/bench/src/bin/exp_dse.rs:
