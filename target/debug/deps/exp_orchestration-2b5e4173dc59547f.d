/root/repo/target/debug/deps/exp_orchestration-2b5e4173dc59547f.d: crates/bench/src/bin/exp_orchestration.rs

/root/repo/target/debug/deps/exp_orchestration-2b5e4173dc59547f: crates/bench/src/bin/exp_orchestration.rs

crates/bench/src/bin/exp_orchestration.rs:
