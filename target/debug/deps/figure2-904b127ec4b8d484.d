/root/repo/target/debug/deps/figure2-904b127ec4b8d484.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-904b127ec4b8d484: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
