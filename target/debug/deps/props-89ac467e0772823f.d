/root/repo/target/debug/deps/props-89ac467e0772823f.d: crates/dpe/tests/props.rs

/root/repo/target/debug/deps/props-89ac467e0772823f: crates/dpe/tests/props.rs

crates/dpe/tests/props.rs:
