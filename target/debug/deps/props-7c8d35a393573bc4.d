/root/repo/target/debug/deps/props-7c8d35a393573bc4.d: crates/security/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-7c8d35a393573bc4.rmeta: crates/security/tests/props.rs Cargo.toml

crates/security/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
