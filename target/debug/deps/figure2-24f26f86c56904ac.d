/root/repo/target/debug/deps/figure2-24f26f86c56904ac.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-24f26f86c56904ac.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
