/root/repo/target/debug/deps/security_levels-81d4de73f1aaa5c0.d: crates/bench/benches/security_levels.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_levels-81d4de73f1aaa5c0.rmeta: crates/bench/benches/security_levels.rs Cargo.toml

crates/bench/benches/security_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
