/root/repo/target/debug/deps/myrtus_security-3fedb3b7c7c4dbda.d: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs

/root/repo/target/debug/deps/myrtus_security-3fedb3b7c7c4dbda: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs

crates/security/src/lib.rs:
crates/security/src/adt.rs:
crates/security/src/aes.rs:
crates/security/src/ascon.rs:
crates/security/src/authn.rs:
crates/security/src/channel.rs:
crates/security/src/gaiax.rs:
crates/security/src/lwc.rs:
crates/security/src/pk.rs:
crates/security/src/sha2.rs:
crates/security/src/suite.rs:
crates/security/src/trust.rs:
