/root/repo/target/debug/deps/determinism-99a1dc46fc5d2b2e.d: crates/myrtus/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-99a1dc46fc5d2b2e.rmeta: crates/myrtus/../../tests/determinism.rs Cargo.toml

crates/myrtus/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
