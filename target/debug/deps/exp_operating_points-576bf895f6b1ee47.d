/root/repo/target/debug/deps/exp_operating_points-576bf895f6b1ee47.d: crates/bench/src/bin/exp_operating_points.rs

/root/repo/target/debug/deps/exp_operating_points-576bf895f6b1ee47: crates/bench/src/bin/exp_operating_points.rs

crates/bench/src/bin/exp_operating_points.rs:
