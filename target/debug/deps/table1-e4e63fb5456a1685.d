/root/repo/target/debug/deps/table1-e4e63fb5456a1685.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e4e63fb5456a1685: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
