/root/repo/target/debug/deps/orchestration-e98588783ead21f2.d: crates/bench/benches/orchestration.rs Cargo.toml

/root/repo/target/debug/deps/liborchestration-e98588783ead21f2.rmeta: crates/bench/benches/orchestration.rs Cargo.toml

crates/bench/benches/orchestration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
