/root/repo/target/debug/deps/myrtus-07c301f2e979f3b4.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/myrtus-07c301f2e979f3b4: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
