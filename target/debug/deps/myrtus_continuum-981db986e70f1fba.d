/root/repo/target/debug/deps/myrtus_continuum-981db986e70f1fba.d: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_continuum-981db986e70f1fba.rmeta: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs Cargo.toml

crates/continuum/src/lib.rs:
crates/continuum/src/cluster.rs:
crates/continuum/src/energy.rs:
crates/continuum/src/engine.rs:
crates/continuum/src/fault.rs:
crates/continuum/src/ids.rs:
crates/continuum/src/monitor.rs:
crates/continuum/src/net.rs:
crates/continuum/src/node.rs:
crates/continuum/src/stats.rs:
crates/continuum/src/task.rs:
crates/continuum/src/time.rs:
crates/continuum/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
