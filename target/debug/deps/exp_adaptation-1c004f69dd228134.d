/root/repo/target/debug/deps/exp_adaptation-1c004f69dd228134.d: crates/bench/src/bin/exp_adaptation.rs

/root/repo/target/debug/deps/exp_adaptation-1c004f69dd228134: crates/bench/src/bin/exp_adaptation.rs

crates/bench/src/bin/exp_adaptation.rs:
