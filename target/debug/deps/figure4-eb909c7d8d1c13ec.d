/root/repo/target/debug/deps/figure4-eb909c7d8d1c13ec.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-eb909c7d8d1c13ec.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
