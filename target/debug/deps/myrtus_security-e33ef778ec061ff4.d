/root/repo/target/debug/deps/myrtus_security-e33ef778ec061ff4.d: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_security-e33ef778ec061ff4.rmeta: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs Cargo.toml

crates/security/src/lib.rs:
crates/security/src/adt.rs:
crates/security/src/aes.rs:
crates/security/src/ascon.rs:
crates/security/src/authn.rs:
crates/security/src/channel.rs:
crates/security/src/gaiax.rs:
crates/security/src/lwc.rs:
crates/security/src/pk.rs:
crates/security/src/sha2.rs:
crates/security/src/suite.rs:
crates/security/src/trust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
