/root/repo/target/debug/deps/kb_integration-ae3c186697a24fb4.d: crates/myrtus/../../tests/kb_integration.rs

/root/repo/target/debug/deps/kb_integration-ae3c186697a24fb4: crates/myrtus/../../tests/kb_integration.rs

crates/myrtus/../../tests/kb_integration.rs:
