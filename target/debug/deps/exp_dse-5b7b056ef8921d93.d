/root/repo/target/debug/deps/exp_dse-5b7b056ef8921d93.d: crates/bench/src/bin/exp_dse.rs Cargo.toml

/root/repo/target/debug/deps/libexp_dse-5b7b056ef8921d93.rmeta: crates/bench/src/bin/exp_dse.rs Cargo.toml

crates/bench/src/bin/exp_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
