/root/repo/target/debug/deps/exp_cgra-299f27fe18a9873b.d: crates/bench/src/bin/exp_cgra.rs Cargo.toml

/root/repo/target/debug/deps/libexp_cgra-299f27fe18a9873b.rmeta: crates/bench/src/bin/exp_cgra.rs Cargo.toml

crates/bench/src/bin/exp_cgra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
