/root/repo/target/debug/deps/exp_adaptation-f76f06489956183c.d: crates/bench/src/bin/exp_adaptation.rs

/root/repo/target/debug/deps/exp_adaptation-f76f06489956183c: crates/bench/src/bin/exp_adaptation.rs

crates/bench/src/bin/exp_adaptation.rs:
