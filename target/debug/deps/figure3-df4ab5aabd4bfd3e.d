/root/repo/target/debug/deps/figure3-df4ab5aabd4bfd3e.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-df4ab5aabd4bfd3e: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
