/root/repo/target/debug/deps/exp_security_e2e-c5c6442f36892c43.d: crates/bench/src/bin/exp_security_e2e.rs

/root/repo/target/debug/deps/exp_security_e2e-c5c6442f36892c43: crates/bench/src/bin/exp_security_e2e.rs

crates/bench/src/bin/exp_security_e2e.rs:
