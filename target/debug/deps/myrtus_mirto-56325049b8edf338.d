/root/repo/target/debug/deps/myrtus_mirto-56325049b8edf338.d: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs

/root/repo/target/debug/deps/myrtus_mirto-56325049b8edf338: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs

crates/mirto/src/lib.rs:
crates/mirto/src/agent.rs:
crates/mirto/src/api.rs:
crates/mirto/src/deployer.rs:
crates/mirto/src/engine.rs:
crates/mirto/src/fl.rs:
crates/mirto/src/frevo.rs:
crates/mirto/src/images.rs:
crates/mirto/src/managers/mod.rs:
crates/mirto/src/managers/network.rs:
crates/mirto/src/managers/node.rs:
crates/mirto/src/managers/privsec.rs:
crates/mirto/src/managers/wl.rs:
crates/mirto/src/placement.rs:
crates/mirto/src/policies.rs:
crates/mirto/src/rl.rs:
crates/mirto/src/swarm.rs:
