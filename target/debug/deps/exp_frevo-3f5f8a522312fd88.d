/root/repo/target/debug/deps/exp_frevo-3f5f8a522312fd88.d: crates/bench/src/bin/exp_frevo.rs

/root/repo/target/debug/deps/exp_frevo-3f5f8a522312fd88: crates/bench/src/bin/exp_frevo.rs

crates/bench/src/bin/exp_frevo.rs:
