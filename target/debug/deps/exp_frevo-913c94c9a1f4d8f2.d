/root/repo/target/debug/deps/exp_frevo-913c94c9a1f4d8f2.d: crates/bench/src/bin/exp_frevo.rs Cargo.toml

/root/repo/target/debug/deps/libexp_frevo-913c94c9a1f4d8f2.rmeta: crates/bench/src/bin/exp_frevo.rs Cargo.toml

crates/bench/src/bin/exp_frevo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
