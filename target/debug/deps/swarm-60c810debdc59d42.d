/root/repo/target/debug/deps/swarm-60c810debdc59d42.d: crates/bench/benches/swarm.rs Cargo.toml

/root/repo/target/debug/deps/libswarm-60c810debdc59d42.rmeta: crates/bench/benches/swarm.rs Cargo.toml

crates/bench/benches/swarm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
