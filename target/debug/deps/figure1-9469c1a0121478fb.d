/root/repo/target/debug/deps/figure1-9469c1a0121478fb.d: crates/bench/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-9469c1a0121478fb.rmeta: crates/bench/src/bin/figure1.rs Cargo.toml

crates/bench/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
