/root/repo/target/debug/deps/exp_kb-09a929a8c93dd44f.d: crates/bench/src/bin/exp_kb.rs

/root/repo/target/debug/deps/exp_kb-09a929a8c93dd44f: crates/bench/src/bin/exp_kb.rs

crates/bench/src/bin/exp_kb.rs:
