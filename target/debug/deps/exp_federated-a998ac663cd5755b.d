/root/repo/target/debug/deps/exp_federated-a998ac663cd5755b.d: crates/bench/src/bin/exp_federated.rs Cargo.toml

/root/repo/target/debug/deps/libexp_federated-a998ac663cd5755b.rmeta: crates/bench/src/bin/exp_federated.rs Cargo.toml

crates/bench/src/bin/exp_federated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
