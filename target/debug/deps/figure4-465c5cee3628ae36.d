/root/repo/target/debug/deps/figure4-465c5cee3628ae36.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-465c5cee3628ae36: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
