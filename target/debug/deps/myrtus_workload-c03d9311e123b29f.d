/root/repo/target/debug/deps/myrtus_workload-c03d9311e123b29f.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus_workload-c03d9311e123b29f.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/compile.rs:
crates/workload/src/graph.rs:
crates/workload/src/opset.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/tosca.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
