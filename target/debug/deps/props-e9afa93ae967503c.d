/root/repo/target/debug/deps/props-e9afa93ae967503c.d: crates/security/tests/props.rs

/root/repo/target/debug/deps/props-e9afa93ae967503c: crates/security/tests/props.rs

crates/security/tests/props.rs:
