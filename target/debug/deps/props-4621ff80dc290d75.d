/root/repo/target/debug/deps/props-4621ff80dc290d75.d: crates/continuum/tests/props.rs

/root/repo/target/debug/deps/props-4621ff80dc290d75: crates/continuum/tests/props.rs

crates/continuum/tests/props.rs:
