/root/repo/target/debug/deps/exp_offload_crossover-44fc9f7759dae9ea.d: crates/bench/src/bin/exp_offload_crossover.rs

/root/repo/target/debug/deps/exp_offload_crossover-44fc9f7759dae9ea: crates/bench/src/bin/exp_offload_crossover.rs

crates/bench/src/bin/exp_offload_crossover.rs:
