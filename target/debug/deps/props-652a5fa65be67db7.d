/root/repo/target/debug/deps/props-652a5fa65be67db7.d: crates/kb/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-652a5fa65be67db7.rmeta: crates/kb/tests/props.rs Cargo.toml

crates/kb/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
