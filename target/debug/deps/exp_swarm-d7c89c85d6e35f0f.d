/root/repo/target/debug/deps/exp_swarm-d7c89c85d6e35f0f.d: crates/bench/src/bin/exp_swarm.rs Cargo.toml

/root/repo/target/debug/deps/libexp_swarm-d7c89c85d6e35f0f.rmeta: crates/bench/src/bin/exp_swarm.rs Cargo.toml

crates/bench/src/bin/exp_swarm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
