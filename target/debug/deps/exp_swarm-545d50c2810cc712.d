/root/repo/target/debug/deps/exp_swarm-545d50c2810cc712.d: crates/bench/src/bin/exp_swarm.rs Cargo.toml

/root/repo/target/debug/deps/libexp_swarm-545d50c2810cc712.rmeta: crates/bench/src/bin/exp_swarm.rs Cargo.toml

crates/bench/src/bin/exp_swarm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
