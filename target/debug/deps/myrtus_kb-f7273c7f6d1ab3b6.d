/root/repo/target/debug/deps/myrtus_kb-f7273c7f6d1ab3b6.d: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

/root/repo/target/debug/deps/myrtus_kb-f7273c7f6d1ab3b6: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

crates/kb/src/lib.rs:
crates/kb/src/command.rs:
crates/kb/src/facade.rs:
crates/kb/src/history.rs:
crates/kb/src/raft.rs:
crates/kb/src/registry.rs:
crates/kb/src/store.rs:
