/root/repo/target/debug/deps/myrtus-88d628a70d3ef0f9.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs Cargo.toml

/root/repo/target/debug/deps/libmyrtus-88d628a70d3ef0f9.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs Cargo.toml

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
