/root/repo/target/debug/deps/exp_federated-5d7c518bbcbbc340.d: crates/bench/src/bin/exp_federated.rs

/root/repo/target/debug/deps/exp_federated-5d7c518bbcbbc340: crates/bench/src/bin/exp_federated.rs

crates/bench/src/bin/exp_federated.rs:
