/root/repo/target/debug/deps/exp_cgra-e64714520370e628.d: crates/bench/src/bin/exp_cgra.rs

/root/repo/target/debug/deps/exp_cgra-e64714520370e628: crates/bench/src/bin/exp_cgra.rs

crates/bench/src/bin/exp_cgra.rs:
