/root/repo/target/debug/deps/myrtus-56327a22ab541afb.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/libmyrtus-56327a22ab541afb.rlib: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/debug/deps/libmyrtus-56327a22ab541afb.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
