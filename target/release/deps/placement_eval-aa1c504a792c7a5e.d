/root/repo/target/release/deps/placement_eval-aa1c504a792c7a5e.d: crates/bench/benches/placement_eval.rs

/root/repo/target/release/deps/placement_eval-aa1c504a792c7a5e: crates/bench/benches/placement_eval.rs

crates/bench/benches/placement_eval.rs:
