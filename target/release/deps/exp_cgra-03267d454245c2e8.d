/root/repo/target/release/deps/exp_cgra-03267d454245c2e8.d: crates/bench/src/bin/exp_cgra.rs

/root/repo/target/release/deps/exp_cgra-03267d454245c2e8: crates/bench/src/bin/exp_cgra.rs

crates/bench/src/bin/exp_cgra.rs:
