/root/repo/target/release/deps/table2-82242da919ea52b4.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-82242da919ea52b4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
