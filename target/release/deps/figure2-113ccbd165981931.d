/root/repo/target/release/deps/figure2-113ccbd165981931.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-113ccbd165981931: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
