/root/repo/target/release/deps/exp_cgra-ff1e4e7d45df0eb7.d: crates/bench/src/bin/exp_cgra.rs

/root/repo/target/release/deps/exp_cgra-ff1e4e7d45df0eb7: crates/bench/src/bin/exp_cgra.rs

crates/bench/src/bin/exp_cgra.rs:
