/root/repo/target/release/deps/exp_kb-d0828191f289b9af.d: crates/bench/src/bin/exp_kb.rs

/root/repo/target/release/deps/exp_kb-d0828191f289b9af: crates/bench/src/bin/exp_kb.rs

crates/bench/src/bin/exp_kb.rs:
