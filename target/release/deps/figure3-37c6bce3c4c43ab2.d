/root/repo/target/release/deps/figure3-37c6bce3c4c43ab2.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-37c6bce3c4c43ab2: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
