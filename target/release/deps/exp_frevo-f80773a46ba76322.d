/root/repo/target/release/deps/exp_frevo-f80773a46ba76322.d: crates/bench/src/bin/exp_frevo.rs

/root/repo/target/release/deps/exp_frevo-f80773a46ba76322: crates/bench/src/bin/exp_frevo.rs

crates/bench/src/bin/exp_frevo.rs:
