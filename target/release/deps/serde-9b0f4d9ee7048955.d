/root/repo/target/release/deps/serde-9b0f4d9ee7048955.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-9b0f4d9ee7048955.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-9b0f4d9ee7048955.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
