/root/repo/target/release/deps/figure2-2b400d65dec4acf5.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-2b400d65dec4acf5: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
