/root/repo/target/release/deps/exp_swarm-7b305ed3831ca177.d: crates/bench/src/bin/exp_swarm.rs

/root/repo/target/release/deps/exp_swarm-7b305ed3831ca177: crates/bench/src/bin/exp_swarm.rs

crates/bench/src/bin/exp_swarm.rs:
