/root/repo/target/release/deps/exp_adaptation-30568c3fbaa22ab3.d: crates/bench/src/bin/exp_adaptation.rs

/root/repo/target/release/deps/exp_adaptation-30568c3fbaa22ab3: crates/bench/src/bin/exp_adaptation.rs

crates/bench/src/bin/exp_adaptation.rs:
