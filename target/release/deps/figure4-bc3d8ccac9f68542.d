/root/repo/target/release/deps/figure4-bc3d8ccac9f68542.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-bc3d8ccac9f68542: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
