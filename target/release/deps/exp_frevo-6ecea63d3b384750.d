/root/repo/target/release/deps/exp_frevo-6ecea63d3b384750.d: crates/bench/src/bin/exp_frevo.rs

/root/repo/target/release/deps/exp_frevo-6ecea63d3b384750: crates/bench/src/bin/exp_frevo.rs

crates/bench/src/bin/exp_frevo.rs:
