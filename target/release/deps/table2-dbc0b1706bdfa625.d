/root/repo/target/release/deps/table2-dbc0b1706bdfa625.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-dbc0b1706bdfa625: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
