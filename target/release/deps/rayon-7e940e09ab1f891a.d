/root/repo/target/release/deps/rayon-7e940e09ab1f891a.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7e940e09ab1f891a.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7e940e09ab1f891a.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
