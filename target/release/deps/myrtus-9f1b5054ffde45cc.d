/root/repo/target/release/deps/myrtus-9f1b5054ffde45cc.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-9f1b5054ffde45cc.rlib: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-9f1b5054ffde45cc.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
