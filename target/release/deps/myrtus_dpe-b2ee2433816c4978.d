/root/repo/target/release/deps/myrtus_dpe-b2ee2433816c4978.d: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs

/root/repo/target/release/deps/libmyrtus_dpe-b2ee2433816c4978.rlib: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs

/root/repo/target/release/deps/libmyrtus_dpe-b2ee2433816c4978.rmeta: crates/dpe/src/lib.rs crates/dpe/src/cgra.rs crates/dpe/src/codegen.rs crates/dpe/src/deploy.rs crates/dpe/src/dse.rs crates/dpe/src/flow.rs crates/dpe/src/hls.rs crates/dpe/src/ir.rs crates/dpe/src/kernels.rs crates/dpe/src/mdc.rs crates/dpe/src/nn.rs crates/dpe/src/transform.rs

crates/dpe/src/lib.rs:
crates/dpe/src/cgra.rs:
crates/dpe/src/codegen.rs:
crates/dpe/src/deploy.rs:
crates/dpe/src/dse.rs:
crates/dpe/src/flow.rs:
crates/dpe/src/hls.rs:
crates/dpe/src/ir.rs:
crates/dpe/src/kernels.rs:
crates/dpe/src/mdc.rs:
crates/dpe/src/nn.rs:
crates/dpe/src/transform.rs:
