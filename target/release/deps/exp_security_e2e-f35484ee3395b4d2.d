/root/repo/target/release/deps/exp_security_e2e-f35484ee3395b4d2.d: crates/bench/src/bin/exp_security_e2e.rs

/root/repo/target/release/deps/exp_security_e2e-f35484ee3395b4d2: crates/bench/src/bin/exp_security_e2e.rs

crates/bench/src/bin/exp_security_e2e.rs:
