/root/repo/target/release/deps/exp_offload_crossover-5004747b24ae04a9.d: crates/bench/src/bin/exp_offload_crossover.rs

/root/repo/target/release/deps/exp_offload_crossover-5004747b24ae04a9: crates/bench/src/bin/exp_offload_crossover.rs

crates/bench/src/bin/exp_offload_crossover.rs:
