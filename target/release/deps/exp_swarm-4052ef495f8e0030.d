/root/repo/target/release/deps/exp_swarm-4052ef495f8e0030.d: crates/bench/src/bin/exp_swarm.rs

/root/repo/target/release/deps/exp_swarm-4052ef495f8e0030: crates/bench/src/bin/exp_swarm.rs

crates/bench/src/bin/exp_swarm.rs:
