/root/repo/target/release/deps/table1-e41116619fbaf6b6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e41116619fbaf6b6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
