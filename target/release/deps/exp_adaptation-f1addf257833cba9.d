/root/repo/target/release/deps/exp_adaptation-f1addf257833cba9.d: crates/bench/src/bin/exp_adaptation.rs

/root/repo/target/release/deps/exp_adaptation-f1addf257833cba9: crates/bench/src/bin/exp_adaptation.rs

crates/bench/src/bin/exp_adaptation.rs:
