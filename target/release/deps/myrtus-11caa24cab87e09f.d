/root/repo/target/release/deps/myrtus-11caa24cab87e09f.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-11caa24cab87e09f.rlib: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-11caa24cab87e09f.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
