/root/repo/target/release/deps/exp_federated-b0d5d859407fae59.d: crates/bench/src/bin/exp_federated.rs

/root/repo/target/release/deps/exp_federated-b0d5d859407fae59: crates/bench/src/bin/exp_federated.rs

crates/bench/src/bin/exp_federated.rs:
