/root/repo/target/release/deps/figure3-24e57712493b5edb.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-24e57712493b5edb: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
