/root/repo/target/release/deps/myrtus_kb-aa65b81a05372211.d: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

/root/repo/target/release/deps/libmyrtus_kb-aa65b81a05372211.rlib: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

/root/repo/target/release/deps/libmyrtus_kb-aa65b81a05372211.rmeta: crates/kb/src/lib.rs crates/kb/src/command.rs crates/kb/src/facade.rs crates/kb/src/history.rs crates/kb/src/raft.rs crates/kb/src/registry.rs crates/kb/src/store.rs

crates/kb/src/lib.rs:
crates/kb/src/command.rs:
crates/kb/src/facade.rs:
crates/kb/src/history.rs:
crates/kb/src/raft.rs:
crates/kb/src/registry.rs:
crates/kb/src/store.rs:
