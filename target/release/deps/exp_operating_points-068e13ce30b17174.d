/root/repo/target/release/deps/exp_operating_points-068e13ce30b17174.d: crates/bench/src/bin/exp_operating_points.rs

/root/repo/target/release/deps/exp_operating_points-068e13ce30b17174: crates/bench/src/bin/exp_operating_points.rs

crates/bench/src/bin/exp_operating_points.rs:
