/root/repo/target/release/deps/myrtus_workload-67a9cb8a8ede84c5.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmyrtus_workload-67a9cb8a8ede84c5.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmyrtus_workload-67a9cb8a8ede84c5.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/compile.rs:
crates/workload/src/graph.rs:
crates/workload/src/opset.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/tosca.rs:
crates/workload/src/trace.rs:
