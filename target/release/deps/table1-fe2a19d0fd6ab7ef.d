/root/repo/target/release/deps/table1-fe2a19d0fd6ab7ef.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-fe2a19d0fd6ab7ef: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
