/root/repo/target/release/deps/exp_security_e2e-bec894b7d96ae4bc.d: crates/bench/src/bin/exp_security_e2e.rs

/root/repo/target/release/deps/exp_security_e2e-bec894b7d96ae4bc: crates/bench/src/bin/exp_security_e2e.rs

crates/bench/src/bin/exp_security_e2e.rs:
