/root/repo/target/release/deps/exp_offload_crossover-2a7b05a541ba9130.d: crates/bench/src/bin/exp_offload_crossover.rs

/root/repo/target/release/deps/exp_offload_crossover-2a7b05a541ba9130: crates/bench/src/bin/exp_offload_crossover.rs

crates/bench/src/bin/exp_offload_crossover.rs:
