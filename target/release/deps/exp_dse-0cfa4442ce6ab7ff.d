/root/repo/target/release/deps/exp_dse-0cfa4442ce6ab7ff.d: crates/bench/src/bin/exp_dse.rs

/root/repo/target/release/deps/exp_dse-0cfa4442ce6ab7ff: crates/bench/src/bin/exp_dse.rs

crates/bench/src/bin/exp_dse.rs:
