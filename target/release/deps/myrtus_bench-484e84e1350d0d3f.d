/root/repo/target/release/deps/myrtus_bench-484e84e1350d0d3f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-484e84e1350d0d3f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-484e84e1350d0d3f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
