/root/repo/target/release/deps/exp_orchestration-8d0c997e2742d236.d: crates/bench/src/bin/exp_orchestration.rs

/root/repo/target/release/deps/exp_orchestration-8d0c997e2742d236: crates/bench/src/bin/exp_orchestration.rs

crates/bench/src/bin/exp_orchestration.rs:
