/root/repo/target/release/deps/exp_cgra-46877befd3420a8a.d: crates/bench/src/bin/exp_cgra.rs

/root/repo/target/release/deps/exp_cgra-46877befd3420a8a: crates/bench/src/bin/exp_cgra.rs

crates/bench/src/bin/exp_cgra.rs:
