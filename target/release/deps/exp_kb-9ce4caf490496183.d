/root/repo/target/release/deps/exp_kb-9ce4caf490496183.d: crates/bench/src/bin/exp_kb.rs

/root/repo/target/release/deps/exp_kb-9ce4caf490496183: crates/bench/src/bin/exp_kb.rs

crates/bench/src/bin/exp_kb.rs:
