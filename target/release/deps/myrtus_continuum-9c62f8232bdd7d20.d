/root/repo/target/release/deps/myrtus_continuum-9c62f8232bdd7d20.d: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

/root/repo/target/release/deps/libmyrtus_continuum-9c62f8232bdd7d20.rlib: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

/root/repo/target/release/deps/libmyrtus_continuum-9c62f8232bdd7d20.rmeta: crates/continuum/src/lib.rs crates/continuum/src/cluster.rs crates/continuum/src/energy.rs crates/continuum/src/engine.rs crates/continuum/src/fault.rs crates/continuum/src/ids.rs crates/continuum/src/monitor.rs crates/continuum/src/net.rs crates/continuum/src/node.rs crates/continuum/src/stats.rs crates/continuum/src/task.rs crates/continuum/src/time.rs crates/continuum/src/topology.rs

crates/continuum/src/lib.rs:
crates/continuum/src/cluster.rs:
crates/continuum/src/energy.rs:
crates/continuum/src/engine.rs:
crates/continuum/src/fault.rs:
crates/continuum/src/ids.rs:
crates/continuum/src/monitor.rs:
crates/continuum/src/net.rs:
crates/continuum/src/node.rs:
crates/continuum/src/stats.rs:
crates/continuum/src/task.rs:
crates/continuum/src/time.rs:
crates/continuum/src/topology.rs:
