/root/repo/target/release/deps/exp_operating_points-a03691e0c0ae71d3.d: crates/bench/src/bin/exp_operating_points.rs

/root/repo/target/release/deps/exp_operating_points-a03691e0c0ae71d3: crates/bench/src/bin/exp_operating_points.rs

crates/bench/src/bin/exp_operating_points.rs:
