/root/repo/target/release/deps/exp_operating_points-7054130787bbfbae.d: crates/bench/src/bin/exp_operating_points.rs

/root/repo/target/release/deps/exp_operating_points-7054130787bbfbae: crates/bench/src/bin/exp_operating_points.rs

crates/bench/src/bin/exp_operating_points.rs:
