/root/repo/target/release/deps/exp_frevo-f8a41c127a7450de.d: crates/bench/src/bin/exp_frevo.rs

/root/repo/target/release/deps/exp_frevo-f8a41c127a7450de: crates/bench/src/bin/exp_frevo.rs

crates/bench/src/bin/exp_frevo.rs:
