/root/repo/target/release/deps/exp_federated-34898980d42cea31.d: crates/bench/src/bin/exp_federated.rs

/root/repo/target/release/deps/exp_federated-34898980d42cea31: crates/bench/src/bin/exp_federated.rs

crates/bench/src/bin/exp_federated.rs:
