/root/repo/target/release/deps/figure1-4160b7001415f440.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-4160b7001415f440: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
