/root/repo/target/release/deps/table1-af53bd21082820f2.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-af53bd21082820f2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
