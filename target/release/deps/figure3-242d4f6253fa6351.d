/root/repo/target/release/deps/figure3-242d4f6253fa6351.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-242d4f6253fa6351: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
