/root/repo/target/release/deps/exp_orchestration-f30fc38b12aa99b5.d: crates/bench/src/bin/exp_orchestration.rs

/root/repo/target/release/deps/exp_orchestration-f30fc38b12aa99b5: crates/bench/src/bin/exp_orchestration.rs

crates/bench/src/bin/exp_orchestration.rs:
