/root/repo/target/release/deps/exp_federated-c13e37167ee7760b.d: crates/bench/src/bin/exp_federated.rs

/root/repo/target/release/deps/exp_federated-c13e37167ee7760b: crates/bench/src/bin/exp_federated.rs

crates/bench/src/bin/exp_federated.rs:
