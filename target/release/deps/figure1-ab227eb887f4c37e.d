/root/repo/target/release/deps/figure1-ab227eb887f4c37e.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-ab227eb887f4c37e: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
