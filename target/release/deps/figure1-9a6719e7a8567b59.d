/root/repo/target/release/deps/figure1-9a6719e7a8567b59.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-9a6719e7a8567b59: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
