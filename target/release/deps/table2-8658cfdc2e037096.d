/root/repo/target/release/deps/table2-8658cfdc2e037096.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-8658cfdc2e037096: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
