/root/repo/target/release/deps/exp_swarm-2753446f3ebf7807.d: crates/bench/src/bin/exp_swarm.rs

/root/repo/target/release/deps/exp_swarm-2753446f3ebf7807: crates/bench/src/bin/exp_swarm.rs

crates/bench/src/bin/exp_swarm.rs:
