/root/repo/target/release/deps/figure4-7854e090845c4d4d.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-7854e090845c4d4d: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
