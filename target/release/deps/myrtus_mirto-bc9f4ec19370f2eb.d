/root/repo/target/release/deps/myrtus_mirto-bc9f4ec19370f2eb.d: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs

/root/repo/target/release/deps/libmyrtus_mirto-bc9f4ec19370f2eb.rlib: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs

/root/repo/target/release/deps/libmyrtus_mirto-bc9f4ec19370f2eb.rmeta: crates/mirto/src/lib.rs crates/mirto/src/agent.rs crates/mirto/src/api.rs crates/mirto/src/deployer.rs crates/mirto/src/engine.rs crates/mirto/src/fl.rs crates/mirto/src/frevo.rs crates/mirto/src/images.rs crates/mirto/src/managers/mod.rs crates/mirto/src/managers/network.rs crates/mirto/src/managers/node.rs crates/mirto/src/managers/privsec.rs crates/mirto/src/managers/wl.rs crates/mirto/src/placement.rs crates/mirto/src/policies.rs crates/mirto/src/rl.rs crates/mirto/src/swarm.rs

crates/mirto/src/lib.rs:
crates/mirto/src/agent.rs:
crates/mirto/src/api.rs:
crates/mirto/src/deployer.rs:
crates/mirto/src/engine.rs:
crates/mirto/src/fl.rs:
crates/mirto/src/frevo.rs:
crates/mirto/src/images.rs:
crates/mirto/src/managers/mod.rs:
crates/mirto/src/managers/network.rs:
crates/mirto/src/managers/node.rs:
crates/mirto/src/managers/privsec.rs:
crates/mirto/src/managers/wl.rs:
crates/mirto/src/placement.rs:
crates/mirto/src/policies.rs:
crates/mirto/src/rl.rs:
crates/mirto/src/swarm.rs:
