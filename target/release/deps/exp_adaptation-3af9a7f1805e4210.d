/root/repo/target/release/deps/exp_adaptation-3af9a7f1805e4210.d: crates/bench/src/bin/exp_adaptation.rs

/root/repo/target/release/deps/exp_adaptation-3af9a7f1805e4210: crates/bench/src/bin/exp_adaptation.rs

crates/bench/src/bin/exp_adaptation.rs:
