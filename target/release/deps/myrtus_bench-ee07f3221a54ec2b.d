/root/repo/target/release/deps/myrtus_bench-ee07f3221a54ec2b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-ee07f3221a54ec2b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-ee07f3221a54ec2b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
