/root/repo/target/release/deps/exp_dse-9c62c271ba79d4d2.d: crates/bench/src/bin/exp_dse.rs

/root/repo/target/release/deps/exp_dse-9c62c271ba79d4d2: crates/bench/src/bin/exp_dse.rs

crates/bench/src/bin/exp_dse.rs:
