/root/repo/target/release/deps/exp_offload_crossover-d2c95895bf4ce363.d: crates/bench/src/bin/exp_offload_crossover.rs

/root/repo/target/release/deps/exp_offload_crossover-d2c95895bf4ce363: crates/bench/src/bin/exp_offload_crossover.rs

crates/bench/src/bin/exp_offload_crossover.rs:
