/root/repo/target/release/deps/myrtus_workload-c5fc4f74a7bb23b9.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmyrtus_workload-c5fc4f74a7bb23b9.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmyrtus_workload-c5fc4f74a7bb23b9.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/compile.rs crates/workload/src/graph.rs crates/workload/src/opset.rs crates/workload/src/scenarios.rs crates/workload/src/tosca.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/compile.rs:
crates/workload/src/graph.rs:
crates/workload/src/opset.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/tosca.rs:
crates/workload/src/trace.rs:
