/root/repo/target/release/deps/exp_orchestration-2fa0bc9cf99623c3.d: crates/bench/src/bin/exp_orchestration.rs

/root/repo/target/release/deps/exp_orchestration-2fa0bc9cf99623c3: crates/bench/src/bin/exp_orchestration.rs

crates/bench/src/bin/exp_orchestration.rs:
