/root/repo/target/release/deps/figure4-444db7813216044d.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-444db7813216044d: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
