/root/repo/target/release/deps/figure2-d905a62474f6623f.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-d905a62474f6623f: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
