/root/repo/target/release/deps/exp_kb-b549f36ab3c94aa2.d: crates/bench/src/bin/exp_kb.rs

/root/repo/target/release/deps/exp_kb-b549f36ab3c94aa2: crates/bench/src/bin/exp_kb.rs

crates/bench/src/bin/exp_kb.rs:
