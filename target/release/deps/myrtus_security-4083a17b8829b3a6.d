/root/repo/target/release/deps/myrtus_security-4083a17b8829b3a6.d: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs

/root/repo/target/release/deps/libmyrtus_security-4083a17b8829b3a6.rlib: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs

/root/repo/target/release/deps/libmyrtus_security-4083a17b8829b3a6.rmeta: crates/security/src/lib.rs crates/security/src/adt.rs crates/security/src/aes.rs crates/security/src/ascon.rs crates/security/src/authn.rs crates/security/src/channel.rs crates/security/src/gaiax.rs crates/security/src/lwc.rs crates/security/src/pk.rs crates/security/src/sha2.rs crates/security/src/suite.rs crates/security/src/trust.rs

crates/security/src/lib.rs:
crates/security/src/adt.rs:
crates/security/src/aes.rs:
crates/security/src/ascon.rs:
crates/security/src/authn.rs:
crates/security/src/channel.rs:
crates/security/src/gaiax.rs:
crates/security/src/lwc.rs:
crates/security/src/pk.rs:
crates/security/src/sha2.rs:
crates/security/src/suite.rs:
crates/security/src/trust.rs:
