/root/repo/target/release/deps/myrtus_bench-6248fdb91ac3ee14.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-6248fdb91ac3ee14.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmyrtus_bench-6248fdb91ac3ee14.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
