/root/repo/target/release/deps/myrtus-cb350fcfdc32d461.d: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-cb350fcfdc32d461.rlib: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

/root/repo/target/release/deps/libmyrtus-cb350fcfdc32d461.rmeta: crates/myrtus/src/lib.rs crates/myrtus/src/inventory.rs

crates/myrtus/src/lib.rs:
crates/myrtus/src/inventory.rs:
