/root/repo/target/release/deps/exp_security_e2e-694944fcefe3d935.d: crates/bench/src/bin/exp_security_e2e.rs

/root/repo/target/release/deps/exp_security_e2e-694944fcefe3d935: crates/bench/src/bin/exp_security_e2e.rs

crates/bench/src/bin/exp_security_e2e.rs:
