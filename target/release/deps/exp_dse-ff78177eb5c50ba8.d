/root/repo/target/release/deps/exp_dse-ff78177eb5c50ba8.d: crates/bench/src/bin/exp_dse.rs

/root/repo/target/release/deps/exp_dse-ff78177eb5c50ba8: crates/bench/src/bin/exp_dse.rs

crates/bench/src/bin/exp_dse.rs:
