/root/repo/target/release/examples/quickstart-42b50ee80579108a.d: crates/myrtus/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-42b50ee80579108a: crates/myrtus/../../examples/quickstart.rs

crates/myrtus/../../examples/quickstart.rs:
