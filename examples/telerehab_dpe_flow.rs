//! Virtual-Telerehabilitation use case through the full DPE flow
//! (paper Fig. 4) and into the MIRTO engine: model → analysis →
//! portioning → node-level artifacts → deployment package → cognitive
//! orchestration.
//!
//! ```sh
//! cargo run --example telerehab_dpe_flow
//! ```

use myrtus::continuum::time::SimTime;
use myrtus::dpe::deploy::DeploymentSpec;
use myrtus::dpe::flow::{step1_analyze, step2_portion, step3_generate};
use myrtus::dpe::mdc::compose;
use myrtus::mirto::engine::{run_orchestration, EngineConfig};
use myrtus::mirto::policies::GreedyBestFit;
use myrtus::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = scenarios::telerehab_with(3);

    // Step 1 — continuum modeling, simulation and analysis.
    let analysis = step1_analyze(&app)?;
    println!("== Step 1: modeling & analysis ==");
    println!("  KPI: critical-path latency ≥ {:.1} ms", analysis.critical_path_us / 1_000.0);
    println!("  ADT base risk {:.3} → residual {:.3}", analysis.base_risk, analysis.residual_risk);
    println!("  countermeasures: {}", analysis.countermeasures.join(", "));

    // Step 2 — model to implementation.
    let portioned = step2_portion(&app)?;
    println!("\n== Step 2: portioning ==");
    println!("  software components : {}", portioned.sw_components.join(", "));
    for (comp, graph) in &portioned.hw_kernels {
        println!(
            "  accel kernel {comp:12} : {} actors, {} ops/iter",
            graph.actors().len(),
            graph.ops_per_iteration()?
        );
    }

    // MDC: merge the kernels into one reconfigurable datapath.
    let graphs: Vec<_> = portioned.hw_kernels.iter().map(|(_, g)| g.clone()).collect();
    let composition = compose(&graphs)?;
    let area = composition.area_report();
    println!(
        "  MDC: {} shared actors, area savings {:.1} % vs dedicated datapaths",
        area.shared_actors,
        area.savings() * 100.0
    );

    // Step 3 — node-level optimisation and deployment.
    let result = step3_generate(&portioned, &analysis)?;
    println!("\n== Step 3: node-level artifacts ==");
    for a in &result.spec.artifacts {
        println!("  {:?} {:24} {:>9} bytes ({})", a.kind, a.name, a.size_bytes, a.component);
    }
    for (kernel, dse) in &result.dse {
        let fastest = dse.fastest().expect("front non-empty");
        let eff = dse.most_efficient().expect("front non-empty");
        println!(
            "  DSE {kernel:10}: {} Pareto points; fastest {:.1} µs / {:.3} mJ, most-efficient {:.1} µs / {:.3} mJ",
            dse.front.len(),
            fastest.eval.latency_us,
            fastest.eval.energy_mj,
            eff.eval.latency_us,
            eff.eval.energy_mj
        );
    }

    // Pillar 3 → pillar 2 interface: package round trip then orchestrate.
    let text = result.spec.to_package();
    println!("\n== deployment package ({} bytes) ==", text.len());
    let spec = DeploymentSpec::from_package(&text)?;
    let report = run_orchestration(
        Box::new(GreedyBestFit::new()),
        EngineConfig::default(),
        vec![spec.application],
        SimTime::from_secs(6),
    )?;
    let a = &report.apps[0];
    println!(
        "MIRTO ran the packaged app: {} frames completed, QoS {:.1} %, mean latency {:.2} ms",
        a.completed,
        a.qos() * 100.0,
        a.latency_ms.as_ref().map(|l| l.mean).unwrap_or(0.0)
    );
    Ok(())
}
