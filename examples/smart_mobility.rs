//! Smart-Mobility use case under node failures: cognitive (adaptive)
//! MIRTO orchestration vs. a static silo deployment (paper CH2 / OBJ2).
//!
//! ```sh
//! cargo run --example smart_mobility
//! ```

use myrtus::continuum::fault::FaultPlan;
use myrtus::continuum::time::{SimDuration, SimTime};
use myrtus::continuum::topology::ContinuumBuilder;
use myrtus::mirto::engine::{EngineConfig, OrchestrationEngine, OrchestrationReport};
use myrtus::mirto::policies::{GreedyBestFit, PlacementPolicy, RoundRobin};
use myrtus::workload::scenarios;

fn run(
    policy: Box<dyn PlacementPolicy + Send>,
    cfg: EngineConfig,
) -> Result<OrchestrationReport, Box<dyn std::error::Error>> {
    let mut continuum = ContinuumBuilder::new().build();
    // A rough afternoon on the road: two edge units crash, one forever.
    FaultPlan::new()
        .crash(continuum.edge()[1], SimTime::from_millis(600), Some(SimDuration::from_secs(2)))
        .crash(continuum.edge()[4], SimTime::from_millis(900), None)
        .apply(continuum.sim_mut());
    let apps = vec![
        scenarios::smart_mobility_with(SimTime::from_secs(4)),
        scenarios::batch_analytics(2, SimDuration::from_secs(2)),
    ];
    Ok(OrchestrationEngine::new(policy, cfg).run(&mut continuum, apps, SimTime::from_secs(6))?)
}

fn show(label: &str, r: &OrchestrationReport) {
    let mobility = &r.apps[0];
    println!("--- {label} ({}) ---", r.policy);
    println!(
        "  mobility: {} completed, {} failed, QoS {:.1} %",
        mobility.completed,
        mobility.failed,
        mobility.qos() * 100.0
    );
    if let Some(l) = &mobility.latency_ms {
        println!("  latency ms: mean {:.2}  p95 {:.2}", l.mean, l.p95);
    }
    println!(
        "  reallocations {}  op-switches {}  detours {}  lost tasks {}",
        r.reallocations, r.op_switches, r.detours, r.lost_tasks
    );
    println!("  energy {:.1} J\n", r.total_energy_j);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Smart Mobility under failures: MIRTO vs static silo\n");
    let adaptive = run(Box::new(GreedyBestFit::new()), EngineConfig::default())?;
    let static_ = run(
        Box::new(RoundRobin::new()),
        EngineConfig {
            reallocation: false,
            node_adaptation: false,
            network_management: false,
            ..EngineConfig::default()
        },
    )?;
    show("MIRTO cognitive", &adaptive);
    show("static silo", &static_);

    let gain = adaptive.apps[0].completed as f64 / static_.apps[0].completed.max(1) as f64;
    println!("completion gain of the cognitive engine: {gain:.2}x");
    Ok(())
}
