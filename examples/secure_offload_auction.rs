//! Cross-region offload with security constraints: regions advertise
//! capacity through the gossip registry, the home region solicits
//! sealed bids priced from its views (paper Sect. IV), the auction
//! picks the cheapest feasible peer, the award lands in the ledger and
//! the winner opens a Table II secure channel. The trust model reacts
//! to an injected incident at the end.
//!
//! ```sh
//! cargo run --example secure_offload_auction
//! ```

use myrtus::continuum::federation::{
    bid_from_view, run_auction, AuctionBook, BurstQuery, FederatedContinuumBuilder, RegionDigest,
};
use myrtus::continuum::ids::RegionId;
use myrtus::mirto::{FederationConfig, FederationManager};
use myrtus::security::channel::SecureChannel;
use myrtus::security::suite::SecurityLevel;
use myrtus::security::trust::{Observation, TrustModel};

/// WAN hop of the default federation: 40 ms, 200 Mbit/s.
const WAN_LATENCY_US: f64 = 40_000.0;
const WAN_MBPS: f64 = 200.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three reference regions on a full-mesh WAN; the federation
    // manager gossips each region's digest on the default schedule.
    let fed = FederatedContinuumBuilder::new().build();
    let regions = fed.regions().iter().map(|r| r.all_nodes()).collect();
    let ingress = fed.regions().iter().map(|r| r.ingress()).collect();
    let mut mgr = FederationManager::new(FederationConfig::default(), regions, ingress);
    let sim = fed.continuum().sim();
    let home = RegionId::from_raw(0);

    // A coverage window of anti-entropy rounds spreads every advert to
    // every peer (n - 1 rounds meet each pair directly).
    for _ in 0..fed.region_count() - 1 {
        mgr.gossip_round(sim);
    }

    println!("== sealed-bid burst auctions from region {} ==", home.as_raw());
    let mut book = AuctionBook::new();
    let cases = [
        ("light filter on a big frame", 2.0, 460_800u64, SecurityLevel::Low),
        ("pose CNN on a small tensor", 5_000.0, 16_384, SecurityLevel::Medium),
        ("archival batch (PQC required)", 100_000.0, 4_096, SecurityLevel::High),
    ];
    for (case, (label, work_mc, bytes, level)) in cases.into_iter().enumerate() {
        let query = BurstQuery {
            work_mc,
            input_bytes: bytes,
            mem_mb: 64,
            min_tier: level.tier(),
            min_headroom_mc_per_s: 1_000.0,
        };
        // Price one sealed bid per peer from the home region's gossip
        // views: WAN transfer for the sealed payload, the Table II
        // handshake split across both ends, queueing + service on the
        // advertised node.
        let hs = level.suite().handshake_cost();
        let wire = query.input_bytes + level.suite().record_overhead_bytes();
        let transfer_us = WAN_LATENCY_US + wire as f64 * 8.0 / WAN_MBPS;
        let bids: Vec<_> = (0..fed.region_count() as u16)
            .map(RegionId::from_raw)
            .filter(|&peer| peer != home)
            .map(|peer| {
                let view = mgr.registry().view(home, peer);
                let dst_mhz =
                    view.map(|e| e.digest.best_speed_mhz).filter(|&s| s > 0.0).unwrap_or(1_000.0);
                let handshake_us =
                    hs.initiator_cycles as f64 / 1_000.0 + hs.responder_cycles as f64 / dst_mhz;
                bid_from_view(
                    peer,
                    view,
                    mgr.registry().staleness(home, peer),
                    mgr.config().staleness_limit,
                    transfer_us,
                    handshake_us,
                    |d: &RegionDigest| query.work_mc * 1e6 / d.best_speed_mhz.max(1.0),
                )
            })
            .collect();
        let win = run_auction(&query, &bids).expect("some advertised peer is feasible");
        let node = win.node.expect("a feasible bid names its target");
        book.award(case as u64, win.region).expect("fresh key");
        println!(
            "  {label:32} → region {}, node {node}, {:.2} ms total ({} security)",
            win.region.as_raw(),
            win.cost_us() / 1_000.0,
            level
        );
        println!(
            "      bid: transfer {:.2} ms, handshake {:.3} ms, compute ETA {:.2} ms",
            win.transfer_us / 1_000.0,
            win.handshake_us / 1_000.0,
            win.eta_us / 1_000.0
        );

        // The award is exclusive while the link is open: a second
        // award under the same key is refused until release.
        assert_eq!(book.award(case as u64, win.region), Err(win.region));

        // The winner and requester establish a secure channel at the
        // required level and stream a protected record.
        let (mut tx, mut rx, cost) = SecureChannel::establish(level, 42);
        let record = tx.seal(b"stage payload");
        let opened = rx.open(&record)?;
        assert_eq!(opened, b"stage payload");
        println!(
            "      channel: handshake {} kilocycles, {} wire bytes, record +{} bytes",
            (cost.initiator_cycles + cost.responder_cycles) / 1_000,
            cost.wire_bytes,
            record.len() - b"stage payload".len()
        );
        book.release(case as u64);
    }
    assert_eq!(book.live(), 0, "every burst link closed");

    // Trust: a node that misbehaves loses future auctions indirectly
    // through the Privacy & Security Manager's trust gate.
    println!("\n== trust reaction to a security incident ==");
    let mut trust = TrustModel::new(0.99);
    let suspect = fed.continuum().edge()[2];
    for _ in 0..25 {
        trust.observe(suspect, Observation::TaskOk);
    }
    println!("  {} trust after 25 good tasks : {:.3}", suspect, trust.score(suspect));
    trust.observe(suspect, Observation::SecurityIncident);
    println!("  {} trust after one incident  : {:.3}", suspect, trust.score(suspect));
    Ok(())
}
