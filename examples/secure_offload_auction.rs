//! Inter-agent negotiation with security constraints: layer agents bid
//! for a stage (paper Sect. IV), the winner opens a Table II secure
//! channel, and the trust model reacts to an injected incident.
//!
//! ```sh
//! cargo run --example secure_offload_auction
//! ```

use myrtus::continuum::topology::ContinuumBuilder;
use myrtus::mirto::agent::{auction, layer_agents, OffloadQuery};
use myrtus::security::channel::SecureChannel;
use myrtus::security::suite::SecurityLevel;
use myrtus::security::trust::{Observation, TrustModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let continuum = ContinuumBuilder::new().build();
    let agents = layer_agents(&continuum);
    let source = continuum.edge()[0];

    println!("== offload auctions from {} ==", source);
    let cases = [
        ("light filter on a big frame", 2.0, 460_800, SecurityLevel::Low),
        ("pose CNN on a small tensor", 5_000.0, 16_384, SecurityLevel::Medium),
        ("archival batch (PQC required)", 100_000.0, 4_096, SecurityLevel::High),
    ];
    for (label, work_mc, bytes, level) in cases {
        let query = OffloadQuery {
            data_at: source,
            work_mc,
            input_bytes: bytes,
            mem_mb: 64,
            min_level: level,
        };
        let win = auction(&agents, continuum.sim(), &query).expect("some agent bids");
        println!(
            "  {label:32} → {:5} layer, node {}, ETA {:.2} ms ({} security)",
            win.layer.to_string(),
            win.node,
            win.est_completion.as_millis_f64(),
            level
        );

        // The winner and requester establish a secure channel at the
        // required level and stream a protected record.
        let (mut tx, mut rx, cost) = SecureChannel::establish(level, 42);
        let record = tx.seal(b"stage payload");
        let opened = rx.open(&record)?;
        assert_eq!(opened, b"stage payload");
        println!(
            "      channel: handshake {} kilocycles, {} wire bytes, record +{} bytes",
            (cost.initiator_cycles + cost.responder_cycles) / 1_000,
            cost.wire_bytes,
            record.len() - b"stage payload".len()
        );
    }

    // Trust: a node that misbehaves loses future auctions indirectly
    // through the Privacy & Security Manager's trust gate.
    println!("\n== trust reaction to a security incident ==");
    let mut trust = TrustModel::new(0.99);
    let suspect = continuum.edge()[2];
    for _ in 0..25 {
        trust.observe(suspect, Observation::TaskOk);
    }
    println!("  {} trust after 25 good tasks : {:.3}", suspect, trust.score(suspect));
    trust.observe(suspect, Observation::SecurityIncident);
    println!("  {} trust after one incident  : {:.3}", suspect, trust.score(suspect));
    Ok(())
}
