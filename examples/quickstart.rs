//! Quickstart: deploy an application onto the continuum through the
//! MIRTO API and run the cognitive orchestration loop.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use myrtus::continuum::time::SimTime;
use myrtus::continuum::topology::ContinuumBuilder;
use myrtus::mirto::api::{ApiDaemon, ApiRequest, ApiResponse, Operation};
use myrtus::mirto::engine::{EngineConfig, OrchestrationEngine};
use myrtus::mirto::policies::GreedyBestFit;
use myrtus::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's reference infrastructure (Fig. 2).
    let mut continuum = ContinuumBuilder::new().build();
    println!(
        "continuum: {} edge, {} fog, {} cloud nodes",
        continuum.edge().len(),
        continuum.fog().len(),
        continuum.cloud().len()
    );

    // 2. Submit a deployment request through the MIRTO API daemon:
    //    bearer token → Authentication Module, TOSCA-lite profile →
    //    TOSCA Validation Processor.
    let mut api = ApiDaemon::new(b"demo-secret");
    let token = api.authenticator().issue("operator", &["deploy"], SimTime::from_secs(3_600));
    let profile = scenarios::telerehab_with(3).to_profile();
    let response =
        api.handle(&ApiRequest { token, operation: Operation::Deploy { profile } }, SimTime::ZERO)?;
    let ApiResponse::Accepted { principal, application } = response else {
        unreachable!("deploy requests yield Accepted");
    };
    println!(
        "accepted deployment of {:?} from {} ({} components)",
        application.name,
        principal.name,
        application.components.len()
    );

    // 3. Orchestrate: greedy placement + the full cognitive loop.
    let engine = OrchestrationEngine::new(Box::new(GreedyBestFit::new()), EngineConfig::default());
    let report = engine.run(&mut continuum, vec![application], SimTime::from_secs(6))?;

    // 4. Outcome.
    let app = &report.apps[0];
    println!("\n=== orchestration report ({} policy) ===", report.policy);
    println!("requests completed : {}", app.completed);
    println!("requests failed    : {}", app.failed);
    println!("deadline QoS       : {:.1} %", app.qos() * 100.0);
    if let Some(lat) = &app.latency_ms {
        println!(
            "latency ms         : mean {:.2}  p95 {:.2}  max {:.2}",
            lat.mean, lat.p95, lat.max
        );
    }
    println!("total energy       : {:.2} J", report.total_energy_j);
    println!(
        "energy by layer    : edge {:.2} J, fog {:.2} J, cloud {:.2} J",
        report.layer_energy_j[0], report.layer_energy_j[1], report.layer_energy_j[2]
    );
    println!("op-point switches  : {}", report.op_switches);
    println!("security handshakes: {} kilocycles", report.handshake_cycles / 1_000);
    if !app.slowest_trace.is_empty() {
        println!("\nslowest request, stage by stage:");
        for span in &app.slowest_trace {
            println!(
                "  {:14} on {:8} finished at {}",
                span.stage,
                span.node.to_string(),
                span.finished_at
            );
        }
    }
    Ok(())
}
