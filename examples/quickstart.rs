//! Quickstart: deploy an application onto the continuum through the
//! MIRTO API and run the cognitive orchestration loop.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Set `MYRTUS_OBS_DIR=<dir>` to run the same scenario with
//! observability enabled plus a small fault window, and export the
//! structured trace and metric snapshot as JSONL into `<dir>`:
//!
//! ```sh
//! MYRTUS_OBS_DIR=out cargo run --example quickstart
//! head out/quickstart_trace.jsonl
//! ```
//!
//! Add `MYRTUS_CHAOS_SEED=<n>` to replace the aimed crash with a
//! seeded random chaos plan (node crashes, link cuts, permanent
//! outages) absorbed by the retry subsystem:
//!
//! ```sh
//! MYRTUS_OBS_DIR=out MYRTUS_CHAOS_SEED=1 cargo run --example quickstart
//! ```
//!
//! Or `MYRTUS_SURGE_SEED=<n>` to run the elastic-serving scenario
//! instead: a seeded open-loop surge (one protected interactive tenant,
//! two best-effort bulk tenants) through admission control, load
//! shedding and the MAPE autoscaler:
//!
//! ```sh
//! MYRTUS_OBS_DIR=out MYRTUS_SURGE_SEED=1 cargo run --example quickstart
//! ```

use myrtus::continuum::fault::FaultPlan;
use myrtus::continuum::ids::{LinkId, NodeId};
use myrtus::continuum::retry::RetryPolicy;
use myrtus::continuum::time::{SimDuration, SimTime};
use myrtus::continuum::topology::{Continuum, ContinuumBuilder};
use myrtus::mirto::api::{ApiDaemon, ApiRequest, ApiResponse, Operation};
use myrtus::mirto::engine::{EngineConfig, OrchestrationEngine};
use myrtus::mirto::policies::GreedyBestFit;
use myrtus::obs::{ObsConfig, TraceKind};
use myrtus::workload::scenarios;

const HORIZON: SimTime = SimTime::from_secs(6);

fn obs_engine() -> OrchestrationEngine {
    // Fault tolerance on: retries with a per-attempt timeout, plus k=2
    // replication of deadline-critical stages (first completion wins).
    // The timeout sits *above* the congested attempt-latency tail the
    // duplicated frame transfers produce, so it only catches genuine
    // stalls (attempts caught by the link cut or the crash window) —
    // a tighter timeout churns healthy-but-queued attempts into a
    // retry storm.
    let retry = RetryPolicy {
        attempt_timeout: Some(SimDuration::from_millis(150)),
        ..RetryPolicy::default()
    };
    OrchestrationEngine::new(
        Box::new(GreedyBestFit::new()),
        EngineConfig {
            obs: ObsConfig::on(),
            retry: Some(retry),
            replicate_critical: true,
            ..EngineConfig::default()
        },
    )
}

/// Uses the trace of a fault-free probe run to aim a node crash at the
/// midpoint of a real task's service window — guaranteed lost work,
/// picked deterministically (same seed, same probe, same pick).
fn pick_crash(probe: &mut Continuum) -> (u32, u64) {
    let report = obs_engine()
        .run(probe, vec![scenarios::telerehab_with(3)], HORIZON)
        .expect("probe placeable");
    let events = report.obs.trace_events();
    for (i, e) in events.iter().enumerate() {
        let TraceKind::TaskStart { node, task } = e.kind else { continue };
        if e.at_us < 300_000 {
            continue;
        }
        for later in &events[i + 1..] {
            let TraceKind::TaskComplete { node: n2, task: t2, .. } = later.kind else { continue };
            if n2 == node && t2 == task {
                if later.at_us.saturating_sub(e.at_us) > 200 {
                    return (node, e.at_us + (later.at_us - e.at_us) / 2);
                }
                break;
            }
        }
    }
    panic!("probe run has no task with a >200 µs service window");
}

/// Writes the run's trace, metric snapshot, time-series CSV and
/// critical path under `dir` — shared by every observability mode so
/// the CI determinism gates diff the same file set.
fn export(
    dir: &std::path::Path,
    report: &myrtus::mirto::engine::OrchestrationReport,
) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("quickstart_trace.jsonl"), report.obs.export_trace_jsonl())?;
    std::fs::write(dir.join("quickstart_metrics.jsonl"), report.obs.export_metrics_jsonl())?;
    std::fs::write(dir.join("quickstart_metrics.txt"), report.obs.export_metrics_table())?;
    std::fs::write(dir.join("quickstart_timeseries.csv"), report.obs.export_timeseries_csv())?;
    let mut cp = String::from("app,stage,node,finished_at_us\n");
    for app in &report.apps {
        for span in &app.critical_path {
            cp.push_str(&format!(
                "{},{},{},{}\n",
                app.app_id,
                span.stage,
                span.node,
                span.finished_at.as_micros()
            ));
        }
    }
    std::fs::write(dir.join("quickstart_critical_path.csv"), cp)?;
    Ok(())
}

/// The observability-enabled variant: same scenario, plus a
/// crash-and-recover on a loaded host and a link cut-and-heal, with the
/// trace and metric snapshot exported as JSONL (and a pretty table).
fn run_with_observability(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    let mut continuum = ContinuumBuilder::new().build();
    if let Some(seed) = std::env::var("MYRTUS_SURGE_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    {
        // Surge mode: the elastic-serving stack — a seeded open-loop
        // overload with QoS classes, gated by the admission token
        // bucket and absorbed by the MAPE autoscaler.
        use myrtus::continuum::admission::AdmissionPolicy;
        use myrtus::mirto::managers::elasticity::ElasticityConfig;
        let engine = OrchestrationEngine::new(
            Box::new(GreedyBestFit::new()),
            EngineConfig {
                obs: ObsConfig::on(),
                admission: Some(AdmissionPolicy {
                    rate_per_window: 20,
                    ..AdmissionPolicy::default()
                }),
                elasticity: Some(ElasticityConfig::default()),
                ..EngineConfig::default()
            },
        );
        println!("surge mode: seeded overload (seed {seed}), admission + autoscaler enabled");
        let report = engine.run(
            &mut continuum,
            scenarios::surge::surge_mix(seed, SimTime::from_secs(4)),
            SimTime::from_secs(5),
        )?;
        export(dir, &report)?;
        let interactive = &report.apps[0];
        let bulk_shed: u64 = report.apps[1..].iter().map(|a| a.shed).sum();
        println!(
            "interactive tenant: goodput {:.1} %, SLO attainment {:.1} %, shed {}",
            interactive.goodput() * 100.0,
            interactive.slo_attainment() * 100.0,
            interactive.shed,
        );
        println!(
            "bulk tenants shed {bulk_shed} tasks ({} admitted, {} rate-limited, {} queue-full); \
             autoscaler: {} up / {} down",
            report.obs.counter_value("tasks_admitted", ""),
            report.obs.counter_value("tasks_shed", "rate_limit"),
            report.obs.counter_value("tasks_shed", "queue_full"),
            report.obs.counter_value("scale_ups", ""),
            report.obs.counter_value("scale_downs", ""),
        );
        println!(
            "observability: {} trace events ({} dropped), exports under {}",
            report.obs.trace_len(),
            report.obs.trace_dropped(),
            dir.display()
        );
        println!("render the run report with: cargo run --bin myrtus-report -- {}", dir.display());
        return Ok(());
    }
    if let Some(seed) = std::env::var("MYRTUS_CHAOS_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    {
        // Chaos mode: a seeded random fault plan instead of the aimed
        // crash — same retry subsystem, same export pipeline.
        let nodes = continuum.all_nodes();
        let links: Vec<LinkId> =
            continuum.sim().network().iter_links().map(|(id, _, _)| id).collect();
        FaultPlan::random_chaos(
            seed,
            &nodes,
            &links,
            0.25,
            0.25,
            0.3,
            HORIZON,
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        )
        .apply(continuum.sim_mut());
        println!("chaos mode: seeded random fault plan (seed {seed}), retries enabled");
    } else {
        let (victim, crash_at_us) = pick_crash(&mut ContinuumBuilder::new().build());
        let link = continuum
            .sim()
            .network()
            .iter_links()
            .map(|(id, _, _)| id)
            .next()
            .expect("the reference topology has links");
        FaultPlan::new()
            .crash(
                NodeId::from_raw(victim),
                SimTime::from_micros(crash_at_us),
                Some(SimDuration::from_millis(400)),
            )
            .cut_link(link, SimTime::from_millis(500), Some(SimDuration::from_millis(200)))
            .apply(continuum.sim_mut());
    }
    let report = obs_engine().run(&mut continuum, vec![scenarios::telerehab_with(3)], HORIZON)?;

    export(dir, &report)?;
    let app = &report.apps[0];
    println!(
        "requests completed/failed: {}/{} — retries {}, timeouts {}, give-ups {}, replica dedups {}",
        app.completed,
        app.failed,
        report.obs.counter_value("task_retries", ""),
        report.obs.counter_value("task_timeouts", ""),
        report.obs.counter_value("task_gave_up", ""),
        report.obs.counter_value("replica_dedups", ""),
    );
    println!(
        "observability: {} trace events ({} dropped), {} time-series samples, exports under {}",
        report.obs.trace_len(),
        report.obs.trace_dropped(),
        report.obs.ts_sample_count(),
        dir.display()
    );
    println!("render the run report with: cargo run --bin myrtus-report -- {}", dir.display());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Observability mode: same scenario, instrumented and exported.
    if let Some(dir) = std::env::var_os("MYRTUS_OBS_DIR") {
        return run_with_observability(std::path::Path::new(&dir));
    }

    // 1. Build the paper's reference infrastructure (Fig. 2).
    let mut continuum = ContinuumBuilder::new().build();
    println!(
        "continuum: {} edge, {} fog, {} cloud nodes",
        continuum.edge().len(),
        continuum.fog().len(),
        continuum.cloud().len()
    );

    // 2. Submit a deployment request through the MIRTO API daemon:
    //    bearer token → Authentication Module, TOSCA-lite profile →
    //    TOSCA Validation Processor.
    let mut api = ApiDaemon::new(b"demo-secret");
    let token = api.authenticator().issue("operator", &["deploy"], SimTime::from_secs(3_600));
    let profile = scenarios::telerehab_with(3).to_profile();
    let response =
        api.handle(&ApiRequest { token, operation: Operation::Deploy { profile } }, SimTime::ZERO)?;
    let ApiResponse::Accepted { principal, application } = response else {
        unreachable!("deploy requests yield Accepted");
    };
    println!(
        "accepted deployment of {:?} from {} ({} components)",
        application.name,
        principal.name,
        application.components.len()
    );

    // 3. Orchestrate: greedy placement + the full cognitive loop.
    let engine = OrchestrationEngine::new(Box::new(GreedyBestFit::new()), EngineConfig::default());
    let report = engine.run(&mut continuum, vec![application], SimTime::from_secs(6))?;

    // 4. Outcome.
    let app = &report.apps[0];
    println!("\n=== orchestration report ({} policy) ===", report.policy);
    println!("requests completed : {}", app.completed);
    println!("requests failed    : {}", app.failed);
    println!("deadline QoS       : {:.1} %", app.qos() * 100.0);
    if let Some(lat) = &app.latency_ms {
        println!(
            "latency ms         : mean {:.2}  p95 {:.2}  max {:.2}",
            lat.mean, lat.p95, lat.max
        );
    }
    println!("total energy       : {:.2} J", report.total_energy_j);
    println!(
        "energy by layer    : edge {:.2} J, fog {:.2} J, cloud {:.2} J",
        report.layer_energy_j[0], report.layer_energy_j[1], report.layer_energy_j[2]
    );
    println!("op-point switches  : {}", report.op_switches);
    println!("security handshakes: {} kilocycles", report.handshake_cycles / 1_000);
    if !app.slowest_trace.is_empty() {
        println!("\nslowest request, stage by stage:");
        for span in &app.slowest_trace {
            println!(
                "  {:14} on {:8} finished at {}",
                span.stage,
                span.node.to_string(),
                span.finished_at
            );
        }
    }
    Ok(())
}
