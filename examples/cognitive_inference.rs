//! The full design-time story of an ML kernel (ref [26] flow): import a
//! NN model (ONNX analog) → lower to dataflow → generate program code →
//! estimate HLS / map to a CGRA → compose with a second kernel in one
//! reconfigurable datapath (MDC) → evolve the runtime rules (FREVO) that
//! will orchestrate it.
//!
//! ```sh
//! cargo run --example cognitive_inference
//! ```

use myrtus::continuum::time::SimTime;
use myrtus::dpe::cgra::{map_graph, CgraFabric};
use myrtus::dpe::codegen::emit_kernel_c;
use myrtus::dpe::hls::estimate_graph;
use myrtus::dpe::mdc::compose;
use myrtus::dpe::nn::pose_backbone;
use myrtus::mirto::frevo::{evolve, EvolutionConfig};
use myrtus::workload::scenarios;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Import the model and lower it to the dataflow IR.
    let model = pose_backbone();
    let graph = model.lower()?;
    println!(
        "imported {:?}: {:.1} Mops/inference, lowered to {} dataflow actors",
        model.name,
        model.total_ops()? as f64 / 1e6,
        graph.actors().len()
    );

    // 2. Emit the HLS-ready program code.
    let src = emit_kernel_c(&graph)?;
    println!("generated {} ({} lines of HLS C)", src.name, src.contents.lines().count());

    // 3. Estimate FPGA HLS vs CGRA overlay.
    let hls = estimate_graph(&graph)?;
    let cgra = map_graph(&graph, CgraFabric::overlay_4x4())?;
    println!(
        "FPGA pipeline: {:.1} µs/inference, {} LUTs | CGRA 4x4: {:.1} µs, {} contexts, {} config bytes",
        hls.cycles_per_iteration as f64 / 250.0,
        hls.total_resources.luts,
        cgra.cycles_per_iteration as f64 / 600.0,
        cgra.contexts,
        cgra.config_bytes
    );

    // 4. MDC: one reconfigurable datapath hosting the pose head and a
    //    gesture-classification head sharing the same backbone.
    let mut gesture = pose_backbone();
    gesture.name = "gesture-head".into();
    if let Some(myrtus::dpe::nn::Layer::Dense { outputs }) = gesture.layers.last_mut() {
        *outputs = 12; // 12 gesture classes instead of 34 keypoint coords
    }
    let comp = compose(&[graph, gesture.lower()?])?;
    let area = comp.area_report();
    println!(
        "MDC merge with a gesture head sharing the backbone: {} shared actors, {:.1} % area saved",
        area.shared_actors,
        area.savings() * 100.0
    );

    // 5. FREVO: evolve the runtime local rules for the workload that will
    //    use this kernel.
    let result = evolve(
        &[scenarios::telerehab_with(1)],
        EvolutionConfig {
            parents: 2,
            offspring: 4,
            generations: 3,
            seed: 5,
            horizon: SimTime::from_secs(2),
        },
    );
    println!(
        "evolved runtime rules over {} what-if simulations: fitness {:.2} (eco {:.2}, boost {:.2}, period {} ms)",
        result.evaluations,
        result.best_fitness,
        result.best.tuning.eco_threshold,
        result.best.tuning.boost_threshold,
        result.best.monitoring_period_ms
    );
    Ok(())
}
