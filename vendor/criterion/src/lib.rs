//! Offline stand-in for the `criterion` subset the MYRTUS benches use.
//!
//! It is a real (if simple) benchmarking harness, not a dummy: each
//! `bench_function` does a warm-up, picks an iteration count targeting
//! a fixed per-sample budget, takes `sample_size` samples, and prints
//! the median with min/max spread in criterion-like format. There are
//! no HTML reports, statistics beyond the median, or regression
//! tracking — enough to compare e.g. cached vs uncached evaluation.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Prevents the optimizer from deleting a value or computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-sample measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher { samples: Vec::new(), sample_count }
    }

    /// Measures `f` over warm-up plus `sample_count` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: find how many iterations fit the
        // per-sample budget.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }

    fn report(&self) -> Option<(Duration, Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        Some((sorted[0], median, *sorted.last().expect("non-empty")))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_one(
    name: &str,
    sample_count: usize,
    throughput: Option<&Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(sample_count);
    f(&mut b);
    match b.report() {
        Some((lo, med, hi)) => {
            let rate = throughput
                .map(|t| t.rate(med))
                .map(|r| format!("  thrpt: {r}"))
                .unwrap_or_default();
            println!(
                "{name:<48} time: [{} {} {}]{rate}",
                fmt_duration(lo),
                fmt_duration(med),
                fmt_duration(hi)
            );
        }
        None => println!("{name:<48} (no samples)"),
    }
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Id from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    fn rate(&self, per_iter: Duration) -> String {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match self {
            Throughput::Bytes(b) => {
                let rate = *b as f64 / secs;
                if rate > 1e9 {
                    format!("{:.2} GiB/s", rate / (1u64 << 30) as f64)
                } else {
                    format!("{:.2} MiB/s", rate / (1u64 << 20) as f64)
                }
            }
            Throughput::Elements(e) => format!("{:.0} elem/s", *e as f64 / secs),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.throughput.as_ref(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Display, D: ?Sized, F: FnMut(&mut Bencher, &D)>(
        &mut self,
        id: I,
        input: &D,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.throughput.as_ref(), &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        g.bench_with_input(BenchmarkId::new("x", 1), &5u64, |b, &v| b.iter(|| black_box(v * 2)));
        g.finish();
    }
}
