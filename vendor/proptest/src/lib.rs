//! Offline stand-in for the `proptest` subset the MYRTUS test-suite
//! uses: the `proptest!` macro, numeric-range / `any` / `Just` /
//! tuple / `vec` / `option` / fixed-array / regex-lite string
//! strategies, `prop_oneof!`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: every `#[test]` inside `proptest!` runs
//! `ProptestConfig::cases` deterministic cases. Each case seeds its own
//! PRNG from the test name and case index, so failures are perfectly
//! reproducible (and CI runs are stable). There is no shrinking — a
//! failing case panics with the case number so it can be replayed.

/// Test-runner plumbing: the deterministic case RNG.
pub mod test_runner {
    /// SplitMix64-based deterministic RNG for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: deterministic value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    // Numeric half-open ranges.
    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128 as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Whole-domain strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Arbitrary value of `T` (uniform over the whole domain).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any { _marker: core::marker::PhantomData }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, scale-spread.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    // Tuple strategies (arities 2-4 are what the suite uses).
    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// Uniform choice among same-typed alternatives (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].sample(rng)
        }
    }

    /// Regex-lite string strategy for patterns like `"[a-c]{1,2}"`:
    /// a sequence of literals and single character classes, each with an
    /// optional `{m}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: character class or literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in string strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in string strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition lower bound"),
                        n.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("repetition count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

/// `proptest::collection` — sized containers of sub-strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element` values with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy from an element strategy and a length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` most of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy (≈75% `Some`, like upstream's default weight).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `proptest::array` — fixed-size arrays of a sub-strategy.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed-length array strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// Array strategy of the fixed size in the function name.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }
    uniform_fns!(uniform4 => 4, uniform8 => 8, uniform12 => 12, uniform16 => 16, uniform32 => 32);
}

/// Runner configuration (`cases` is the only knob the suite uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $pat =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Property assertion (no shrinking in the stand-in; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            xs in crate::collection::vec(0.1f64..50.0, 1..40),
            n in 1u64..100,
            flag in any::<bool>(),
            pair in (0usize..5, 0u8..2),
            opt in crate::option::of(1u64..100),
            key in crate::collection::vec("[a-c]{1,2}", 1..4),
            arr in crate::array::uniform12(any::<u8>()),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            prop_assert!(xs.iter().all(|x| (0.1..50.0).contains(x)));
            prop_assert!((1..100).contains(&n));
            let _ = flag;
            prop_assert!(pair.0 < 5 && pair.1 < 2);
            if let Some(v) = opt { prop_assert!((1..100).contains(&v)); }
            prop_assert!(key.iter().all(|k| {
                (1..=2).contains(&k.len()) && k.chars().all(|c| ('a'..='c').contains(&c))
            }));
            prop_assert_eq!(arr.len(), 12);
        }

        #[test]
        fn oneof_hits_all_arms(pick in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
