//! Offline stand-in for the `rayon` parallel-iterator subset the MYRTUS
//! plan-time evaluation fast path uses: `par_iter`/`into_par_iter`,
//! `map`, and order-preserving `collect`, plus `for_each` and `sum`.
//!
//! Execution model: the chain of `map` adapters is composed into one
//! closure and applied over the materialized items by a pool of scoped
//! `std::thread`s, each thread taking a contiguous index chunk. Results
//! are written back slot-by-slot, so output order always equals input
//! order regardless of thread scheduling — the property the workspace's
//! serial-vs-parallel determinism contract relies on.
//!
//! Thread count: `MYRTUS_EVAL_THREADS` (or `RAYON_NUM_THREADS`) if set,
//! otherwise `std::thread::available_parallelism()`. With one thread
//! (or tiny inputs) everything runs inline with zero spawn overhead.

use std::num::NonZeroUsize;

/// Number of worker threads the pool would use.
pub fn current_num_threads() -> usize {
    for var in ["MYRTUS_EVAL_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Applies `f` to every item, in parallel, preserving input order.
fn parallel_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Hand each worker a disjoint contiguous item chunk and a matching
    // slice of output slots; order is restored structurally.
    let mut work: Vec<(Vec<T>, &mut [Option<R>])> = Vec::with_capacity(threads);
    {
        let chunk = n.div_ceil(threads);
        let mut rest: &mut [Option<R>] = &mut slots;
        let mut items = items;
        while !items.is_empty() {
            let take = chunk.min(items.len());
            let tail = items.split_off(take);
            let (head, new_rest) = rest.split_at_mut(take);
            work.push((std::mem::replace(&mut items, tail), head));
            rest = new_rest;
        }
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (chunk_items, out) in work {
            scope.spawn(move || {
                for (slot, item) in out.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

/// A parallel iterator: a source of `Send` items plus a composed
/// per-item transformation.
pub trait ParallelIterator: Sized {
    /// Item type produced by the chain so far.
    type Item: Send;

    /// Runs the chain, applying `consume` to each source item, in
    /// parallel, returning results in input order.
    fn exec<R, F>(self, consume: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Collects the items in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.exec(|x| x))
    }

    /// Applies `f` to every item (effects only).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.exec(f);
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.exec(|x| x).into_iter().sum()
    }
}

/// Sinks for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// `map` adapter.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn exec<R2, G>(self, consume: G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        self.inner.exec(move |x| consume(f(x)))
    }
}

/// Source backed by a materialized `Vec`.
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn exec<R, F>(self, consume: F) -> Vec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_apply(self.items, consume)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;

    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter { items: self.collect() }
    }
}

/// Types whose references yield parallel iterators (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;

    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_is_preserved() {
        let v: Vec<usize> = (0..1_000).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..1_000).map(|i| i * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn ref_iter_and_sum() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: u64 = data.into_par_iter().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn forced_multi_thread_keeps_order() {
        std::env::set_var("MYRTUS_EVAL_THREADS", "4");
        let v: Vec<usize> = (0..97).into_par_iter().map(|i| i + 1).collect();
        std::env::remove_var("MYRTUS_EVAL_THREADS");
        let expect: Vec<usize> = (1..98).collect();
        assert_eq!(v, expect);
    }
}
