//! Offline stand-in for `bytes::Bytes`: a cheaply cloneable immutable
//! byte buffer. The real crate's zero-copy slicing is not needed here —
//! the Knowledge Base only constructs, clones, compares and reads
//! values — so an `Arc<[u8]>` covers the whole used surface.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static slice (copied; the zero-copy distinction is
    /// irrelevant for the simulation workloads).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construct_compare_read() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(AsRef::<[u8]>::as_ref(&a), b"abc");
        assert_eq!(&a[..2], b"ab");
        let c = Bytes::from(vec![1u8, 2]);
        assert_ne!(a, c);
        assert!(!format!("{a:?}").is_empty());
    }
}
