//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in. The workspace derives the traits widely but never feeds
//! the types to a serializer generically, so an empty expansion is
//! sufficient; the `attributes(serde)` registration keeps inert
//! `#[serde(...)]` field attributes accepted.

use proc_macro::TokenStream;

/// Accepts the derive and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the derive and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
