//! Offline stand-in for the subset of `serde` this workspace touches:
//! the `Serialize`/`Deserialize` traits (plus `Serializer`/
//! `Deserializer` for hand-written `with = "..."` modules) and the
//! derive macros, which expand to nothing.
//!
//! No serializer backend exists in the workspace (there is no
//! `serde_json` or similar), so the derives only need to parse; the few
//! manual impls below cover the `bytes_serde` helper in `myrtus-kb`.

pub use serde_derive::{Deserialize, Serialize};

/// Data-format serializer handle (opaque in this stand-in).
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Error value.
    type Error;
}

/// Data-format deserializer handle (opaque in this stand-in).
pub trait Deserializer<'de>: Sized {
    /// Error value.
    type Error;
}

/// Types that can be serialized.
pub trait Serialize {
    /// Serializes `self` (no backend ships with this stand-in).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value (no backend ships with this stand-in).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! impl_noop_serde {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                unreachable!("the offline serde stand-in has no serializer backend")
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                unreachable!("the offline serde stand-in has no deserializer backend")
            }
        }
    )*};
}
impl_noop_serde!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, String);

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unreachable!("the offline serde stand-in has no serializer backend")
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        unreachable!("the offline serde stand-in has no serializer backend")
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        unreachable!("the offline serde stand-in has no deserializer backend")
    }
}
