//! Offline stand-in for the subset of the `rand` crate API this
//! workspace uses: `StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The container this repository builds in has no crates.io access, so
//! the real `rand` cannot be fetched. This crate keeps the same import
//! paths (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`) backed by a
//! xoshiro256++ generator seeded through SplitMix64 — a well-studied,
//! fully deterministic PRNG. Streams differ from upstream `rand`, which
//! is fine: every test in the workspace asserts seed-stability, never
//! concrete draw values.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, span) without modulo bias (Lemire multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing extension trait (`rng.gen()`, `rng.gen_range(..)`).
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// ChaCha-based `StdRng`; same call surface, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Never all-zero (xoshiro fixed point).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&x));
            let y = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let z = r.gen_range(0usize..5);
            assert!(z < 5);
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
