//! The technology inventory of paper Fig. 1: three technical pillars and
//! the components built under each, with the module that implements
//! every entry. The `figure1` experiment binary renders this inventory;
//! the `table1` binary cross-references it against the EU-CEI building
//! blocks.

use serde::{Deserialize, Serialize};

/// A MYRTUS technical pillar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pillar {
    /// Pillar 1: Continuum Computing Infrastructure.
    Infrastructure,
    /// Pillar 2: MIRTO Cognitive Engine.
    CognitiveEngine,
    /// Pillar 3: Design and Programming Environment.
    Dpe,
}

impl std::fmt::Display for Pillar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Pillar::Infrastructure => "Pillar 1 — Continuum Computing Infrastructure",
            Pillar::CognitiveEngine => "Pillar 2 — MIRTO Cognitive Engine",
            Pillar::Dpe => "Pillar 3 — Design & Programming Environment",
        };
        f.write_str(s)
    }
}

/// One technology of the inventory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Technology {
    /// Owning pillar.
    pub pillar: Pillar,
    /// Technology name as the paper presents it.
    pub name: &'static str,
    /// Implementing module path in this repository.
    pub module: &'static str,
    /// Consortium partner(s) contributing this technology in the paper
    /// (this repository reimplements their role from scratch).
    pub partners: &'static str,
}

/// The full inventory, pillar order.
pub fn technologies() -> Vec<Technology> {
    use Pillar::*;
    let t = |pillar, name, module, partners| Technology { pillar, name, module, partners };
    vec![
        // Pillar 1.
        t(
            Infrastructure,
            "Layered cloud-fog-edge topology (Fig. 2)",
            "myrtus_continuum::topology",
            "HIRO, ABI, TNO, USI",
        ),
        t(
            Infrastructure,
            "Edge HMPSoC / RISC-V / multicore node models",
            "myrtus_continuum::node",
            "UNICA, UNISS, UPM, CRF",
        ),
        t(
            Infrastructure,
            "DVFS operating points & energy model",
            "myrtus_continuum::energy",
            "TUD, UNICA",
        ),
        t(Infrastructure, "HTTP/MQTT/CoAP network fabric", "myrtus_continuum::net", "ABI, HIRO"),
        t(
            Infrastructure,
            "Kubernetes-like low-level orchestration + LIQO federation",
            "myrtus_continuum::cluster",
            "ARK, TNO",
        ),
        t(
            Infrastructure,
            "Application/telemetry/infrastructure monitoring",
            "myrtus_continuum::monitor",
            "TNO, UNISS",
        ),
        t(Infrastructure, "Failure injection", "myrtus_continuum::fault", "TNO"),
        t(
            Infrastructure,
            "Raft-replicated Knowledge Base (ETCD contract)",
            "myrtus_kb::raft",
            "HIRO, TNO",
        ),
        t(Infrastructure, "Resource Registry / Status", "myrtus_kb::registry", "TNO"),
        t(
            Infrastructure,
            "Table II security levels (AES/ASCON/SHA-2 + PQC cost models)",
            "myrtus_security::suite",
            "USI",
        ),
        t(Infrastructure, "Secure channels & authentication", "myrtus_security::channel", "USI"),
        t(
            Infrastructure,
            "Gaia-X trust framework (signed self-descriptions)",
            "myrtus_security::gaiax",
            "HIRO",
        ),
        // Pillar 2.
        t(CognitiveEngine, "Four-step MAPE-K orchestration loop", "myrtus_mirto::engine", "TNO"),
        t(
            CognitiveEngine,
            "MIRTO API daemon (authn + TOSCA validation)",
            "myrtus_mirto::api",
            "TNO",
        ),
        t(
            CognitiveEngine,
            "WL Manager (placement + reallocation)",
            "myrtus_mirto::managers::wl",
            "TNO, LAKE, KCL",
        ),
        t(
            CognitiveEngine,
            "Node Manager (operating points, accel configs)",
            "myrtus_mirto::managers::node",
            "UNISS, UNICA, ABI, UPM",
        ),
        t(
            CognitiveEngine,
            "Network Manager (Q-learning routes)",
            "myrtus_mirto::managers::network",
            "KCL",
        ),
        t(
            CognitiveEngine,
            "Privacy & Security Manager (constraints, trust)",
            "myrtus_mirto::managers::privsec",
            "USI",
        ),
        t(CognitiveEngine, "Swarm intelligence placement (PSO/ACO)", "myrtus_mirto::swarm", "LAKE"),
        t(CognitiveEngine, "Federated learning of latency models", "myrtus_mirto::fl", "KCL"),
        t(CognitiveEngine, "Inter-agent offload auctions", "myrtus_mirto::agent", "TNO, LAKE"),
        t(CognitiveEngine, "Trust & reputation KPIs", "myrtus_security::trust", "USI"),
        t(CognitiveEngine, "LIQO/Kubernetes deployment proxy", "myrtus_mirto::deployer", "ARK"),
        t(
            CognitiveEngine,
            "Container image registry (access control + scanning)",
            "myrtus_mirto::images",
            "HIRO, ABI",
        ),
        t(
            CognitiveEngine,
            "Evolutionary local-rule design (FREVO/DynAA analog)",
            "myrtus_mirto::frevo",
            "LAKE, TNO",
        ),
        // Pillar 3.
        t(Dpe, "TOSCA-lite application modeling + validation", "myrtus_workload::tosca", "SOFT"),
        t(Dpe, "Model-based KPI estimation", "myrtus_workload::graph", "SOFT, LAKE, TNO"),
        t(
            Dpe,
            "ADT threat analysis + countermeasure synthesis",
            "myrtus_security::adt",
            "SOFT, USI",
        ),
        t(Dpe, "Dataflow IR (dfg-mlir analog) + transformations", "myrtus_dpe::ir", "TUD"),
        t(Dpe, "HLS estimation (CIRCT-hls / Vitis-HLS stand-in)", "myrtus_dpe::hls", "TUD, UNICA"),
        t(Dpe, "Multi-Dataflow Composer (reconfigurable datapaths)", "myrtus_dpe::mdc", "UNICA"),
        t(Dpe, "Heterogeneous DSE (Mocasin analog)", "myrtus_dpe::dse", "TUD, UPM"),
        t(
            Dpe,
            "Deployment specification (.csar analog) + operating points",
            "myrtus_dpe::deploy",
            "SOFT, TNO",
        ),
        t(Dpe, "NN model import (ONNX front-end analog)", "myrtus_dpe::nn", "TUD, UNICA"),
        t(Dpe, "CGRA mapping (cgra-mlir analog)", "myrtus_dpe::cgra", "TUD, UPM"),
        t(Dpe, "Program-code emission (host C + HLS kernels)", "myrtus_dpe::codegen", "TUD"),
        t(
            Dpe,
            "Lightweight-hash menu (QUARK/spongent/PHOTON models)",
            "myrtus_security::lwc",
            "USI",
        ),
        t(
            Dpe,
            "Smart-mobility & telerehabilitation use cases",
            "myrtus_workload::scenarios",
            "TNO, CRF, UNICA, REPLY",
        ),
    ]
}

/// Technologies of one pillar.
pub fn pillar_technologies(pillar: Pillar) -> Vec<Technology> {
    technologies().into_iter().filter(|t| t.pillar == pillar).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pillar_is_populated() {
        for p in [Pillar::Infrastructure, Pillar::CognitiveEngine, Pillar::Dpe] {
            assert!(pillar_technologies(p).len() >= 7, "{p}");
        }
    }

    #[test]
    fn inventory_is_unique() {
        let names: std::collections::HashSet<&str> =
            technologies().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), technologies().len());
    }

    #[test]
    fn every_technology_names_its_partners() {
        for t in technologies() {
            assert!(!t.partners.is_empty(), "{} missing partners", t.name);
            assert!(
                t.partners.split(", ").all(|p| p.chars().all(|c| c.is_ascii_uppercase())),
                "{}: partner acronyms are uppercase ({})",
                t.name,
                t.partners
            );
        }
    }

    #[test]
    fn modules_reference_workspace_crates() {
        for t in technologies() {
            assert!(t.module.starts_with("myrtus_"), "{}", t.module);
        }
    }
}
