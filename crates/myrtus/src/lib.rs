//! # myrtus
//!
//! Facade crate for the MYRTUS cognitive-computing-continuum
//! reproduction: re-exports the six subsystem crates under one roof and
//! provides the [`inventory`] of technologies per technical pillar
//! (paper Fig. 1).
//!
//! | Pillar | Crates |
//! |---|---|
//! | 1 — Continuum Computing Infrastructure | [`continuum`], [`kb`], [`security`] |
//! | 2 — MIRTO Cognitive Engine | [`mirto`], [`kb`] |
//! | 3 — Design & Programming Environment | [`dpe`], [`workload`] |
//!
//! ## Quick start
//!
//! ```
//! use myrtus::mirto::engine::{run_orchestration, EngineConfig};
//! use myrtus::mirto::policies::GreedyBestFit;
//! use myrtus::continuum::time::SimTime;
//! use myrtus::workload::scenarios;
//!
//! let report = run_orchestration(
//!     Box::new(GreedyBestFit::new()),
//!     EngineConfig::default(),
//!     vec![scenarios::telerehab_with(1)],
//!     SimTime::from_secs(3),
//! ).expect("placeable");
//! assert!(report.apps[0].completed > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use myrtus_continuum as continuum;
pub use myrtus_dpe as dpe;
pub use myrtus_kb as kb;
pub use myrtus_mirto as mirto;
pub use myrtus_obs as obs;
pub use myrtus_security as security;
pub use myrtus_vm as vm;
pub use myrtus_workload as workload;

pub mod inventory;
