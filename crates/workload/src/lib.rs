//! # myrtus-workload
//!
//! Application models for the MYRTUS continuum: a TOSCA-like topology
//! model with a validating textual profile (the object model MIRTO's API
//! daemon accepts), request-level dataflow DAGs, application operating
//! points (refs \[29\], \[30\]), arrival processes, and generators for the
//! paper's Smart-Mobility and Virtual-Telerehabilitation use cases.
//!
//! ## Quick start
//!
//! ```
//! use myrtus_workload::compile::compile_requests;
//! use myrtus_workload::scenarios;
//!
//! let app = scenarios::smart_mobility();
//! app.validate()?;
//! let requests = compile_requests(&app, 0, 7, None).expect("validated");
//! assert!(!requests.is_empty());
//! # Ok::<(), myrtus_workload::tosca::ValidateAppError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod compile;
pub mod graph;
pub mod opset;
pub mod scenarios;
pub mod tosca;
pub mod trace;

pub use arrival::ArrivalSpec;
pub use compile::{compile_requests, CompiledRequest, CompiledStage, Tag};
pub use graph::RequestDag;
pub use opset::{AppOperatingPoint, AppPointSet};
pub use tosca::{Application, Component, ComponentKind, SecurityTier};
