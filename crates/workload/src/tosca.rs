//! TOSCA-like application topology model.
//!
//! MIRTO accepts orchestration requests as TOSCA object models (paper
//! Sect. IV). This module reproduces the subset the paper exercises: node
//! templates (components) with resource / security / QoS requirements,
//! relationships (connections with data volumes and protocols), and an
//! arrival specification — plus a textual *TOSCA-lite profile* with a
//! writer and a validating parser, which stands in for the `.tosca` files
//! exchanged between the DPE and the Cognitive Engine.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use myrtus_continuum::net::Protocol;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::SimDuration;

use crate::arrival::ArrivalSpec;

/// Required security tier of a component (paper Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SecurityTier {
    /// Lightweight non-PQC primitives.
    Low,
    /// Non-PQC but suitable for current threats.
    Medium,
    /// Post-quantum resistant.
    High,
}

impl SecurityTier {
    /// All tiers, weakest first.
    pub const ALL: [SecurityTier; 3] =
        [SecurityTier::Low, SecurityTier::Medium, SecurityTier::High];

    /// Parses `low` / `medium` / `high`.
    pub fn parse(s: &str) -> Option<SecurityTier> {
        match s {
            "low" => Some(SecurityTier::Low),
            "medium" => Some(SecurityTier::Medium),
            "high" => Some(SecurityTier::High),
            _ => None,
        }
    }
}

impl std::fmt::Display for SecurityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SecurityTier::Low => "low",
            SecurityTier::Medium => "medium",
            SecurityTier::High => "high",
        };
        f.write_str(s)
    }
}

/// Functional role of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Data source (camera, IMU, vehicle sensor).
    Sensor,
    /// Stateless processing function (kernel).
    Function,
    /// Long-running stateful service.
    Service,
    /// Data sink / storage endpoint.
    Storage,
}

impl ComponentKind {
    /// Parses the lowercase kind name.
    pub fn parse(s: &str) -> Option<ComponentKind> {
        match s {
            "sensor" => Some(ComponentKind::Sensor),
            "function" => Some(ComponentKind::Function),
            "service" => Some(ComponentKind::Service),
            "storage" => Some(ComponentKind::Storage),
            _ => None,
        }
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ComponentKind::Sensor => "sensor",
            ComponentKind::Function => "function",
            ComponentKind::Service => "service",
            ComponentKind::Storage => "storage",
        };
        f.write_str(s)
    }
}

/// Per-request resource and policy requirements of a component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Software work per request, megacycles.
    pub work_mc: f64,
    /// Memory reservation, MiB.
    pub mem_mb: u64,
    /// Accelerator configuration exploitable by this component.
    pub accel_cfg: Option<u32>,
    /// Minimum security tier for hosting and transport.
    pub security: SecurityTier,
    /// Relative deadline per request.
    pub max_latency: Option<SimDuration>,
    /// Placement hint: preferred continuum layer.
    pub preferred_layer: Option<Layer>,
    /// Whether at-rest data must be stored encrypted.
    pub encrypted_storage: bool,
    /// Portable task body: index into the deployment's VM program
    /// library. Stages with a program run on the task VM (and can be
    /// checkpointed and live-migrated); stages without stay scalar.
    pub program: Option<u32>,
}

impl Default for Requirements {
    fn default() -> Self {
        Requirements {
            work_mc: 1.0,
            mem_mb: 16,
            accel_cfg: None,
            security: SecurityTier::Low,
            max_latency: None,
            preferred_layer: None,
            encrypted_storage: false,
            program: None,
        }
    }
}

/// One node template of the application topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Unique component name within the application.
    pub name: String,
    /// Functional role.
    pub kind: ComponentKind,
    /// Resource / policy requirements.
    pub requirements: Requirements,
}

impl Component {
    /// Creates a component with default requirements.
    pub fn new(name: impl Into<String>, kind: ComponentKind) -> Self {
        Component { name: name.into(), kind, requirements: Requirements::default() }
    }

    /// Sets the per-request work.
    pub fn with_work_mc(mut self, mc: f64) -> Self {
        self.requirements.work_mc = mc;
        self
    }

    /// Sets the memory reservation.
    pub fn with_mem_mb(mut self, mb: u64) -> Self {
        self.requirements.mem_mb = mb;
        self
    }

    /// Sets the accelerator configuration id.
    pub fn with_accel(mut self, cfg: u32) -> Self {
        self.requirements.accel_cfg = Some(cfg);
        self
    }

    /// Sets the minimum security tier.
    pub fn with_security(mut self, tier: SecurityTier) -> Self {
        self.requirements.security = tier;
        self
    }

    /// Sets the per-request relative deadline.
    pub fn with_max_latency(mut self, d: SimDuration) -> Self {
        self.requirements.max_latency = Some(d);
        self
    }

    /// Sets the preferred layer hint.
    pub fn with_preferred_layer(mut self, layer: Layer) -> Self {
        self.requirements.preferred_layer = Some(layer);
        self
    }

    /// Sets the portable task body (VM program library index).
    pub fn with_program(mut self, program: u32) -> Self {
        self.requirements.program = Some(program);
        self
    }
}

/// A directed relationship: `from` streams data to `to`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Producer component name.
    pub from: String,
    /// Consumer component name.
    pub to: String,
    /// Bytes transferred per request.
    pub bytes_per_req: u64,
    /// Transport protocol.
    pub protocol: Protocol,
}

/// A complete TOSCA-like application topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name.
    pub name: String,
    /// Node templates.
    pub components: Vec<Component>,
    /// Relationships.
    pub connections: Vec<Connection>,
    /// Request arrival process.
    pub arrival: ArrivalSpec,
}

/// Validation failures for an [`Application`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateAppError {
    /// The application has no components.
    Empty,
    /// Two components share a name.
    DuplicateComponent(String),
    /// A connection references an unknown component.
    UnknownComponent {
        /// The offending reference.
        name: String,
    },
    /// A connection loops a component to itself.
    SelfConnection(String),
    /// The processing pipeline (Function/Service subgraph) has a cycle.
    CyclicPipeline,
}

impl std::fmt::Display for ValidateAppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateAppError::Empty => write!(f, "application has no components"),
            ValidateAppError::DuplicateComponent(n) => {
                write!(f, "duplicate component name {n:?}")
            }
            ValidateAppError::UnknownComponent { name } => {
                write!(f, "connection references unknown component {name:?}")
            }
            ValidateAppError::SelfConnection(n) => {
                write!(f, "component {n:?} connects to itself")
            }
            ValidateAppError::CyclicPipeline => write!(f, "processing pipeline has a cycle"),
        }
    }
}

impl std::error::Error for ValidateAppError {}

impl Application {
    /// Creates an application.
    pub fn new(name: impl Into<String>, arrival: ArrivalSpec) -> Self {
        Application { name: name.into(), components: Vec::new(), connections: Vec::new(), arrival }
    }

    /// Adds a component (builder style).
    pub fn with_component(mut self, c: Component) -> Self {
        self.components.push(c);
        self
    }

    /// Adds a connection (builder style).
    pub fn with_connection(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        bytes_per_req: u64,
        protocol: Protocol,
    ) -> Self {
        self.connections.push(Connection {
            from: from.into(),
            to: to.into(),
            bytes_per_req,
            protocol,
        });
        self
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// The strictest security tier demanded by any component.
    pub fn max_security(&self) -> SecurityTier {
        self.components.iter().map(|c| c.requirements.security).max().unwrap_or(SecurityTier::Low)
    }

    /// Validates the topology (the TOSCA Validation Processor contract).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateAppError`] found.
    pub fn validate(&self) -> Result<(), ValidateAppError> {
        if self.components.is_empty() {
            return Err(ValidateAppError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for c in &self.components {
            if !seen.insert(c.name.as_str()) {
                return Err(ValidateAppError::DuplicateComponent(c.name.clone()));
            }
        }
        for conn in &self.connections {
            for name in [&conn.from, &conn.to] {
                if !seen.contains(name.as_str()) {
                    return Err(ValidateAppError::UnknownComponent { name: name.clone() });
                }
            }
            if conn.from == conn.to {
                return Err(ValidateAppError::SelfConnection(conn.from.clone()));
            }
        }
        // Kahn's algorithm over the full connection graph: request
        // processing must be a DAG for latency to be well-defined.
        let mut indeg: BTreeMap<&str, usize> =
            self.components.iter().map(|c| (c.name.as_str(), 0)).collect();
        for conn in &self.connections {
            *indeg.get_mut(conn.to.as_str()).expect("validated above") += 1;
        }
        let mut ready: Vec<&str> =
            indeg.iter().filter(|(_, d)| **d == 0).map(|(n, _)| *n).collect();
        let mut visited = 0usize;
        while let Some(n) = ready.pop() {
            visited += 1;
            for conn in self.connections.iter().filter(|c| c.from == n) {
                let d = indeg.get_mut(conn.to.as_str()).expect("validated above");
                *d -= 1;
                if *d == 0 {
                    ready.push(conn.to.as_str());
                }
            }
        }
        if visited != self.components.len() {
            return Err(ValidateAppError::CyclicPipeline);
        }
        Ok(())
    }

    /// Serializes to the textual TOSCA-lite profile.
    pub fn to_profile(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("app {}\n", self.name));
        out.push_str(&format!("arrival {}\n", self.arrival.to_profile_line()));
        for c in &self.components {
            let r = &c.requirements;
            out.push_str(&format!(
                "component {} kind={} work_mc={} mem_mb={} security={}",
                c.name, c.kind, r.work_mc, r.mem_mb, r.security
            ));
            if let Some(a) = r.accel_cfg {
                out.push_str(&format!(" accel={a}"));
            }
            if let Some(d) = r.max_latency {
                out.push_str(&format!(" max_latency_us={}", d.as_micros()));
            }
            if let Some(l) = r.preferred_layer {
                out.push_str(&format!(" layer={l}"));
            }
            if r.encrypted_storage {
                out.push_str(" encrypted_storage=true");
            }
            if let Some(p) = r.program {
                out.push_str(&format!(" program={p}"));
            }
            out.push('\n');
        }
        for conn in &self.connections {
            out.push_str(&format!(
                "connect {} -> {} bytes={} protocol={}\n",
                conn.from, conn.to, conn.bytes_per_req, conn.protocol
            ));
        }
        out
    }

    /// Parses the textual TOSCA-lite profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseProfileError`] describing the offending line.
    pub fn from_profile(text: &str) -> Result<Application, ParseProfileError> {
        parse_profile(text)
    }
}

/// Errors from parsing a TOSCA-lite profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProfileError {}

fn err(line: usize, message: impl Into<String>) -> ParseProfileError {
    ParseProfileError { line, message: message.into() }
}

fn parse_kv(tok: &str) -> Option<(&str, &str)> {
    tok.split_once('=')
}

fn parse_profile(text: &str) -> Result<Application, ParseProfileError> {
    let mut name: Option<String> = None;
    let mut arrival: Option<ArrivalSpec> = None;
    let mut components = Vec::new();
    let mut connections = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("app") => {
                let n = toks.next().ok_or_else(|| err(lineno, "app needs a name"))?;
                name = Some(n.to_string());
            }
            Some("arrival") => {
                let rest: Vec<&str> = toks.collect();
                arrival =
                    Some(ArrivalSpec::parse_profile_tokens(&rest).map_err(|m| err(lineno, m))?);
            }
            Some("component") => {
                let cname = toks.next().ok_or_else(|| err(lineno, "component needs a name"))?;
                let mut comp = Component::new(cname, ComponentKind::Function);
                for tok in toks {
                    let (k, v) = parse_kv(tok)
                        .ok_or_else(|| err(lineno, format!("expected key=value, got {tok:?}")))?;
                    match k {
                        "kind" => {
                            comp.kind = ComponentKind::parse(v)
                                .ok_or_else(|| err(lineno, format!("unknown kind {v:?}")))?;
                        }
                        "work_mc" => {
                            comp.requirements.work_mc =
                                v.parse().map_err(|_| err(lineno, format!("bad work_mc {v:?}")))?;
                        }
                        "mem_mb" => {
                            comp.requirements.mem_mb =
                                v.parse().map_err(|_| err(lineno, format!("bad mem_mb {v:?}")))?;
                        }
                        "security" => {
                            comp.requirements.security = SecurityTier::parse(v)
                                .ok_or_else(|| err(lineno, format!("unknown tier {v:?}")))?;
                        }
                        "accel" => {
                            comp.requirements.accel_cfg = Some(
                                v.parse().map_err(|_| err(lineno, format!("bad accel {v:?}")))?,
                            );
                        }
                        "max_latency_us" => {
                            let us: u64 =
                                v.parse().map_err(|_| err(lineno, format!("bad latency {v:?}")))?;
                            comp.requirements.max_latency = Some(SimDuration::from_micros(us));
                        }
                        "layer" => {
                            comp.requirements.preferred_layer = Some(match v {
                                "edge" => Layer::Edge,
                                "fog" => Layer::Fog,
                                "cloud" => Layer::Cloud,
                                _ => return Err(err(lineno, format!("unknown layer {v:?}"))),
                            });
                        }
                        "encrypted_storage" => {
                            comp.requirements.encrypted_storage = v == "true";
                        }
                        "program" => {
                            comp.requirements.program = Some(
                                v.parse().map_err(|_| err(lineno, format!("bad program {v:?}")))?,
                            );
                        }
                        _ => return Err(err(lineno, format!("unknown key {k:?}"))),
                    }
                }
                components.push(comp);
            }
            Some("connect") => {
                let from = toks.next().ok_or_else(|| err(lineno, "connect needs a source"))?;
                let arrow = toks.next();
                if arrow != Some("->") {
                    return Err(err(lineno, "expected `->` after source"));
                }
                let to = toks.next().ok_or_else(|| err(lineno, "connect needs a target"))?;
                let mut bytes = 0u64;
                let mut protocol = Protocol::Mqtt;
                for tok in toks {
                    let (k, v) = parse_kv(tok)
                        .ok_or_else(|| err(lineno, format!("expected key=value, got {tok:?}")))?;
                    match k {
                        "bytes" => {
                            bytes =
                                v.parse().map_err(|_| err(lineno, format!("bad bytes {v:?}")))?;
                        }
                        "protocol" => {
                            protocol = match v {
                                "http" => Protocol::Http,
                                "mqtt" => Protocol::Mqtt,
                                "coap" => Protocol::Coap,
                                _ => return Err(err(lineno, format!("unknown protocol {v:?}"))),
                            };
                        }
                        _ => return Err(err(lineno, format!("unknown key {k:?}"))),
                    }
                }
                connections.push(Connection {
                    from: from.to_string(),
                    to: to.to_string(),
                    bytes_per_req: bytes,
                    protocol,
                });
            }
            Some(other) => return Err(err(lineno, format!("unknown directive {other:?}"))),
            None => unreachable!("empty lines skipped"),
        }
    }

    let name = name.ok_or_else(|| err(0, "missing `app` directive"))?;
    let arrival = arrival.ok_or_else(|| err(0, "missing `arrival` directive"))?;
    Ok(Application { name, components, connections, arrival })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalSpec;

    fn sample_app() -> Application {
        Application::new("demo", ArrivalSpec::periodic(SimDuration::from_millis(33), 10))
            .with_component(Component::new("cam", ComponentKind::Sensor).with_work_mc(0.1))
            .with_component(
                Component::new("pose", ComponentKind::Function)
                    .with_work_mc(8.0)
                    .with_accel(3)
                    .with_security(SecurityTier::Medium)
                    .with_max_latency(SimDuration::from_millis(50))
                    .with_program(2),
            )
            .with_component(Component::new("store", ComponentKind::Storage).with_work_mc(0.2))
            .with_connection("cam", "pose", 64_000, Protocol::Mqtt)
            .with_connection("pose", "store", 2_000, Protocol::Http)
    }

    #[test]
    fn valid_app_passes_validation() {
        sample_app().validate().expect("valid");
    }

    #[test]
    fn duplicate_component_rejected() {
        let app = sample_app().with_component(Component::new("cam", ComponentKind::Sensor));
        assert_eq!(app.validate(), Err(ValidateAppError::DuplicateComponent("cam".into())));
    }

    #[test]
    fn unknown_reference_rejected() {
        let app = sample_app().with_connection("pose", "ghost", 1, Protocol::Coap);
        assert!(matches!(app.validate(), Err(ValidateAppError::UnknownComponent { .. })));
    }

    #[test]
    fn self_connection_rejected() {
        let app = sample_app().with_connection("pose", "pose", 1, Protocol::Coap);
        assert_eq!(app.validate(), Err(ValidateAppError::SelfConnection("pose".into())));
    }

    #[test]
    fn cycle_rejected() {
        let app = sample_app().with_connection("store", "cam", 1, Protocol::Coap);
        assert_eq!(app.validate(), Err(ValidateAppError::CyclicPipeline));
    }

    #[test]
    fn empty_app_rejected() {
        let app = Application::new("x", ArrivalSpec::periodic(SimDuration::from_millis(1), 1));
        assert_eq!(app.validate(), Err(ValidateAppError::Empty));
    }

    #[test]
    fn profile_round_trips() {
        let app = sample_app();
        let text = app.to_profile();
        let parsed = Application::from_profile(&text).expect("parses");
        assert_eq!(parsed, app);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let text = "app demo\narrival periodic period_us=1000 count=1\ncomponent a kind=banana\n";
        let e = Application::from_profile(text).expect_err("bad kind");
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("banana"));
    }

    #[test]
    fn parser_rejects_missing_directives() {
        assert!(Application::from_profile("component a kind=sensor\n").is_err());
        let only_app = "app demo\n";
        assert!(Application::from_profile(only_app).is_err());
    }

    #[test]
    fn max_security_is_strictest() {
        assert_eq!(sample_app().max_security(), SecurityTier::Medium);
    }

    #[test]
    fn tier_ordering_supports_constraint_checks() {
        assert!(SecurityTier::High > SecurityTier::Medium);
        assert!(SecurityTier::Medium > SecurityTier::Low);
        assert_eq!(SecurityTier::parse("high"), Some(SecurityTier::High));
        assert_eq!(SecurityTier::parse("HIGH"), None);
    }
}
