//! Application operating points (after refs \[29\], \[30\]).
//!
//! The deployment specification exported by the DPE carries
//! meta-information describing several *operating points* per application
//! component — e.g. full-resolution vs. reduced-resolution inference —
//! that the MIRTO Node Manager switches between at runtime to trade
//! quality for latency and energy. [`AppPointSet::pareto_front`] extracts
//! the non-dominated points the manager actually considers.

use serde::{Deserialize, Serialize};

/// One application-level operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOperatingPoint {
    /// Human-readable name (e.g. `"720p"`).
    pub name: String,
    /// Work multiplier relative to the component's nominal `work_mc`.
    pub work_scale: f64,
    /// Data-volume multiplier relative to nominal connection bytes.
    pub bytes_scale: f64,
    /// Application-level quality in `[0, 1]` (1 = full quality).
    pub quality: f64,
}

impl AppOperatingPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if any scale is non-positive or quality is outside `[0, 1]`.
    pub fn new(name: impl Into<String>, work_scale: f64, bytes_scale: f64, quality: f64) -> Self {
        assert!(work_scale > 0.0 && bytes_scale > 0.0, "scales must be positive");
        assert!((0.0..=1.0).contains(&quality), "quality must be in [0, 1]");
        AppOperatingPoint { name: name.into(), work_scale, bytes_scale, quality }
    }

    /// Whether `self` dominates `other`: no worse in work, bytes and
    /// quality, strictly better in at least one.
    pub fn dominates(&self, other: &AppOperatingPoint) -> bool {
        let no_worse = self.work_scale <= other.work_scale
            && self.bytes_scale <= other.bytes_scale
            && self.quality >= other.quality;
        let better = self.work_scale < other.work_scale
            || self.bytes_scale < other.bytes_scale
            || self.quality > other.quality;
        no_worse && better
    }
}

/// An indexed set of application operating points; index 0 is nominal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPointSet {
    points: Vec<AppOperatingPoint>,
}

impl AppPointSet {
    /// Creates a set; index 0 is the nominal (deployment-default) point.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: Vec<AppOperatingPoint>) -> Self {
        assert!(!points.is_empty(), "need at least one operating point");
        AppPointSet { points }
    }

    /// The conventional three-point ladder used by the use cases:
    /// full / balanced / degraded.
    pub fn standard_ladder() -> Self {
        AppPointSet::new(vec![
            AppOperatingPoint::new("full", 1.0, 1.0, 1.0),
            AppOperatingPoint::new("balanced", 0.55, 0.5, 0.85),
            AppOperatingPoint::new("degraded", 0.25, 0.2, 0.6),
        ])
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn point(&self, idx: usize) -> &AppOperatingPoint {
        &self.points[idx]
    }

    /// The point at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&AppOperatingPoint> {
        self.points.get(idx)
    }

    /// Iterates the points in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, AppOperatingPoint> {
        self.points.iter()
    }

    /// Indices of the Pareto-optimal points (not dominated by any other).
    pub fn pareto_front(&self) -> Vec<usize> {
        (0..self.points.len())
            .filter(|&i| {
                !self.points.iter().enumerate().any(|(j, p)| j != i && p.dominates(&self.points[i]))
            })
            .collect()
    }

    /// The cheapest (lowest work) point with quality ≥ `min_quality`,
    /// if any.
    pub fn cheapest_with_quality(&self, min_quality: f64) -> Option<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.quality >= min_quality)
            .min_by(|a, b| {
                a.1.work_scale.partial_cmp(&b.1.work_scale).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict() {
        let a = AppOperatingPoint::new("a", 0.5, 0.5, 0.9);
        let b = AppOperatingPoint::new("b", 1.0, 1.0, 0.9);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point never dominates itself");
    }

    #[test]
    fn ladder_is_fully_pareto() {
        let set = AppPointSet::standard_ladder();
        assert_eq!(set.pareto_front(), vec![0, 1, 2]);
    }

    #[test]
    fn dominated_point_is_excluded() {
        let set = AppPointSet::new(vec![
            AppOperatingPoint::new("full", 1.0, 1.0, 1.0),
            AppOperatingPoint::new("bad", 1.0, 1.0, 0.5), // dominated by full
            AppOperatingPoint::new("eco", 0.3, 0.3, 0.7),
        ]);
        assert_eq!(set.pareto_front(), vec![0, 2]);
    }

    #[test]
    fn cheapest_with_quality_picks_lowest_work() {
        let set = AppPointSet::standard_ladder();
        assert_eq!(set.cheapest_with_quality(0.8), Some(1));
        assert_eq!(set.cheapest_with_quality(0.0), Some(2));
        assert_eq!(set.cheapest_with_quality(0.99), Some(0));
        assert_eq!(set.cheapest_with_quality(1.1), None);
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn invalid_quality_rejected() {
        let _ = AppOperatingPoint::new("x", 1.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_set_rejected() {
        let _ = AppPointSet::new(vec![]);
    }
}
