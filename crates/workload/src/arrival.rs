//! Request arrival processes.
//!
//! An [`ArrivalSpec`] describes *when* application requests are released:
//! strictly periodic (sensor sampling), Poisson (open user traffic),
//! on/off bursts (event-driven scenarios like the paper's smart-mobility
//! incidents), or an explicit trace. [`ArrivalSpec::generate`] expands a
//! spec into concrete release instants, deterministically per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use myrtus_continuum::time::{SimDuration, SimTime};

/// A request arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// One request every `period`, `count` times, starting at `period`.
    Periodic {
        /// Inter-arrival period.
        period: SimDuration,
        /// Number of requests.
        count: usize,
    },
    /// Poisson process with `rate_hz` expected requests per second until
    /// `horizon`.
    Poisson {
        /// Mean rate in requests per second.
        rate_hz: f64,
        /// Generation horizon.
        horizon: SimTime,
    },
    /// On/off bursts: `burst_len` back-to-back requests spaced `spacing`,
    /// one burst every `burst_period`, until `horizon`.
    Burst {
        /// Requests per burst.
        burst_len: usize,
        /// Intra-burst spacing.
        spacing: SimDuration,
        /// Burst start-to-start period.
        burst_period: SimDuration,
        /// Generation horizon.
        horizon: SimTime,
    },
    /// Explicit release instants.
    Trace(Vec<SimTime>),
}

impl ArrivalSpec {
    /// Convenience constructor for [`ArrivalSpec::Periodic`].
    pub fn periodic(period: SimDuration, count: usize) -> Self {
        ArrivalSpec::Periodic { period, count }
    }

    /// Convenience constructor for [`ArrivalSpec::Poisson`].
    pub fn poisson(rate_hz: f64, horizon: SimTime) -> Self {
        ArrivalSpec::Poisson { rate_hz, horizon }
    }

    /// Expands the spec into sorted release instants. Stochastic variants
    /// draw from a [`StdRng`] seeded with `seed`, so equal seeds yield
    /// equal traces.
    pub fn generate(&self, seed: u64) -> Vec<SimTime> {
        match self {
            ArrivalSpec::Periodic { period, count } => {
                (1..=*count).map(|i| SimTime::from_micros(period.as_micros() * i as u64)).collect()
            }
            ArrivalSpec::Poisson { rate_hz, horizon } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out = Vec::new();
                if *rate_hz <= 0.0 {
                    return out;
                }
                let mut t = 0.0f64; // seconds
                let end = horizon.as_secs_f64();
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate_hz;
                    if t >= end {
                        break;
                    }
                    out.push(SimTime::from_micros((t * 1e6) as u64));
                }
                out
            }
            ArrivalSpec::Burst { burst_len, spacing, burst_period, horizon } => {
                let mut out = Vec::new();
                let mut start = SimTime::ZERO;
                while start < *horizon {
                    for i in 0..*burst_len {
                        let t = start + SimDuration::from_micros(spacing.as_micros() * i as u64);
                        if t < *horizon {
                            out.push(t);
                        }
                    }
                    start += *burst_period;
                    if burst_period.is_zero() {
                        break;
                    }
                }
                out
            }
            ArrivalSpec::Trace(ts) => {
                let mut out = ts.clone();
                out.sort_unstable();
                out
            }
        }
    }

    /// Expected number of requests (exact for deterministic variants).
    pub fn expected_count(&self) -> usize {
        match self {
            ArrivalSpec::Periodic { count, .. } => *count,
            ArrivalSpec::Poisson { rate_hz, horizon } => {
                (rate_hz * horizon.as_secs_f64()).round() as usize
            }
            ArrivalSpec::Burst { burst_len, burst_period, horizon, .. } => {
                if burst_period.is_zero() {
                    *burst_len
                } else {
                    let bursts =
                        (horizon.as_micros() as f64 / burst_period.as_micros() as f64).ceil();
                    bursts as usize * burst_len
                }
            }
            ArrivalSpec::Trace(ts) => ts.len(),
        }
    }

    /// Serializes the spec for a TOSCA-lite profile line (after the
    /// `arrival` keyword).
    pub fn to_profile_line(&self) -> String {
        match self {
            ArrivalSpec::Periodic { period, count } => {
                format!("periodic period_us={} count={}", period.as_micros(), count)
            }
            ArrivalSpec::Poisson { rate_hz, horizon } => {
                format!("poisson rate_hz={} horizon_us={}", rate_hz, horizon.as_micros())
            }
            ArrivalSpec::Burst { burst_len, spacing, burst_period, horizon } => format!(
                "burst len={} spacing_us={} period_us={} horizon_us={}",
                burst_len,
                spacing.as_micros(),
                burst_period.as_micros(),
                horizon.as_micros()
            ),
            ArrivalSpec::Trace(ts) => {
                let list: Vec<String> = ts.iter().map(|t| t.as_micros().to_string()).collect();
                format!("trace at_us={}", list.join(","))
            }
        }
    }

    /// Parses the tokens following the `arrival` keyword of a profile.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse_profile_tokens(tokens: &[&str]) -> Result<ArrivalSpec, String> {
        let kind = tokens.first().ok_or("arrival needs a kind")?;
        let kv = |key: &str| -> Option<&str> {
            tokens[1..]
                .iter()
                .find_map(|t| t.split_once('=').filter(|(k, _)| *k == key).map(|(_, v)| v))
        };
        let num = |key: &str| -> Result<u64, String> {
            kv(key)
                .ok_or_else(|| format!("missing {key}"))?
                .parse()
                .map_err(|_| format!("bad {key}"))
        };
        match *kind {
            "periodic" => Ok(ArrivalSpec::Periodic {
                period: SimDuration::from_micros(num("period_us")?),
                count: num("count")? as usize,
            }),
            "poisson" => Ok(ArrivalSpec::Poisson {
                rate_hz: kv("rate_hz")
                    .ok_or("missing rate_hz")?
                    .parse()
                    .map_err(|_| "bad rate_hz".to_string())?,
                horizon: SimTime::from_micros(num("horizon_us")?),
            }),
            "burst" => Ok(ArrivalSpec::Burst {
                burst_len: num("len")? as usize,
                spacing: SimDuration::from_micros(num("spacing_us")?),
                burst_period: SimDuration::from_micros(num("period_us")?),
                horizon: SimTime::from_micros(num("horizon_us")?),
            }),
            "trace" => {
                let list = kv("at_us").ok_or("missing at_us")?;
                let ts: Result<Vec<SimTime>, String> = list
                    .split(',')
                    .map(|s| {
                        s.parse::<u64>()
                            .map(SimTime::from_micros)
                            .map_err(|_| format!("bad instant {s:?}"))
                    })
                    .collect();
                Ok(ArrivalSpec::Trace(ts?))
            }
            other => Err(format!("unknown arrival kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_is_evenly_spaced() {
        let ts = ArrivalSpec::periodic(SimDuration::from_millis(10), 5).generate(0);
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[0], SimTime::from_millis(10));
        assert_eq!(ts[4], SimTime::from_millis(50));
    }

    #[test]
    fn poisson_is_seed_deterministic_and_rate_accurate() {
        let spec = ArrivalSpec::poisson(100.0, SimTime::from_secs(10));
        let a = spec.generate(42);
        let b = spec.generate(42);
        let c = spec.generate(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // ~1000 expected; allow ±15 %.
        assert!((850..=1150).contains(&a.len()), "got {}", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn burst_shape() {
        let spec = ArrivalSpec::Burst {
            burst_len: 3,
            spacing: SimDuration::from_micros(100),
            burst_period: SimDuration::from_millis(10),
            horizon: SimTime::from_millis(25),
        };
        let ts = spec.generate(0);
        // Bursts at 0, 10ms, 20ms → 9 requests.
        assert_eq!(ts.len(), 9);
        assert_eq!(ts[1] - ts[0], SimDuration::from_micros(100));
        assert_eq!(ts[3], SimTime::from_millis(10));
    }

    #[test]
    fn trace_is_sorted() {
        let spec = ArrivalSpec::Trace(vec![
            SimTime::from_millis(5),
            SimTime::from_millis(1),
            SimTime::from_millis(3),
        ]);
        let ts = spec.generate(0);
        assert_eq!(ts[0], SimTime::from_millis(1));
        assert_eq!(ts[2], SimTime::from_millis(5));
    }

    #[test]
    fn zero_rate_poisson_is_empty() {
        assert!(ArrivalSpec::poisson(0.0, SimTime::from_secs(1)).generate(1).is_empty());
    }

    #[test]
    fn profile_line_round_trips() {
        let specs = [
            ArrivalSpec::periodic(SimDuration::from_millis(33), 100),
            ArrivalSpec::poisson(12.5, SimTime::from_secs(60)),
            ArrivalSpec::Burst {
                burst_len: 4,
                spacing: SimDuration::from_micros(500),
                burst_period: SimDuration::from_secs(1),
                horizon: SimTime::from_secs(30),
            },
            ArrivalSpec::Trace(vec![SimTime::from_micros(10), SimTime::from_micros(20)]),
        ];
        for spec in specs {
            let line = spec.to_profile_line();
            let toks: Vec<&str> = line.split_whitespace().collect();
            let parsed = ArrivalSpec::parse_profile_tokens(&toks).expect("round trip");
            assert_eq!(parsed, spec, "line {line:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ArrivalSpec::parse_profile_tokens(&[]).is_err());
        assert!(ArrivalSpec::parse_profile_tokens(&["warp"]).is_err());
        assert!(ArrivalSpec::parse_profile_tokens(&["periodic", "count=3"]).is_err());
        assert!(ArrivalSpec::parse_profile_tokens(&["periodic", "period_us=x", "count=3"]).is_err());
    }

    #[test]
    fn expected_count_matches_deterministic_variants() {
        assert_eq!(ArrivalSpec::periodic(SimDuration::from_millis(1), 7).expected_count(), 7);
        assert_eq!(
            ArrivalSpec::Trace(vec![SimTime::ZERO, SimTime::from_micros(1)]).expected_count(),
            2
        );
    }
}
