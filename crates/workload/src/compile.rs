//! Compiling TOSCA applications into executable request streams.
//!
//! The DPE hands MIRTO a deployment specification; at run time each
//! arrival of an [`crate::tosca::Application`] becomes a
//! [`CompiledRequest`]: the per-request DAG instantiated with concrete
//! work, data volumes and a correlation [`Tag`] per stage, ready for the
//! WL Manager to place onto continuum nodes.

use serde::{Deserialize, Serialize};

use myrtus_continuum::time::{SimDuration, SimTime};

use crate::graph::RequestDag;
use crate::opset::AppOperatingPoint;
use crate::tosca::{Application, SecurityTier, ValidateAppError};

/// Packed correlation tag: `application (16 bit) | request (32 bit) |
/// stage (16 bit)`. Travels in
/// [`TaskInstance::tag`](myrtus_continuum::task::TaskInstance) so drivers
/// can attribute completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tag {
    /// Application id.
    pub app: u16,
    /// Request ordinal within the application.
    pub request: u32,
    /// Stage (DAG node) ordinal.
    pub stage: u16,
}

impl Tag {
    /// Packs the tag into a `u64`.
    pub fn encode(self) -> u64 {
        ((self.app as u64) << 48) | ((self.request as u64) << 16) | self.stage as u64
    }

    /// Unpacks a tag.
    pub fn decode(raw: u64) -> Tag {
        Tag {
            app: (raw >> 48) as u16,
            request: ((raw >> 16) & 0xFFFF_FFFF) as u32,
            stage: (raw & 0xFFFF) as u16,
        }
    }

    /// A tag that identifies the application only (request/stage zeroed);
    /// useful as a monitoring key.
    pub fn app_key(app: u16) -> u64 {
        Tag { app, request: 0, stage: 0 }.encode()
    }
}

/// One stage (DAG node) of a compiled request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledStage {
    /// Index into the application's component list.
    pub component_idx: usize,
    /// Component name.
    pub name: String,
    /// Work after operating-point scaling, megacycles.
    pub work_mc: f64,
    /// Memory reservation, MiB.
    pub mem_mb: u64,
    /// Accelerator configuration, if exploitable.
    pub accel_cfg: Option<u32>,
    /// Input bytes (sum of incoming edges after scaling).
    pub input_bytes: u64,
    /// Output bytes (sum of outgoing edges after scaling).
    pub output_bytes: u64,
    /// Relative deadline of this stage, if QoS-constrained.
    pub max_latency: Option<SimDuration>,
    /// Minimum security tier.
    pub security: SecurityTier,
    /// Portable task body: VM program library index, if any.
    pub program: Option<u32>,
    /// Indices (into `stages`) of upstream stages.
    pub preds: Vec<usize>,
    /// Correlation tag.
    pub tag: Tag,
}

/// One request instance: a released DAG of stages in topological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledRequest {
    /// Release instant.
    pub released: SimTime,
    /// Request ordinal.
    pub request_idx: u32,
    /// Stages in a valid topological order.
    pub stages: Vec<CompiledStage>,
}

impl CompiledRequest {
    /// End-to-end relative deadline: the strictest stage deadline, if any.
    pub fn deadline(&self) -> Option<SimDuration> {
        self.stages.iter().filter_map(|s| s.max_latency).min()
    }

    /// Total work of the request, megacycles.
    pub fn total_work_mc(&self) -> f64 {
        self.stages.iter().map(|s| s.work_mc).sum()
    }
}

/// Expands an application into its full request stream.
///
/// `app_id` namespaces the tags; `seed` drives stochastic arrivals;
/// `point` optionally applies an operating point's work/bytes scaling.
///
/// # Errors
///
/// Returns the application's validation error if the topology is
/// malformed.
///
/// # Examples
///
/// ```
/// use myrtus_workload::compile::compile_requests;
/// use myrtus_workload::scenarios;
///
/// let app = scenarios::telerehab();
/// let reqs = compile_requests(&app, 1, 42, None)?;
/// assert_eq!(reqs.len(), app.arrival.expected_count());
/// assert!(reqs[0].stages.len() >= 3);
/// # Ok::<(), myrtus_workload::tosca::ValidateAppError>(())
/// ```
pub fn compile_requests(
    app: &Application,
    app_id: u16,
    seed: u64,
    point: Option<&AppOperatingPoint>,
) -> Result<Vec<CompiledRequest>, ValidateAppError> {
    let dag = RequestDag::from_application(app)?;
    let work_scale = point.map_or(1.0, |p| p.work_scale);
    let bytes_scale = point.map_or(1.0, |p| p.bytes_scale);
    let arrivals = app.arrival.generate(seed);

    // Stage templates in topological order, with preds remapped to
    // positions within the stage list.
    let topo = dag.topo_order();
    let mut pos_in_topo = vec![0usize; dag.nodes().len()];
    for (rank, &i) in topo.iter().enumerate() {
        pos_in_topo[i] = rank;
    }
    let templates: Vec<CompiledStage> = topo
        .iter()
        .map(|&i| {
            let n = &dag.nodes()[i];
            let comp = &app.components[n.component_idx];
            let input: u64 = dag.nodes()[i]
                .preds
                .iter()
                .map(|&p| {
                    dag.nodes()[p].succs.iter().find(|(s, _)| *s == i).map(|(_, b)| *b).unwrap_or(0)
                })
                .sum();
            let output: u64 = n.succs.iter().map(|(_, b)| *b).sum();
            CompiledStage {
                component_idx: n.component_idx,
                name: n.name.clone(),
                work_mc: n.work_mc * work_scale,
                mem_mb: comp.requirements.mem_mb,
                accel_cfg: comp.requirements.accel_cfg,
                input_bytes: (input as f64 * bytes_scale) as u64,
                output_bytes: (output as f64 * bytes_scale) as u64,
                max_latency: comp.requirements.max_latency,
                security: comp.requirements.security,
                program: comp.requirements.program,
                preds: n.preds.iter().map(|&p| pos_in_topo[p]).collect(),
                tag: Tag { app: app_id, request: 0, stage: 0 },
            }
        })
        .collect();

    Ok(arrivals
        .into_iter()
        .enumerate()
        .map(|(ri, released)| {
            let stages = templates
                .iter()
                .enumerate()
                .map(|(si, t)| {
                    let mut s = t.clone();
                    s.tag = Tag { app: app_id, request: ri as u32, stage: si as u16 };
                    s
                })
                .collect();
            CompiledRequest { released, request_idx: ri as u32, stages }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalSpec;
    use crate::opset::AppOperatingPoint;
    use crate::tosca::{Component, ComponentKind};
    use myrtus_continuum::net::Protocol;

    fn chain() -> Application {
        Application::new("c", ArrivalSpec::periodic(SimDuration::from_millis(10), 3))
            .with_component(Component::new("s", ComponentKind::Sensor).with_work_mc(0.5))
            .with_component(
                Component::new("f", ComponentKind::Function)
                    .with_work_mc(4.0)
                    .with_max_latency(SimDuration::from_millis(20)),
            )
            .with_component(Component::new("k", ComponentKind::Storage).with_work_mc(1.0))
            .with_connection("s", "f", 1_000, Protocol::Mqtt)
            .with_connection("f", "k", 200, Protocol::Mqtt)
    }

    #[test]
    fn tag_round_trips() {
        let t = Tag { app: 513, request: 0xDEADBEEF, stage: 77 };
        assert_eq!(Tag::decode(t.encode()), t);
        assert_eq!(Tag::decode(Tag::app_key(7)).app, 7);
    }

    #[test]
    fn one_request_per_arrival() {
        let reqs = compile_requests(&chain(), 2, 0, None).expect("valid");
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].released, SimTime::from_millis(10));
        assert_eq!(reqs[2].request_idx, 2);
    }

    #[test]
    fn stages_follow_topology_with_io() {
        let reqs = compile_requests(&chain(), 2, 0, None).expect("valid");
        let st = &reqs[0].stages;
        assert_eq!(st.len(), 3);
        assert_eq!(st[0].name, "s");
        assert_eq!(st[0].input_bytes, 0);
        assert_eq!(st[0].output_bytes, 1_000);
        assert_eq!(st[1].name, "f");
        assert_eq!(st[1].input_bytes, 1_000);
        assert_eq!(st[1].preds, vec![0]);
        assert_eq!(st[2].input_bytes, 200);
    }

    #[test]
    fn tags_identify_app_request_stage() {
        let reqs = compile_requests(&chain(), 9, 0, None).expect("valid");
        let t = reqs[1].stages[2].tag;
        assert_eq!((t.app, t.request, t.stage), (9, 1, 2));
    }

    #[test]
    fn operating_point_scales_work_and_bytes() {
        let p = AppOperatingPoint::new("eco", 0.5, 0.25, 0.8);
        let nominal = compile_requests(&chain(), 1, 0, None).expect("valid");
        let scaled = compile_requests(&chain(), 1, 0, Some(&p)).expect("valid");
        assert!((scaled[0].stages[1].work_mc - nominal[0].stages[1].work_mc * 0.5).abs() < 1e-9);
        assert_eq!(scaled[0].stages[1].input_bytes, nominal[0].stages[1].input_bytes / 4);
    }

    #[test]
    fn request_deadline_is_strictest_stage() {
        let reqs = compile_requests(&chain(), 1, 0, None).expect("valid");
        assert_eq!(reqs[0].deadline(), Some(SimDuration::from_millis(20)));
        assert!((reqs[0].total_work_mc() - 5.5).abs() < 1e-9);
    }
}
