//! The paper's two assessment scenarios as ready-made applications.
//!
//! MYRTUS validates its technologies on **Smart Mobility** (TNO + Canon)
//! and **Virtual Telerehabilitation** (UNICA + Reply). Neither use case
//! is publicly released, so these generators synthesize workloads with
//! the structure the paper describes: a vehicle/roadside perception
//! pipeline with bursty incident traffic, and a patient pose-estimation
//! pipeline with periodic camera frames and strict latency bounds.

use myrtus_continuum::net::Protocol;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::{SimDuration, SimTime};

use crate::arrival::ArrivalSpec;
use crate::tosca::{Application, Component, ComponentKind, SecurityTier};

pub mod federation;
pub mod programs;
pub mod surge;

/// Accelerator configuration ids used by the scenario kernels, shared
/// with the DPE (which "synthesizes" the matching bitstreams).
pub mod accel_cfg {
    /// Convolutional pose-estimation kernel.
    pub const POSE_CNN: u32 = 1;
    /// Object-detection kernel (vehicles, pedestrians).
    pub const DETECT_CNN: u32 = 2;
    /// Video pre-processing (resize / colour conversion).
    pub const PREPROC: u32 = 3;
    /// Sensor-fusion Kalman pipeline.
    pub const FUSION: u32 = 4;
}

/// Virtual Telerehabilitation: camera → pre-processing → pose estimation
/// → exercise scoring → session store, 30 fps for `seconds` seconds,
/// 80 ms end-to-end bound on the interactive stages, medium security
/// (health data).
pub fn telerehab_with(seconds: u64) -> Application {
    let frames = (seconds * 30) as usize;
    Application::new("telerehab", ArrivalSpec::periodic(SimDuration::from_micros(33_333), frames))
        .with_component(
            Component::new("camera", ComponentKind::Sensor)
                .with_work_mc(0.05)
                .with_preferred_layer(Layer::Edge),
        )
        .with_component(
            Component::new("preproc", ComponentKind::Function)
                .with_work_mc(1.2)
                .with_mem_mb(64)
                .with_accel(accel_cfg::PREPROC)
                .with_max_latency(SimDuration::from_millis(80))
                .with_security(SecurityTier::Medium),
        )
        .with_component(
            Component::new("pose", ComponentKind::Function)
                .with_work_mc(9.0)
                .with_mem_mb(256)
                .with_accel(accel_cfg::POSE_CNN)
                .with_max_latency(SimDuration::from_millis(80))
                .with_security(SecurityTier::Medium),
        )
        .with_component(
            Component::new("score", ComponentKind::Function)
                .with_work_mc(0.8)
                .with_mem_mb(32)
                .with_max_latency(SimDuration::from_millis(120))
                .with_security(SecurityTier::Medium),
        )
        .with_component(
            Component::new("session-store", ComponentKind::Storage)
                .with_work_mc(0.3)
                .with_mem_mb(128)
                .with_security(SecurityTier::High)
                .with_preferred_layer(Layer::Cloud),
        )
        .with_connection("camera", "preproc", 460_800, Protocol::Mqtt) // VGA frame
        .with_connection("preproc", "pose", 115_200, Protocol::Mqtt)
        .with_connection("pose", "score", 4_096, Protocol::Mqtt)
        .with_connection("score", "session-store", 1_024, Protocol::Http)
}

/// Default 10-second telerehabilitation session (300 frames).
pub fn telerehab() -> Application {
    telerehab_with(10)
}

/// Smart Mobility: roadside cameras and vehicle sensors feed detection
/// and fusion; incidents trigger bursts. Low per-message security but a
/// tight 50 ms bound on the detection loop.
pub fn smart_mobility_with(horizon: SimTime) -> Application {
    Application::new(
        "smart-mobility",
        ArrivalSpec::Burst {
            burst_len: 6,
            spacing: SimDuration::from_millis(5),
            burst_period: SimDuration::from_millis(200),
            horizon,
        },
    )
    .with_component(
        Component::new("roadside-cam", ComponentKind::Sensor)
            .with_work_mc(0.05)
            .with_preferred_layer(Layer::Edge),
    )
    .with_component(
        Component::new("detect", ComponentKind::Function)
            .with_work_mc(6.5)
            .with_mem_mb(192)
            .with_accel(accel_cfg::DETECT_CNN)
            .with_max_latency(SimDuration::from_millis(50)),
    )
    .with_component(
        Component::new("fusion", ComponentKind::Function)
            .with_work_mc(2.5)
            .with_mem_mb(96)
            .with_accel(accel_cfg::FUSION)
            .with_max_latency(SimDuration::from_millis(80)),
    )
    .with_component(
        Component::new("traffic-model", ComponentKind::Service)
            .with_work_mc(4.0)
            .with_mem_mb(512)
            .with_preferred_layer(Layer::Fog),
    )
    .with_component(
        Component::new("fleet-archive", ComponentKind::Storage)
            .with_work_mc(0.2)
            .with_mem_mb(64)
            .with_security(SecurityTier::Medium)
            .with_preferred_layer(Layer::Cloud),
    )
    .with_connection("roadside-cam", "detect", 230_400, Protocol::Coap)
    .with_connection("detect", "fusion", 8_192, Protocol::Mqtt)
    .with_connection("fusion", "traffic-model", 2_048, Protocol::Mqtt)
    .with_connection("traffic-model", "fleet-archive", 16_384, Protocol::Http)
}

/// Default 5-second smart-mobility window.
pub fn smart_mobility() -> Application {
    smart_mobility_with(SimTime::from_secs(5))
}

/// A synthetic CPU-bound batch-analytics job (cloud-friendly), used as
/// background load in the mixed experiments.
pub fn batch_analytics(jobs: usize, mean_interarrival: SimDuration) -> Application {
    Application::new("batch-analytics", ArrivalSpec::periodic(mean_interarrival, jobs))
        .with_component(Component::new("ingest", ComponentKind::Sensor).with_work_mc(0.5))
        .with_component(
            Component::new("crunch", ComponentKind::Function)
                .with_work_mc(400.0)
                .with_mem_mb(2_048)
                .with_preferred_layer(Layer::Cloud),
        )
        .with_component(Component::new("report", ComponentKind::Storage).with_work_mc(1.0))
        .with_connection("ingest", "crunch", 1_000_000, Protocol::Http)
        .with_connection("crunch", "report", 10_000, Protocol::Http)
}

/// The standard mixed workload of the orchestration experiments:
/// telerehab + smart mobility + background analytics, with distinct app
/// ids 0, 1, 2.
pub fn standard_mix(seconds: u64) -> Vec<Application> {
    vec![
        telerehab_with(seconds),
        smart_mobility_with(SimTime::from_secs(seconds)),
        batch_analytics((seconds / 2).max(1) as usize, SimDuration::from_secs(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_requests;
    use crate::graph::RequestDag;

    #[test]
    fn scenarios_validate() {
        telerehab().validate().expect("telerehab valid");
        smart_mobility().validate().expect("mobility valid");
        batch_analytics(5, SimDuration::from_secs(1)).validate().expect("batch valid");
    }

    #[test]
    fn telerehab_is_a_five_stage_chain() {
        let dag = RequestDag::from_application(&telerehab()).expect("valid");
        assert_eq!(dag.nodes().len(), 5);
        assert_eq!(dag.sources().len(), 1);
        assert_eq!(dag.sinks().len(), 1);
        assert_eq!(*dag.depths().iter().max().expect("non-empty"), 4);
    }

    #[test]
    fn telerehab_has_health_grade_security() {
        let app = telerehab();
        assert_eq!(app.max_security(), SecurityTier::High);
        assert_eq!(
            app.component("pose").expect("exists").requirements.security,
            SecurityTier::Medium
        );
    }

    #[test]
    fn mobility_bursts_compile() {
        let reqs = compile_requests(&smart_mobility(), 1, 0, None).expect("valid");
        assert!(!reqs.is_empty());
        // Burst arrivals: first six spaced 5 ms apart.
        assert_eq!(reqs[1].released - reqs[0].released, SimDuration::from_millis(5));
    }

    #[test]
    fn standard_mix_has_three_distinct_apps() {
        let mix = standard_mix(4);
        assert_eq!(mix.len(), 3);
        let names: std::collections::HashSet<&str> = mix.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn profiles_round_trip_for_all_scenarios() {
        for app in standard_mix(2) {
            let text = app.to_profile();
            let parsed = Application::from_profile(&text).expect("parses");
            assert_eq!(parsed, app, "{}", app.name);
        }
    }
}
