//! Seeded generator of portable task bodies (VM programs).
//!
//! A deployment that wants live-migratable tasks ships a *program
//! library* ([`myrtus_vm::Program`]s installed via
//! `SimCore::set_vm`) and tags components with a library index
//! ([`crate::tosca::Component::with_program`]). This module builds that
//! library deterministically from a seed: every program is a bounded
//! loop whose body follows one of three instruction mixes — compute
//! (`Mix`-kernel heavy), branch (data-dependent control flow), io
//! (seeded input reads folded into the output digest) — and is sized so
//! its total cost on the reference ISA (Arm at nominal frequency) lands
//! on a requested megacycle target. That keeps bodied runs comparable
//! to the scalar runs the earlier experiments calibrated: attaching a
//! body re-prices a task from the program, but the price stays in the
//! same ballpark as the scalar `work_mc` it replaces.
//!
//! Like every scenario generator, equal seeds yield byte-identical
//! programs (the E15 CI gate double-runs a seed and diffs exports).

use myrtus_vm::{CostTable, IsaClass, Op, Program};

use myrtus_continuum::time::SimTime;

use super::federation::{region_mix, RegionalApp, BATCH_WORK_MC};

/// Instruction mix of a generated program body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// ALU / `Mix`-kernel heavy inner loop (pose estimation, fusion).
    Compute,
    /// Data-dependent branches on the accumulator (protocol parsing).
    Branch,
    /// Seeded input reads folded into the digest (ingest, storage).
    Io,
}

impl Mix {
    /// All mixes, in library order.
    pub const ALL: [Mix; 3] = [Mix::Compute, Mix::Branch, Mix::Io];
}

/// Per-iteration loop body for a mix. Jump targets are relative to the
/// body start; [`program_for`] relocates them. Every path through a
/// body leaves the stack balanced and rewrites the accumulator
/// (local 1), so control flow stays data-dependent across iterations.
fn body_ops(mix: Mix, salt: i64) -> Vec<Op> {
    match mix {
        Mix::Compute => vec![Op::Load(1), Op::Mix, Op::Push(salt), Op::Xor, Op::Mix, Op::Store(1)],
        // Branch on the accumulator's parity into one of two mix
        // flavours. The paths are cost-balanced on the reference ISA
        // (Mem+Kernel+Mem+Branch == Mem+Stack+Alu+Kernel+Mem), so the
        // program's total cost is deterministic even though the path
        // taken each iteration is data-dependent.
        Mix::Branch => vec![
            Op::Load(1),
            Op::Push(1),
            Op::And,
            Op::Jz(8), // even → second flavour
            Op::Load(1),
            Op::Mix,
            Op::Store(1),
            Op::Jmp(13), // → LoopDec
            Op::Load(1),
            Op::Push(salt),
            Op::Xor,
            Op::Mix,
            Op::Store(1),
        ],
        Mix::Io => vec![Op::Input, Op::Push(salt), Op::Xor, Op::Mix, Op::Out],
    }
}

/// Builds one program of the given mix, sized so its full cost on the
/// reference ISA (Arm, nominal frequency) approximates
/// `target_mc` megacycles. The `seed` only perturbs immediates (and so
/// the fingerprint); structure and cost depend on `mix` and
/// `target_mc` alone.
///
/// # Panics
///
/// Panics if `target_mc` is not finite and positive — generator inputs
/// are build-time scenario constants, not runtime data.
pub fn program_for(mix: Mix, seed: u64, target_mc: f64) -> Program {
    assert!(
        target_mc.is_finite() && target_mc > 0.0,
        "program target must be positive, got {target_mc}"
    );
    let table = CostTable::for_isa(IsaClass::Arm, 1.0);
    let salt = (seed ^ 0xA076_1D64_78BD_642F) as i64;
    let body = body_ops(mix, salt);

    // Cost of one iteration (plus the LoopDec back-edge) on the
    // reference table. Straight-line bodies sum every op; the branch
    // body sums the condition plus one of its two cost-balanced paths.
    let back_edge = table.cost(Op::LoopDec(0, 0));
    let per_iter: u64 = match mix {
        Mix::Compute | Mix::Io => body.iter().map(|&op| table.cost(op)).sum::<u64>() + back_edge,
        Mix::Branch => {
            let cond: u64 = body[..4].iter().map(|&op| table.cost(op)).sum();
            let odd: u64 = body[4..8].iter().map(|&op| table.cost(op)).sum();
            let even: u64 = body[8..].iter().map(|&op| table.cost(op)).sum();
            debug_assert_eq!(odd, even, "paths must be cost-balanced on the reference ISA");
            cond + odd.max(even) + back_edge
        }
    };
    let prologue = [Op::Push(0), Op::Store(0), Op::Push(salt), Op::Store(1)];
    let epilogue = [Op::Load(1), Op::Out, Op::Halt];
    let overhead: u64 = prologue.iter().chain(epilogue.iter()).map(|&op| table.cost(op)).sum();

    let target_cycles = (target_mc * 1e6) as u64;
    let iters = (target_cycles.saturating_sub(overhead) / per_iter).max(1);

    let mut ops = prologue.to_vec();
    ops[0] = Op::Push(iters as i64);
    let body_start = ops.len() as u16;
    for &op in &body {
        ops.push(match op {
            Op::Jz(t) => Op::Jz(t + body_start),
            Op::Jmp(t) => Op::Jmp(t + body_start),
            other => other,
        });
    }
    ops.push(Op::LoopDec(0, body_start));
    ops.extend_from_slice(&epilogue);

    // Steps are bounded by construction; give the ceiling a one-iteration
    // margin so the VM's runaway guard never fires on a healthy body.
    let max_steps =
        (prologue.len() + epilogue.len()) as u64 + (iters + 1) * (body.len() as u64 + 1);
    Program::with_max_steps(ops, 2, max_steps).expect("generated program validates")
}

/// The standard three-program library (one per [`Mix`], library order
/// = [`Mix::ALL`] order), each sized to `target_mc`.
pub fn library(seed: u64, target_mc: f64) -> Vec<Program> {
    Mix::ALL
        .iter()
        .enumerate()
        .map(|(i, &mix)| program_for(mix, seed.wrapping_add(i as u64), target_mc))
        .collect()
}

/// The E15 workload: the federation [`region_mix`] with every batch
/// `crunch` stage given a portable body, plus the matching program
/// library (sized to [`BATCH_WORK_MC`], one mix per region, rotating).
/// Interactive tenants stay scalar — only the heavy, deadline-free
/// batch work is worth checkpointing across a WAN.
pub fn bodied_region_mix(
    seed: u64,
    regions: u16,
    horizon: SimTime,
    hot: u16,
    overload: f64,
) -> (Vec<RegionalApp>, Vec<Program>) {
    let mut mix = region_mix(seed, regions, horizon, hot, overload);
    for (app, region) in &mut mix {
        if !app.name.ends_with("-batch") {
            continue;
        }
        let prog = (*region as u32) % Mix::ALL.len() as u32;
        for comp in &mut app.components {
            if comp.name == "crunch" {
                comp.requirements.program = Some(prog);
            }
        }
    }
    (mix, library(seed, BATCH_WORK_MC))
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_vm::VmState;

    #[test]
    fn equal_seeds_make_identical_programs() {
        for mix in Mix::ALL {
            let a = program_for(mix, 42, 10.0);
            let b = program_for(mix, 42, 10.0);
            assert_eq!(a.fingerprint(), b.fingerprint(), "{mix:?}");
            let c = program_for(mix, 43, 10.0);
            assert_ne!(a.fingerprint(), c.fingerprint(), "{mix:?} seed must matter");
        }
    }

    #[test]
    fn programs_land_near_their_cycle_target() {
        let table = CostTable::for_isa(IsaClass::Arm, 1.0);
        for mix in Mix::ALL {
            for target_mc in [1.0, 10.0, BATCH_WORK_MC] {
                let p = program_for(mix, 7, target_mc);
                let (steps, cycles) = p.full_cost(7, &table);
                let target = target_mc * 1e6;
                let err = (cycles as f64 - target).abs() / target;
                assert!(err < 0.05, "{mix:?}@{target_mc}: {cycles} cycles, err {err:.3}");
                assert!(steps <= p.max_steps(), "{mix:?} runs within its step bound");
            }
        }
    }

    #[test]
    fn programs_halt_and_produce_a_digest() {
        let table = CostTable::for_isa(IsaClass::Server, 1.0);
        for mix in Mix::ALL {
            let p = program_for(mix, 9, 2.0);
            let mut vm = VmState::new(&p, 9);
            vm.run_to_halt(&p, &table);
            assert!(vm.is_halted(), "{mix:?} halts");
            assert_ne!(vm.out_digest(), 0, "{mix:?} folds output");
        }
    }

    #[test]
    fn bodied_mix_tags_batch_crunch_only() {
        let (mix, lib) = bodied_region_mix(7, 3, SimTime::from_secs(4), 0, 2.0);
        assert_eq!(lib.len(), Mix::ALL.len());
        for (app, region) in &mix {
            for comp in &app.components {
                let expect = if app.name.ends_with("-batch") && comp.name == "crunch" {
                    Some(*region as u32 % lib.len() as u32)
                } else {
                    None
                };
                assert_eq!(comp.requirements.program, expect, "{} / {}", app.name, comp.name);
            }
        }
        let again = bodied_region_mix(7, 3, SimTime::from_secs(4), 0, 2.0);
        assert_eq!(mix, again.0, "bodied mix is deterministic");
    }
}
