//! Multi-region workload mixes for the federation experiments (E14):
//! every region runs the same two-tenant shape — one deadline-bound
//! interactive pipeline plus one best-effort bulk tenant — and exactly
//! one *hot* region has its bulk load scaled up, so cross-region
//! bursting has somewhere to shed overload to.
//!
//! Like [`super::surge`], everything derives from an explicit seed, so
//! equal seeds yield byte-identical workloads across repeats (the
//! federation CI gate double-runs the same seed and diffs the exports).

use myrtus_continuum::net::Protocol;
use myrtus_continuum::time::SimTime;

use super::surge::{arrivals, interactive_tenant, SurgeSpec};
use crate::arrival::ArrivalSpec;
use crate::tosca::{Application, Component, ComponentKind};

/// One tenant of a regional mix, tagged with its home region.
pub type RegionalApp = (Application, u16);

/// Per-request work of the batch `crunch` stage, Mc. Sized so one
/// region's diurnal peak at load 1× sits near 60% of a small region's
/// compute, leaving peers headroom to absorb a sibling's 2× overload.
pub const BATCH_WORK_MC: f64 = 100.0;

/// The cross-region batch tenant: same shape as the surge bulk tenant
/// but with a much heavier `crunch` stage ([`BATCH_WORK_MC`]) — the
/// load that actually saturates a region and is worth shipping over a
/// 40 ms WAN because nothing in it has a deadline.
pub fn batch_tenant(name: &str, spec: &SurgeSpec) -> Application {
    Application::new(name, ArrivalSpec::Trace(arrivals(spec)))
        .with_component(Component::new("ingest", ComponentKind::Sensor).with_work_mc(0.05))
        .with_component(
            Component::new("crunch", ComponentKind::Function)
                .with_work_mc(BATCH_WORK_MC)
                .with_mem_mb(128),
        )
        .with_component(Component::new("sink", ComponentKind::Storage).with_work_mc(0.2))
        .with_connection("ingest", "crunch", 131_072, Protocol::Http)
        .with_connection("crunch", "sink", 4_096, Protocol::Http)
}

/// The standard federated mix: `regions` copies of a two-tenant shape
/// (deadline-bound interactive + heavy batch), with the `hot` region's
/// batch offered load scaled by `overload` (2.0 = the E14 single-region
/// 2× overload). Application names are region-prefixed
/// (`r0-interactive`, `r0-batch`, …) so reports and exports
/// disambiguate regions; per-region batch seeds are decorrelated from
/// `seed` so the ramps are phase-jittered.
pub fn region_mix(
    seed: u64,
    regions: u16,
    horizon: SimTime,
    hot: u16,
    overload: f64,
) -> Vec<RegionalApp> {
    let mut out = Vec::new();
    for r in 0..regions {
        let mut interactive = interactive_tenant(horizon);
        interactive.name = format!("r{r}-interactive");
        out.push((interactive, r));

        let base = SurgeSpec::default();
        let factor = if r == hot { overload } else { 1.0 };
        let batch = batch_tenant(
            &format!("r{r}-batch"),
            // No flash crowds: the surge default's ×3 spikes hit every
            // region at once and momentarily drown even well-fed peers.
            // E14 is about one region's *sustained* diurnal overload,
            // so the ramp alone carries the story and the siblings keep
            // real headroom throughout.
            &SurgeSpec {
                seed: seed.wrapping_add(0x9E37 * (r as u64 + 1)),
                horizon,
                base_rps: base.base_rps * factor,
                peak_rps: base.peak_rps * factor,
                spikes: 0,
                ..base
            },
        );
        out.push((batch, r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_mix_is_deterministic_and_region_tagged() {
        let a = region_mix(7, 3, SimTime::from_secs(4), 0, 2.0);
        let b = region_mix(7, 3, SimTime::from_secs(4), 0, 2.0);
        assert_eq!(a, b, "equal seeds, equal mixes");
        assert_eq!(a.len(), 6, "two tenants per region");
        for (app, region) in &a {
            assert!(app.name.starts_with(&format!("r{region}-")), "{}", app.name);
            app.validate().expect("valid app");
        }
    }

    #[test]
    fn only_the_hot_region_is_overloaded() {
        let mix = region_mix(7, 3, SimTime::from_secs(4), 1, 2.0);
        let count = |app: &Application| app.arrival.generate(0).len();
        let bulk: Vec<usize> =
            mix.iter().filter(|(a, _)| a.name.ends_with("-batch")).map(|(a, _)| count(a)).collect();
        assert!(
            bulk[1] > bulk[0] * 3 / 2 && bulk[1] > bulk[2] * 3 / 2,
            "the hot region's bulk load dominates: {bulk:?}"
        );
        let interactive: Vec<usize> = mix
            .iter()
            .filter(|(a, _)| a.name.ends_with("-interactive"))
            .map(|(a, _)| count(a))
            .collect();
        assert!(
            interactive.windows(2).all(|w| w[0] == w[1]),
            "interactive tenants are identical across regions: {interactive:?}"
        );
    }
}
