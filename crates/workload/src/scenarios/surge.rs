//! Open-loop multi-tenant overload generator for the elastic-serving
//! experiments: a diurnal ramp with flash-crowd spikes, offered to the
//! continuum regardless of how fast it drains (open loop), split across
//! QoS classes — one deadline-bound interactive tenant that admission
//! control must protect, plus best-effort bulk tenants that are fair
//! game for load shedding.
//!
//! Everything is generated from an explicit seed through a splitmix64
//! mixer into [`ArrivalSpec::Trace`] instants, so equal seeds yield
//! byte-identical workloads — the surge CI gate double-runs the same
//! seed and diffs the reports.

use myrtus_continuum::net::Protocol;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::{SimDuration, SimTime};

use crate::arrival::ArrivalSpec;
use crate::tosca::{Application, Component, ComponentKind, SecurityTier};

/// Shape of one tenant's offered load over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeSpec {
    /// Seed for arrival jitter and spike placement.
    pub seed: u64,
    /// Generation horizon.
    pub horizon: SimTime,
    /// Baseline request rate at the start/end of the diurnal cycle.
    pub base_rps: f64,
    /// Peak of the diurnal ramp (mid-horizon).
    pub peak_rps: f64,
    /// Number of flash-crowd spikes spread over the horizon.
    pub spikes: u32,
    /// Rate multiplier inside a spike.
    pub spike_factor: f64,
    /// Duration of one spike.
    pub spike_len: SimDuration,
    /// Per-arrival jitter as a fraction of the local inter-arrival gap.
    pub jitter_frac: f64,
}

impl Default for SurgeSpec {
    fn default() -> Self {
        SurgeSpec {
            seed: 7,
            horizon: SimTime::from_secs(10),
            base_rps: 20.0,
            peak_rps: 120.0,
            spikes: 2,
            spike_factor: 3.0,
            spike_len: SimDuration::from_millis(300),
            jitter_frac: 0.2,
        }
    }
}

/// splitmix64 finalizer: one well-mixed word per (seed, index) pair.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` keyed on (seed, index).
fn unit(seed: u64, index: u64) -> f64 {
    (mix(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Centres of the flash-crowd spikes: evenly spread over the horizon,
/// each nudged ±10% of its slot by the seed.
fn spike_centres(spec: &SurgeSpec) -> Vec<f64> {
    let h = spec.horizon.as_micros() as f64;
    let slot = h / (spec.spikes as f64 + 1.0);
    (1..=spec.spikes as u64)
        .map(|k| slot * k as f64 + (unit(spec.seed, k.wrapping_mul(77)) - 0.5) * 0.2 * slot)
        .collect()
}

/// Instantaneous offered rate at `t_us`: diurnal sin² ramp between
/// `base_rps` and `peak_rps`, multiplied by `spike_factor` inside a
/// flash crowd.
fn rate_at(spec: &SurgeSpec, centres: &[f64], t_us: f64) -> f64 {
    let h = spec.horizon.as_micros() as f64;
    let ramp = (std::f64::consts::PI * t_us / h).sin().powi(2);
    let mut rate = spec.base_rps + (spec.peak_rps - spec.base_rps) * ramp;
    let half = spec.spike_len.as_micros() as f64 / 2.0;
    if centres.iter().any(|c| (t_us - c).abs() < half) {
        rate *= spec.spike_factor;
    }
    rate
}

/// Expands the spec into sorted open-loop release instants. Rate
/// modulation is quasi-periodic: each gap is the reciprocal of the
/// local rate, jittered by ±`jitter_frac` of itself.
pub fn arrivals(spec: &SurgeSpec) -> Vec<SimTime> {
    let centres = spike_centres(spec);
    let h = spec.horizon.as_micros() as f64;
    let mut out = Vec::new();
    let mut t_us = 0.0f64;
    let mut i = 0u64;
    loop {
        let rate = rate_at(spec, &centres, t_us);
        if rate <= 0.0 {
            break;
        }
        let gap = 1e6 / rate;
        let jitter = (unit(spec.seed, i) - 0.5) * 2.0 * spec.jitter_frac * gap;
        t_us += (gap + jitter).max(1.0);
        if t_us >= h {
            break;
        }
        out.push(SimTime::from_micros(t_us as u64));
        i += 1;
    }
    out.sort_unstable();
    out
}

/// The deadline-bound interactive tenant: a steady 30 rps inference
/// loop with an 80 ms bound on the inference stage. Deadline-bound ⇒
/// the engine runs it at protected priority, so admission control may
/// never shed it.
pub fn interactive_tenant(horizon: SimTime) -> Application {
    let count = (horizon.as_micros() / 33_333) as usize;
    Application::new("interactive", ArrivalSpec::periodic(SimDuration::from_micros(33_333), count))
        .with_component(
            Component::new("probe", ComponentKind::Sensor)
                .with_work_mc(0.05)
                .with_preferred_layer(Layer::Edge),
        )
        .with_component(
            Component::new("infer", ComponentKind::Function)
                .with_work_mc(3.0)
                .with_mem_mb(128)
                .with_max_latency(SimDuration::from_millis(80))
                .with_security(SecurityTier::Medium),
        )
        .with_component(
            Component::new("act", ComponentKind::Service).with_work_mc(0.2).with_mem_mb(32),
        )
        .with_connection("probe", "infer", 65_536, Protocol::Mqtt)
        .with_connection("infer", "act", 2_048, Protocol::Mqtt)
}

/// One best-effort bulk tenant driven by the surge trace: no latency
/// bounds anywhere, so its tasks run at priority 0 — sheddable.
pub fn bulk_tenant(name: &str, spec: &SurgeSpec) -> Application {
    Application::new(name, ArrivalSpec::Trace(arrivals(spec)))
        .with_component(Component::new("ingest", ComponentKind::Sensor).with_work_mc(0.05))
        .with_component(
            Component::new("crunch", ComponentKind::Function).with_work_mc(5.0).with_mem_mb(128),
        )
        .with_component(Component::new("sink", ComponentKind::Storage).with_work_mc(0.2))
        .with_connection("ingest", "crunch", 131_072, Protocol::Http)
        .with_connection("crunch", "sink", 4_096, Protocol::Http)
}

/// The standard surge mix at load factor 1: the protected interactive
/// tenant plus two bulk tenants whose ramps are phase-shifted by seed.
pub fn surge_mix(seed: u64, horizon: SimTime) -> Vec<Application> {
    surge_mix_scaled(seed, horizon, 1.0)
}

/// The surge mix with the *bulk* offered load scaled by `load_factor`
/// (the interactive tenant is untouched) — the "offered load doubles"
/// axis of the elastic-serving experiments.
pub fn surge_mix_scaled(seed: u64, horizon: SimTime, load_factor: f64) -> Vec<Application> {
    let tenant = |idx: u64, name: &str| {
        let base = SurgeSpec::default();
        bulk_tenant(
            name,
            &SurgeSpec {
                seed: seed.wrapping_add(idx),
                horizon,
                base_rps: base.base_rps * load_factor,
                peak_rps: base.peak_rps * load_factor,
                ..base
            },
        )
    };
    vec![interactive_tenant(horizon), tenant(1, "bulk-a"), tenant(2, "bulk-b")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_seed_deterministic_and_sorted() {
        let spec = SurgeSpec::default();
        let a = arrivals(&spec);
        let b = arrivals(&spec);
        assert_eq!(a, b, "equal seeds, equal traces");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(!a.is_empty());
        let other = arrivals(&SurgeSpec { seed: 8, ..spec });
        assert_ne!(a, other, "different seeds diverge");
    }

    #[test]
    fn the_ramp_concentrates_arrivals_mid_horizon() {
        let spec = SurgeSpec { spikes: 0, jitter_frac: 0.0, ..SurgeSpec::default() };
        let a = arrivals(&spec);
        let h = spec.horizon.as_micros();
        let mid = a.iter().filter(|t| (h / 4..3 * h / 4).contains(&t.as_micros())).count();
        assert!(
            mid * 2 > a.len(),
            "the middle half carries most of the diurnal load: {mid}/{}",
            a.len()
        );
    }

    #[test]
    fn spikes_add_arrivals() {
        let calm = SurgeSpec { spikes: 0, ..SurgeSpec::default() };
        let spiky = SurgeSpec { spikes: 3, ..SurgeSpec::default() };
        assert!(arrivals(&spiky).len() > arrivals(&calm).len(), "flash crowds add load");
    }

    #[test]
    fn surge_mix_separates_qos_classes() {
        let mix = surge_mix(7, SimTime::from_secs(5));
        assert_eq!(mix.len(), 3);
        for app in &mix {
            app.validate().expect("valid app");
        }
        let deadline_bound =
            |a: &Application| a.components.iter().any(|c| c.requirements.max_latency.is_some());
        assert!(deadline_bound(&mix[0]), "interactive tenant is deadline-bound");
        assert!(!deadline_bound(&mix[1]) && !deadline_bound(&mix[2]), "bulk tenants are not");
    }

    #[test]
    fn load_factor_scales_only_the_bulk_tenants() {
        let one = surge_mix_scaled(7, SimTime::from_secs(5), 1.0);
        let two = surge_mix_scaled(7, SimTime::from_secs(5), 2.0);
        assert_eq!(one[0], two[0], "interactive tenant untouched");
        let count = |a: &Application| a.arrival.generate(0).len();
        assert!(count(&two[1]) > count(&one[1]), "bulk load doubles");
        assert!(count(&two[2]) > count(&one[2]));
    }
}
