//! Request-level dataflow DAG derived from a TOSCA application.
//!
//! The MIRTO WL Manager plans placements over the *per-request* task
//! graph: one node per component, edges carrying the per-request data
//! volume. [`RequestDag`] provides topological order, stage depths and a
//! critical-path latency estimator used by deployment-time planning.

use serde::{Deserialize, Serialize};

use myrtus_continuum::time::SimDuration;

use crate::tosca::{Application, ValidateAppError};

/// One node of the request DAG (mirrors a component).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNode {
    /// Component name.
    pub name: String,
    /// Index into [`Application::components`].
    pub component_idx: usize,
    /// Per-request work, megacycles.
    pub work_mc: f64,
    /// Indices of upstream nodes.
    pub preds: Vec<usize>,
    /// `(downstream node, bytes)` pairs.
    pub succs: Vec<(usize, u64)>,
}

/// Per-request dataflow DAG of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestDag {
    nodes: Vec<DagNode>,
    topo: Vec<usize>,
}

impl RequestDag {
    /// Builds the DAG from a validated application.
    ///
    /// # Errors
    ///
    /// Returns the application's validation error if it is malformed.
    pub fn from_application(app: &Application) -> Result<RequestDag, ValidateAppError> {
        app.validate()?;
        let index_of = |name: &str| -> usize {
            app.components
                .iter()
                .position(|c| c.name == name)
                .expect("validated component reference")
        };
        let mut nodes: Vec<DagNode> = app
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| DagNode {
                name: c.name.clone(),
                component_idx: i,
                work_mc: c.requirements.work_mc,
                preds: Vec::new(),
                succs: Vec::new(),
            })
            .collect();
        for conn in &app.connections {
            let f = index_of(&conn.from);
            let t = index_of(&conn.to);
            nodes[f].succs.push((t, conn.bytes_per_req));
            nodes[t].preds.push(f);
        }
        // Kahn topological order (validation guarantees acyclicity).
        let mut indeg: Vec<usize> = nodes.iter().map(|n| n.preds.len()).collect();
        let mut ready: Vec<usize> =
            indeg.iter().enumerate().filter(|(_, d)| **d == 0).map(|(i, _)| i).collect();
        ready.sort_unstable();
        let mut topo = Vec::with_capacity(nodes.len());
        while let Some(i) = ready.pop() {
            topo.push(i);
            for &(s, _) in &nodes[i].succs {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(topo.len(), nodes.len());
        Ok(RequestDag { nodes, topo })
    }

    /// Nodes in declaration order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Node indices in a valid topological order.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Entry nodes (no predecessors).
    pub fn sources(&self) -> Vec<usize> {
        self.nodes.iter().enumerate().filter(|(_, n)| n.preds.is_empty()).map(|(i, _)| i).collect()
    }

    /// Predecessor lists per node, in declaration order — the adjacency
    /// shape consumed by `myrtus_obs::span::causal_chain` for measured
    /// critical-path extraction.
    pub fn preds_table(&self) -> Vec<Vec<usize>> {
        self.nodes.iter().map(|n| n.preds.clone()).collect()
    }

    /// Exit nodes (no successors).
    pub fn sinks(&self) -> Vec<usize> {
        self.nodes.iter().enumerate().filter(|(_, n)| n.succs.is_empty()).map(|(i, _)| i).collect()
    }

    /// Total software work of one request, megacycles.
    pub fn total_work_mc(&self) -> f64 {
        self.nodes.iter().map(|n| n.work_mc).sum()
    }

    /// Total bytes moved per request.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().flat_map(|n| n.succs.iter().map(|(_, b)| *b)).sum()
    }

    /// Critical-path latency estimate when every node computes at
    /// `speed_mc_per_us` and every edge streams at `bytes_per_us`.
    ///
    /// This is the lower bound the DPE reports as a model-based KPI.
    pub fn critical_path(&self, speed_mc_per_us: f64, bytes_per_us: f64) -> SimDuration {
        let mut finish = vec![0.0f64; self.nodes.len()];
        for &i in &self.topo {
            let n = &self.nodes[i];
            let ready = n
                .preds
                .iter()
                .map(|&p| {
                    let edge = self.nodes[p]
                        .succs
                        .iter()
                        .find(|(s, _)| *s == i)
                        .map(|(_, b)| *b)
                        .unwrap_or(0);
                    finish[p] + edge as f64 / bytes_per_us.max(f64::EPSILON)
                })
                .fold(0.0f64, f64::max);
            finish[i] = ready + n.work_mc / speed_mc_per_us.max(f64::EPSILON);
        }
        SimDuration::from_micros_f64(finish.iter().copied().fold(0.0, f64::max))
    }

    /// Stage depth of every node (longest hop count from a source).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        for &i in &self.topo {
            for &p in &self.nodes[i].preds {
                depth[i] = depth[i].max(depth[p] + 1);
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalSpec;
    use crate::tosca::{Component, ComponentKind};
    use myrtus_continuum::net::Protocol;

    fn diamond() -> Application {
        Application::new("d", ArrivalSpec::periodic(SimDuration::from_millis(1), 1))
            .with_component(Component::new("src", ComponentKind::Sensor).with_work_mc(1.0))
            .with_component(Component::new("a", ComponentKind::Function).with_work_mc(4.0))
            .with_component(Component::new("b", ComponentKind::Function).with_work_mc(2.0))
            .with_component(Component::new("sink", ComponentKind::Storage).with_work_mc(1.0))
            .with_connection("src", "a", 1_000, Protocol::Mqtt)
            .with_connection("src", "b", 1_000, Protocol::Mqtt)
            .with_connection("a", "sink", 500, Protocol::Mqtt)
            .with_connection("b", "sink", 500, Protocol::Mqtt)
    }

    #[test]
    fn topo_order_respects_edges() {
        let dag = RequestDag::from_application(&diamond()).expect("valid");
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.nodes().len()];
            for (rank, &i) in dag.topo_order().iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for (i, n) in dag.nodes().iter().enumerate() {
            for &(s, _) in &n.succs {
                assert!(pos[i] < pos[s], "{} before {}", n.name, dag.nodes()[s].name);
            }
        }
    }

    #[test]
    fn sources_and_sinks() {
        let dag = RequestDag::from_application(&diamond()).expect("valid");
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![3]);
    }

    #[test]
    fn critical_path_takes_the_longer_branch() {
        let dag = RequestDag::from_application(&diamond()).expect("valid");
        // speed 1 mc/us, 1000 bytes/us: path src→a→sink = 1+1+4+0.5+1 = 7.5 us.
        let cp = dag.critical_path(1.0, 1_000.0);
        assert_eq!(cp.as_micros(), 8); // 7.5 rounds to 8
                                       // Infinite-ish bandwidth: 1+4+1 = 6 us.
        let cp2 = dag.critical_path(1.0, 1e12);
        assert_eq!(cp2.as_micros(), 6);
    }

    #[test]
    fn totals() {
        let dag = RequestDag::from_application(&diamond()).expect("valid");
        assert!((dag.total_work_mc() - 8.0).abs() < 1e-12);
        assert_eq!(dag.total_bytes(), 3_000);
    }

    #[test]
    fn depths_increase_along_paths() {
        let dag = RequestDag::from_application(&diamond()).expect("valid");
        let d = dag.depths();
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
        assert_eq!(d[3], 2);
    }

    #[test]
    fn invalid_application_is_rejected() {
        let app = diamond().with_connection("sink", "src", 1, Protocol::Coap);
        assert!(RequestDag::from_application(&app).is_err());
    }
}
