//! Arrival-trace import/export.
//!
//! The paper's use cases come with recorded traffic (vehicle events,
//! therapy sessions); this module reads and writes the simple
//! one-instant-per-line CSV format such recordings reduce to, so
//! [`ArrivalSpec::Trace`] workloads can be captured from and replayed
//! into experiments.

use myrtus_continuum::time::SimTime;

use crate::arrival::ArrivalSpec;

/// Errors parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes release instants as a CSV trace (`arrival_us` header, one
/// microsecond instant per line).
pub fn to_csv(instants: &[SimTime]) -> String {
    let mut out = String::from("arrival_us\n");
    for t in instants {
        out.push_str(&t.as_micros().to_string());
        out.push('\n');
    }
    out
}

/// Parses a CSV trace into a sorted [`ArrivalSpec::Trace`]. Accepts an
/// optional `arrival_us` header, blank lines and `#` comments.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for non-numeric entries.
pub fn from_csv(text: &str) -> Result<ArrivalSpec, ParseTraceError> {
    let mut instants = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if i == 0 && line.eq_ignore_ascii_case("arrival_us") {
            continue;
        }
        let us: u64 = line.parse().map_err(|_| ParseTraceError {
            line: i + 1,
            message: format!("expected a microsecond instant, got {line:?}"),
        })?;
        instants.push(SimTime::from_micros(us));
    }
    instants.sort_unstable();
    Ok(ArrivalSpec::Trace(instants))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips() {
        let ts = vec![
            SimTime::from_micros(100),
            SimTime::from_micros(2_000),
            SimTime::from_micros(2_000),
            SimTime::from_millis(5),
        ];
        let csv = to_csv(&ts);
        let spec = from_csv(&csv).expect("parses");
        assert_eq!(spec.generate(0), ts);
    }

    #[test]
    fn header_comments_and_blanks_are_skipped() {
        let csv = "arrival_us\n# burst one\n100\n\n200\n";
        let spec = from_csv(csv).expect("parses");
        assert_eq!(spec.generate(0).len(), 2);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let spec = from_csv("300\n100\n200\n").expect("parses");
        let ts = spec.generate(0);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let err = from_csv("100\nbanana\n").expect_err("rejected");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn generated_poisson_traces_survive_capture_and_replay() {
        let spec = ArrivalSpec::poisson(200.0, SimTime::from_secs(2));
        let recorded = spec.generate(9);
        let replayed = from_csv(&to_csv(&recorded)).expect("parses");
        assert_eq!(replayed.generate(123), recorded, "replay is seed-independent");
    }
}
