//! Token-based authentication for the MIRTO API daemon.
//!
//! Fig. 3 places an *Authentication Module* in front of the MIRTO agent's
//! REST-like API. This module implements it as HMAC-SHA-256 signed bearer
//! tokens carrying a principal, scopes and an expiry in logical time.

use std::collections::BTreeSet;

use myrtus_continuum::time::SimTime;

use crate::sha2::hmac_sha256;

/// A verified identity with its granted scopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principal {
    /// User or agent name.
    pub name: String,
    /// Granted scopes (e.g. `deploy`, `reconfigure`).
    pub scopes: BTreeSet<String>,
}

impl Principal {
    /// Whether the principal holds a scope.
    pub fn has_scope(&self, scope: &str) -> bool {
        self.scopes.contains(scope)
    }
}

/// Authentication failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthnError {
    /// The token structure is invalid.
    Malformed,
    /// The HMAC does not verify.
    BadSignature,
    /// The token expired.
    Expired {
        /// Expiry instant carried in the token.
        at: SimTime,
    },
}

impl std::fmt::Display for AuthnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthnError::Malformed => f.write_str("malformed token"),
            AuthnError::BadSignature => f.write_str("token signature does not verify"),
            AuthnError::Expired { at } => write!(f, "token expired at {at}"),
        }
    }
}

impl std::error::Error for AuthnError {}

/// Issues and verifies bearer tokens with a shared secret.
///
/// # Examples
///
/// ```
/// use myrtus_security::authn::TokenAuthenticator;
/// use myrtus_continuum::time::SimTime;
///
/// let auth = TokenAuthenticator::new(b"agent-secret");
/// let token = auth.issue("operator", &["deploy"], SimTime::from_secs(60));
/// let who = auth.verify(&token, SimTime::from_secs(10))?;
/// assert!(who.has_scope("deploy"));
/// # Ok::<(), myrtus_security::authn::AuthnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TokenAuthenticator {
    secret: Vec<u8>,
}

impl TokenAuthenticator {
    /// Creates an authenticator with a shared secret.
    pub fn new(secret: &[u8]) -> Self {
        TokenAuthenticator { secret: secret.to_vec() }
    }

    /// Issues a token for `name` with `scopes`, valid until `expires`.
    pub fn issue(&self, name: &str, scopes: &[&str], expires: SimTime) -> String {
        let payload = format!("{name};{};{}", scopes.join(","), expires.as_micros());
        let mac = hmac_sha256(&self.secret, payload.as_bytes());
        let mac_hex: String = mac.iter().map(|b| format!("{b:02x}")).collect();
        format!("{payload};{mac_hex}")
    }

    /// Verifies a token at logical time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`AuthnError`] for malformed, forged or expired tokens.
    pub fn verify(&self, token: &str, now: SimTime) -> Result<Principal, AuthnError> {
        let mut parts = token.rsplitn(2, ';');
        let mac_hex = parts.next().ok_or(AuthnError::Malformed)?;
        let payload = parts.next().ok_or(AuthnError::Malformed)?;
        let expect = hmac_sha256(&self.secret, payload.as_bytes());
        let expect_hex: String = expect.iter().map(|b| format!("{b:02x}")).collect();
        // Constant-time-ish comparison.
        if mac_hex.len() != expect_hex.len() {
            return Err(AuthnError::BadSignature);
        }
        let mut diff = 0u8;
        for (a, b) in mac_hex.bytes().zip(expect_hex.bytes()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(AuthnError::BadSignature);
        }
        let mut fields = payload.split(';');
        let name = fields.next().ok_or(AuthnError::Malformed)?;
        let scopes = fields.next().ok_or(AuthnError::Malformed)?;
        let exp_us: u64 = fields
            .next()
            .ok_or(AuthnError::Malformed)?
            .parse()
            .map_err(|_| AuthnError::Malformed)?;
        let expires = SimTime::from_micros(exp_us);
        if now > expires {
            return Err(AuthnError::Expired { at: expires });
        }
        Ok(Principal {
            name: name.to_string(),
            scopes: scopes.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_verify_round_trip() {
        let auth = TokenAuthenticator::new(b"s3cr3t");
        let t = auth.issue("alice", &["deploy", "observe"], SimTime::from_secs(100));
        let p = auth.verify(&t, SimTime::from_secs(50)).expect("valid");
        assert_eq!(p.name, "alice");
        assert!(p.has_scope("deploy") && p.has_scope("observe"));
        assert!(!p.has_scope("admin"));
    }

    #[test]
    fn expired_token_rejected() {
        let auth = TokenAuthenticator::new(b"k");
        let t = auth.issue("bob", &[], SimTime::from_secs(1));
        assert!(matches!(auth.verify(&t, SimTime::from_secs(2)), Err(AuthnError::Expired { .. })));
        // Exactly at expiry is still valid.
        assert!(auth.verify(&t, SimTime::from_secs(1)).is_ok());
    }

    #[test]
    fn forged_token_rejected() {
        let auth = TokenAuthenticator::new(b"k1");
        let other = TokenAuthenticator::new(b"k2");
        let t = other.issue("eve", &["deploy"], SimTime::from_secs(100));
        assert_eq!(auth.verify(&t, SimTime::ZERO), Err(AuthnError::BadSignature));
    }

    #[test]
    fn tampered_scope_rejected() {
        let auth = TokenAuthenticator::new(b"k");
        let t = auth.issue("carol", &["observe"], SimTime::from_secs(100));
        let tampered = t.replace("observe", "admin..");
        assert!(auth.verify(&tampered, SimTime::ZERO).is_err());
    }

    #[test]
    fn malformed_tokens_rejected() {
        let auth = TokenAuthenticator::new(b"k");
        assert!(auth.verify("", SimTime::ZERO).is_err());
        assert!(auth.verify("just-one-part", SimTime::ZERO).is_err());
    }

    #[test]
    fn empty_scope_list_yields_no_scopes() {
        let auth = TokenAuthenticator::new(b"k");
        let t = auth.issue("dave", &[], SimTime::from_secs(10));
        let p = auth.verify(&t, SimTime::ZERO).expect("valid");
        assert!(p.scopes.is_empty());
    }
}
