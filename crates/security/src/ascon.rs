//! ASCON-128 AEAD and ASCON-Hash (NIST LWC winner), from scratch.
//!
//! Table II prescribes ASCON-128 encryption and ASCON-Hash for the Low
//! (lightweight) level, sized for constrained edge components. Both are
//! built on the 320-bit ASCON permutation implemented here bitsliced,
//! per the v1.2 specification.

/// 320-bit permutation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State([u64; 5]);

impl State {
    #[inline]
    fn round(&mut self, c: u64) {
        let x = &mut self.0;
        x[2] ^= c;
        // Substitution layer.
        x[0] ^= x[4];
        x[4] ^= x[3];
        x[2] ^= x[1];
        let t: [u64; 5] = [!x[0] & x[1], !x[1] & x[2], !x[2] & x[3], !x[3] & x[4], !x[4] & x[0]];
        x[0] ^= t[1];
        x[1] ^= t[2];
        x[2] ^= t[3];
        x[3] ^= t[4];
        x[4] ^= t[0];
        x[1] ^= x[0];
        x[0] ^= x[4];
        x[3] ^= x[2];
        x[2] = !x[2];
        // Linear diffusion layer.
        x[0] ^= x[0].rotate_right(19) ^ x[0].rotate_right(28);
        x[1] ^= x[1].rotate_right(61) ^ x[1].rotate_right(39);
        x[2] ^= x[2].rotate_right(1) ^ x[2].rotate_right(6);
        x[3] ^= x[3].rotate_right(10) ^ x[3].rotate_right(17);
        x[4] ^= x[4].rotate_right(7) ^ x[4].rotate_right(41);
    }

    /// Applies `rounds` rounds of the permutation (12 for pᵃ, 6 for pᵇ).
    fn permute(&mut self, rounds: u32) {
        for r in (12 - rounds)..12 {
            self.round((((0xf - r) << 4) | r) as u64);
        }
    }
}

const ASCON128_IV: u64 = 0x8040_0c06_0000_0000;
/// Authentication-tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Key length in bytes.
pub const KEY_LEN: usize = 16;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 16;
/// Hash digest length in bytes.
pub const HASH_LEN: usize = 32;

fn load64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w[..b.len()].copy_from_slice(b);
    u64::from_be_bytes(w)
}

fn pad_block(b: &[u8]) -> u64 {
    load64(b) ^ (0x80u64 << (56 - 8 * b.len()))
}

/// Authentication failure on [`ascon128_open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ciphertext failed authentication")
    }
}

impl std::error::Error for AuthError {}

fn init(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> (State, u64, u64) {
    let k0 = load64(&key[..8]);
    let k1 = load64(&key[8..]);
    let n0 = load64(&nonce[..8]);
    let n1 = load64(&nonce[8..]);
    let mut s = State([ASCON128_IV, k0, k1, n0, n1]);
    s.permute(12);
    s.0[3] ^= k0;
    s.0[4] ^= k1;
    (s, k0, k1)
}

fn absorb_ad(s: &mut State, ad: &[u8]) {
    if !ad.is_empty() {
        let mut chunks = ad.chunks_exact(8);
        for c in chunks.by_ref() {
            s.0[0] ^= load64(c);
            s.permute(6);
        }
        s.0[0] ^= pad_block(chunks.remainder());
        s.permute(6);
    }
    s.0[4] ^= 1; // domain separation
}

fn finalize(s: &mut State, k0: u64, k1: u64) -> [u8; TAG_LEN] {
    s.0[1] ^= k0;
    s.0[2] ^= k1;
    s.permute(12);
    let mut tag = [0u8; TAG_LEN];
    tag[..8].copy_from_slice(&(s.0[3] ^ k0).to_be_bytes());
    tag[8..].copy_from_slice(&(s.0[4] ^ k1).to_be_bytes());
    tag
}

/// ASCON-128 authenticated encryption: returns `ciphertext || tag`.
///
/// # Examples
///
/// ```
/// use myrtus_security::ascon::{ascon128_seal, ascon128_open};
///
/// let key = [1u8; 16];
/// let nonce = [2u8; 16];
/// let ct = ascon128_seal(&key, &nonce, b"session", b"patient pose frame");
/// let pt = ascon128_open(&key, &nonce, b"session", &ct).expect("authentic");
/// assert_eq!(pt, b"patient pose frame");
/// ```
pub fn ascon128_seal(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    ad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let (mut s, k0, k1) = init(key, nonce);
    absorb_ad(&mut s, ad);
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    let mut chunks = plaintext.chunks_exact(8);
    for c in chunks.by_ref() {
        s.0[0] ^= load64(c);
        out.extend_from_slice(&s.0[0].to_be_bytes());
        s.permute(6);
    }
    let rem = chunks.remainder();
    s.0[0] ^= pad_block(rem);
    out.extend_from_slice(&s.0[0].to_be_bytes()[..rem.len()]);
    let tag = finalize(&mut s, k0, k1);
    out.extend_from_slice(&tag);
    out
}

/// ASCON-128 authenticated decryption of `ciphertext || tag`.
///
/// # Errors
///
/// Returns [`AuthError`] when the tag does not verify (wrong key, nonce,
/// associated data, or tampered ciphertext).
pub fn ascon128_open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    ad: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, AuthError> {
    if ciphertext.len() < TAG_LEN {
        return Err(AuthError);
    }
    let (ct, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
    let (mut s, k0, k1) = init(key, nonce);
    absorb_ad(&mut s, ad);
    let mut out = Vec::with_capacity(ct.len());
    let mut chunks = ct.chunks_exact(8);
    for c in chunks.by_ref() {
        let ci = load64(c);
        out.extend_from_slice(&(s.0[0] ^ ci).to_be_bytes());
        s.0[0] = ci;
        s.permute(6);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let ci = load64(rem);
        let pt = (s.0[0] ^ ci).to_be_bytes();
        out.extend_from_slice(&pt[..rem.len()]);
        // Replace the consumed plaintext bits and re-pad.
        let mask = u64::MAX >> (8 * rem.len());
        s.0[0] = ci | (s.0[0] & mask);
        s.0[0] ^= 0x80u64 << (56 - 8 * rem.len());
    } else {
        s.0[0] ^= 0x80u64 << 56;
    }
    let expect = finalize(&mut s, k0, k1);
    // Constant-time-ish comparison.
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    if diff == 0 {
        Ok(out)
    } else {
        Err(AuthError)
    }
}

const ASCON_HASH_IV: [u64; 5] = [
    0xee93_98aa_db67_f03d,
    0x8bb2_1831_c60f_1002,
    0xb48a_92db_98d5_da62,
    0x4318_9921_b8f8_e3e8,
    0x348f_a5c9_d525_e140,
];

/// ASCON-Hash: 256-bit digest.
///
/// # Examples
///
/// ```
/// use myrtus_security::ascon::ascon_hash;
///
/// let d = ascon_hash(b"lightweight");
/// assert_eq!(d.len(), 32);
/// assert_ne!(ascon_hash(b"a"), ascon_hash(b"b"));
/// ```
pub fn ascon_hash(data: &[u8]) -> [u8; HASH_LEN] {
    let mut s = State(ASCON_HASH_IV);
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        s.0[0] ^= load64(c);
        s.permute(12);
    }
    s.0[0] ^= pad_block(chunks.remainder());
    s.permute(12);
    let mut out = [0u8; HASH_LEN];
    for i in 0..4 {
        out[8 * i..8 * i + 8].copy_from_slice(&s.0[0].to_be_bytes());
        if i < 3 {
            s.permute(12);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn kat_key() -> [u8; 16] {
        core::array::from_fn(|i| i as u8)
    }

    #[test]
    fn kat_empty_message_empty_ad() {
        // NIST LWC KAT, Count = 1: PT = "", AD = "" → only the tag.
        let ct = ascon128_seal(&kat_key(), &kat_key(), b"", b"");
        assert_eq!(hex(&ct), "e355159f292911f794cb1432a0103a8a");
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; 16];
        let nonce = [0x17u8; 16];
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 65, 300] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ad = b"header";
            let ct = ascon128_seal(&key, &nonce, ad, &pt);
            assert_eq!(ct.len(), len + TAG_LEN);
            let back = ascon128_open(&key, &nonce, ad, &ct).expect("authentic");
            assert_eq!(back, pt, "len {len}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let key = [1u8; 16];
        let nonce = [2u8; 16];
        let mut ct = ascon128_seal(&key, &nonce, b"ad", b"payload bytes");
        ct[0] ^= 1;
        assert_eq!(ascon128_open(&key, &nonce, b"ad", &ct), Err(AuthError));
        // Wrong AD fails too.
        let ct2 = ascon128_seal(&key, &nonce, b"ad", b"payload bytes");
        assert_eq!(ascon128_open(&key, &nonce, b"da", &ct2), Err(AuthError));
        // Wrong key fails.
        assert_eq!(ascon128_open(&[9u8; 16], &nonce, b"ad", &ct2), Err(AuthError));
        // Truncated ciphertext fails.
        assert_eq!(ascon128_open(&key, &nonce, b"ad", &ct2[..10]), Err(AuthError));
    }

    #[test]
    fn hash_kat_empty() {
        assert_eq!(
            hex(&ascon_hash(b"")),
            "7346bc14f036e87ae03d0997913088f5f68411434b3cf8b54fa796a80d251f91"
        );
    }

    #[test]
    fn hash_avalanche() {
        let a = ascon_hash(b"The continuum of computing resources");
        let b = ascon_hash(b"the continuum of computing resources");
        let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert!(differing > 24, "one flipped bit changes most bytes: {differing}");
    }

    #[test]
    fn hash_handles_block_boundaries() {
        for len in [7usize, 8, 9, 64] {
            let data = vec![0xABu8; len];
            assert_eq!(ascon_hash(&data).len(), HASH_LEN);
        }
    }
}
