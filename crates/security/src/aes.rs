//! AES-128 / AES-256 (FIPS 197) with CTR mode, from scratch.
//!
//! Table II prescribes AES-256 for the High level and AES-128 for
//! Medium. The block cipher is validated against the FIPS 197 example
//! vectors; CTR keeps the implementation encrypt-only (decryption is the
//! same keystream XOR).

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 14] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ if x & 0x80 != 0 { 0x1b } else { 0 }
}

/// Key size variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesVariant {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl AesVariant {
    fn rounds(self) -> usize {
        match self {
            AesVariant::Aes128 => 10,
            AesVariant::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            AesVariant::Aes128 => 4,
            AesVariant::Aes256 => 8,
        }
    }

    /// Key size in bytes.
    pub fn key_len(self) -> usize {
        self.key_words() * 4
    }
}

/// An expanded AES key ready for encryption.
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    variant: AesVariant,
}

/// Error for a key of the wrong length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyLenError {
    /// Expected key length in bytes.
    pub expected: usize,
    /// Provided key length in bytes.
    pub got: usize,
}

impl std::fmt::Display for InvalidKeyLenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected a {}-byte key, got {}", self.expected, self.got)
    }
}

impl std::error::Error for InvalidKeyLenError {}

impl Aes {
    /// Expands `key` for the given variant.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLenError`] when the key length does not match
    /// the variant.
    pub fn new(variant: AesVariant, key: &[u8]) -> Result<Aes, InvalidKeyLenError> {
        if key.len() != variant.key_len() {
            return Err(InvalidKeyLenError { expected: variant.key_len(), got: key.len() });
        }
        let nk = variant.key_words();
        let nr = variant.rounds();
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Ok(Aes { round_keys, variant })
    }

    /// The variant this key was expanded for.
    pub fn variant(&self) -> AesVariant {
        self.variant
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.variant.rounds();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..nr {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[nr]);
    }

    /// CTR-mode keystream XOR: encrypts or decrypts `data` in place with
    /// the given 16-byte nonce/counter block prefix (the low 32 bits are
    /// the counter).
    pub fn ctr_apply(&self, nonce: &[u8; 12], data: &mut [u8]) {
        let mut counter_block = [0u8; 16];
        counter_block[..12].copy_from_slice(nonce);
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            counter_block[12..].copy_from_slice(&(i as u32 + 1).to_be_bytes());
            let mut ks = counter_block;
            self.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    #[test]
    fn fips197_aes128_example() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(AesVariant::Aes128, &key).expect("key ok");
        let mut block = [0u8; 16];
        block.copy_from_slice(&unhex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn fips197_aes256_example() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(AesVariant::Aes256, &key).expect("key ok");
        let mut block = [0u8; 16];
        block.copy_from_slice(&unhex("00112233445566778899aabbccddeeff"));
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), "8ea2b7ca516745bfeafc49904b496089");
    }

    #[test]
    fn wrong_key_length_is_rejected() {
        let err = Aes::new(AesVariant::Aes256, &[0u8; 16]).expect_err("short key");
        assert_eq!(err.expected, 32);
        assert_eq!(err.got, 16);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ctr_round_trips_arbitrary_lengths() {
        let aes = Aes::new(AesVariant::Aes128, &[7u8; 16]).expect("key ok");
        let nonce = [9u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut buf = plain.clone();
            aes.ctr_apply(&nonce, &mut buf);
            if len > 0 {
                assert_ne!(buf, plain, "len {len} must change");
            }
            aes.ctr_apply(&nonce, &mut buf);
            assert_eq!(buf, plain, "len {len} round trips");
        }
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let aes = Aes::new(AesVariant::Aes128, &[7u8; 16]).expect("key ok");
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        aes.ctr_apply(&[1u8; 12], &mut a);
        aes.ctr_apply(&[2u8; 12], &mut b);
        assert_ne!(a, b);
    }
}
