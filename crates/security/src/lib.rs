//! # myrtus-security
//!
//! The MYRTUS security stack of paper Table II: three security levels
//! (High = PQC-resistant, Medium = classical, Low = lightweight) bound
//! into cipher suites with **real** from-scratch symmetric and hash
//! kernels (AES-128/256-CTR, ASCON-128 AEAD, SHA-256/512, ASCON-Hash,
//! HMAC) and calibrated cost models for the public-key schemes (RSA,
//! ECDSA, Dilithium, Falcon, Kyber). On top: secure channels, the MIRTO
//! API authentication module, Attack-Defence-Tree threat analysis with
//! countermeasure synthesis, and runtime trust & reputation scoring.
//!
//! ## Quick start
//!
//! ```
//! use myrtus_security::suite::SecurityLevel;
//!
//! let suite = SecurityLevel::High.suite();
//! let key = vec![7u8; suite.encryption.key_len()];
//! let ct = suite.seal(&key, &[0u8; 12], b"", b"patient record");
//! let pt = suite.open(&key, &[0u8; 12], b"", &ct).expect("authentic");
//! assert_eq!(pt, b"patient record");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adt;
pub mod aes;
pub mod ascon;
pub mod authn;
pub mod channel;
pub mod gaiax;
pub mod lwc;
pub mod pk;
pub mod sha2;
pub mod suite;
pub mod trust;

pub use adt::{Adt, Defense, Gate};
pub use authn::{Principal, TokenAuthenticator};
pub use channel::SecureChannel;
pub use gaiax::{Credential, SelfDescription, TrustAnchorRegistry};
pub use suite::{CipherSuite, HandshakeCost, SecurityLevel};
pub use trust::{Observation, TrustModel};
