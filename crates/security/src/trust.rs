//! Trust and reputation (EU-CEI building block).
//!
//! The paper envisions "trust-related KPIs to implement trust and
//! reputation schemes at runtime" and trust indicators "computed and made
//! available locally at runtime". This module implements a beta-
//! reputation model: every observed interaction with a component updates
//! (α, β) evidence counters with exponential forgetting; the trust score
//! is the expected value α / (α + β). Federated reputation combines a
//! component's direct evidence with reports from peers, discounted by the
//! reporter's own trust.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use myrtus_continuum::ids::NodeId;

/// One observed interaction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Observation {
    /// The component served a task correctly and on time.
    TaskOk,
    /// The component failed, timed out or returned bad data.
    TaskFailed,
    /// A security-relevant violation (failed auth, bad signature, policy
    /// breach) — weighted much more heavily than a plain failure.
    SecurityIncident,
}

/// Beta-reputation evidence for one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reputation {
    alpha: f64,
    beta: f64,
}

impl Default for Reputation {
    fn default() -> Self {
        // Uninformative prior: trust 0.5.
        Reputation { alpha: 1.0, beta: 1.0 }
    }
}

impl Reputation {
    /// Expected trust in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Total evidence mass (confidence proxy).
    pub fn evidence(&self) -> f64 {
        self.alpha + self.beta - 2.0
    }

    fn observe(&mut self, obs: Observation, forgetting: f64) {
        self.alpha = 1.0 + (self.alpha - 1.0) * forgetting;
        self.beta = 1.0 + (self.beta - 1.0) * forgetting;
        match obs {
            Observation::TaskOk => self.alpha += 1.0,
            Observation::TaskFailed => self.beta += 1.0,
            Observation::SecurityIncident => self.beta += 10.0,
        }
    }

    fn merge_discounted(&mut self, other: &Reputation, weight: f64) {
        self.alpha += (other.alpha - 1.0) * weight;
        self.beta += (other.beta - 1.0) * weight;
    }
}

/// Runtime trust model maintained by the Privacy & Security Manager.
///
/// # Examples
///
/// ```
/// use myrtus_security::trust::{Observation, TrustModel};
/// use myrtus_continuum::ids::NodeId;
///
/// let mut trust = TrustModel::new(0.98);
/// let n = NodeId::from_raw(0);
/// for _ in 0..20 {
///     trust.observe(n, Observation::TaskOk);
/// }
/// assert!(trust.score(n) > 0.9);
/// trust.observe(n, Observation::SecurityIncident);
/// assert!(trust.score(n) < 0.75);
/// ```
#[derive(Debug, Clone)]
pub struct TrustModel {
    reputations: HashMap<NodeId, Reputation>,
    forgetting: f64,
}

impl TrustModel {
    /// Creates a model with the given forgetting factor in `(0, 1]`
    /// (1 = never forget).
    ///
    /// # Panics
    ///
    /// Panics if `forgetting` is outside `(0, 1]`.
    pub fn new(forgetting: f64) -> Self {
        assert!(forgetting > 0.0 && forgetting <= 1.0, "forgetting in (0,1]");
        TrustModel { reputations: HashMap::new(), forgetting }
    }

    /// Records an observation about a component.
    pub fn observe(&mut self, node: NodeId, obs: Observation) {
        self.reputations.entry(node).or_default().observe(obs, self.forgetting);
    }

    /// Current trust score of a component (0.5 prior when unobserved).
    pub fn score(&self, node: NodeId) -> f64 {
        self.reputations.get(&node).copied().unwrap_or_default().score()
    }

    /// Raw reputation evidence for a component.
    pub fn reputation(&self, node: NodeId) -> Reputation {
        self.reputations.get(&node).copied().unwrap_or_default()
    }

    /// Components whose trust is at least `threshold`, sorted most
    /// trusted first (unobserved components are excluded).
    pub fn trusted(&self, threshold: f64) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .reputations
            .iter()
            .map(|(n, r)| (*n, r.score()))
            .filter(|(_, s)| *s >= threshold)
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        v
    }

    /// Merges a peer agent's reported reputation about `node`, discounted
    /// by how much we trust the `reporter` (federated trust, as in
    /// Gaia-X-style federations).
    pub fn incorporate_report(&mut self, reporter: NodeId, node: NodeId, report: Reputation) {
        let weight = self.score(reporter);
        self.reputations.entry(node).or_default().merge_discounted(&report, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_raw(i)
    }

    #[test]
    fn prior_is_half() {
        let t = TrustModel::new(1.0);
        assert!((t.score(n(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn successes_build_trust_failures_erode_it() {
        let mut t = TrustModel::new(1.0);
        for _ in 0..10 {
            t.observe(n(1), Observation::TaskOk);
        }
        let high = t.score(n(1));
        assert!(high > 0.85);
        for _ in 0..10 {
            t.observe(n(1), Observation::TaskFailed);
        }
        assert!(t.score(n(1)) < high);
    }

    #[test]
    fn security_incident_is_weighted_heavily() {
        let mut a = TrustModel::new(1.0);
        let mut b = TrustModel::new(1.0);
        for _ in 0..20 {
            a.observe(n(0), Observation::TaskOk);
            b.observe(n(0), Observation::TaskOk);
        }
        a.observe(n(0), Observation::TaskFailed);
        b.observe(n(0), Observation::SecurityIncident);
        assert!(b.score(n(0)) < a.score(n(0)) - 0.2);
    }

    #[test]
    fn forgetting_lets_components_redeem() {
        let mut strict = TrustModel::new(1.0);
        let mut forgiving = TrustModel::new(0.9);
        for m in [&mut strict, &mut forgiving] {
            m.observe(n(0), Observation::SecurityIncident);
            for _ in 0..50 {
                m.observe(n(0), Observation::TaskOk);
            }
        }
        assert!(forgiving.score(n(0)) > strict.score(n(0)));
    }

    #[test]
    fn trusted_filter_sorts_descending() {
        let mut t = TrustModel::new(1.0);
        for _ in 0..10 {
            t.observe(n(1), Observation::TaskOk);
        }
        for _ in 0..10 {
            t.observe(n(2), Observation::TaskFailed);
        }
        t.observe(n(3), Observation::TaskOk);
        let trusted = t.trusted(0.5);
        assert_eq!(trusted.first().map(|(id, _)| *id), Some(n(1)));
        assert!(trusted.iter().all(|(id, _)| *id != n(2)));
    }

    #[test]
    fn reports_are_discounted_by_reporter_trust() {
        let mut t = TrustModel::new(1.0);
        // A trusted reporter.
        for _ in 0..20 {
            t.observe(n(10), Observation::TaskOk);
        }
        // An untrusted reporter.
        for _ in 0..20 {
            t.observe(n(11), Observation::SecurityIncident);
        }
        let glowing = Reputation { alpha: 50.0, beta: 1.0 };
        let mut via_trusted = t.clone();
        via_trusted.incorporate_report(n(10), n(0), glowing);
        let mut via_untrusted = t.clone();
        via_untrusted.incorporate_report(n(11), n(0), glowing);
        assert!(via_trusted.score(n(0)) > via_untrusted.score(n(0)));
    }

    #[test]
    #[should_panic(expected = "forgetting")]
    fn invalid_forgetting_rejected() {
        let _ = TrustModel::new(0.0);
    }
}
