//! Lightweight hash alternatives of Table II's Low level.
//!
//! Besides ASCON-Hash (implemented for real in
//! [`ascon`](crate::ascon)), the paper lists QUARK, spongent and PHOTON
//! (refs \[14\]–\[16\]) as lightweight hashing options "considering
//! components capabilities". Those sponge constructions target *silicon
//! area*, not software speed, so they are represented by cost models —
//! gate-equivalents, digest sizes and software cycles/byte calibrated to
//! the published figures — plus a selector that picks the lightest
//! function fitting a component's area/security budget.

use serde::{Deserialize, Serialize};

/// Cost model of one lightweight hash function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LightweightHash {
    /// Function name as cited.
    pub name: &'static str,
    /// Digest size in bits.
    pub digest_bits: u32,
    /// Hardware footprint in gate equivalents (smallest published
    /// serialized implementation).
    pub gate_equivalents: u32,
    /// Software cost in cycles per byte on an 8/32-bit MCU class core.
    pub sw_cycles_per_byte: f64,
    /// Claimed preimage security in bits.
    pub preimage_bits: u32,
}

/// ASCON-Hash (the NIST LWC selection; also implemented for real).
pub const ASCON_HASH: LightweightHash = LightweightHash {
    name: "ASCON-Hash",
    digest_bits: 256,
    gate_equivalents: 7_000,
    sw_cycles_per_byte: 20.0,
    preimage_bits: 128,
};

/// U-QUARK (ref \[14\]).
pub const QUARK: LightweightHash = LightweightHash {
    name: "U-QUARK",
    digest_bits: 136,
    gate_equivalents: 1_379,
    sw_cycles_per_byte: 620.0,
    preimage_bits: 128,
};

/// spongent-128 (ref \[15\]).
pub const SPONGENT: LightweightHash = LightweightHash {
    name: "spongent-128",
    digest_bits: 128,
    gate_equivalents: 1_060,
    sw_cycles_per_byte: 960.0,
    preimage_bits: 120,
};

/// PHOTON-128 (ref \[16\]).
pub const PHOTON: LightweightHash = LightweightHash {
    name: "PHOTON-128",
    digest_bits: 128,
    gate_equivalents: 1_122,
    sw_cycles_per_byte: 440.0,
    preimage_bits: 112,
};

/// The Table II Low-level hash menu, preferred order (standardized
/// first).
pub const MENU: [LightweightHash; 4] = [ASCON_HASH, QUARK, PHOTON, SPONGENT];

/// Picks the preferred hash whose hardware footprint fits
/// `max_gate_equivalents` and whose preimage security meets
/// `min_preimage_bits`; `None` when nothing fits.
pub fn select(max_gate_equivalents: u32, min_preimage_bits: u32) -> Option<LightweightHash> {
    MENU.iter()
        .copied()
        .filter(|h| {
            h.gate_equivalents <= max_gate_equivalents && h.preimage_bits >= min_preimage_bits
        })
        .min_by_key(|h| h.gate_equivalents)
}

impl LightweightHash {
    /// Software time to hash `bytes` at `mhz`.
    pub fn sw_time(&self, bytes: u64, mhz: f64) -> myrtus_continuum::time::SimDuration {
        myrtus_continuum::time::SimDuration::from_micros_f64(
            bytes as f64 * self.sw_cycles_per_byte / mhz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_matches_the_paper_row() {
        let names: Vec<&str> = MENU.iter().map(|h| h.name).collect();
        assert!(names.contains(&"ASCON-Hash"));
        assert!(names.contains(&"U-QUARK"));
        assert!(names.contains(&"spongent-128"));
        assert!(names.contains(&"PHOTON-128"));
    }

    #[test]
    fn sponges_are_smaller_but_slower_than_ascon() {
        for h in [QUARK, SPONGENT, PHOTON] {
            assert!(h.gate_equivalents < ASCON_HASH.gate_equivalents, "{}", h.name);
            assert!(h.sw_cycles_per_byte > ASCON_HASH.sw_cycles_per_byte, "{}", h.name);
        }
    }

    #[test]
    fn selection_honors_both_budgets() {
        // A roomy tag chip: smallest footprint with ≥120-bit preimage.
        let pick = select(1_500, 120).expect("fits");
        assert_eq!(pick.name, "spongent-128");
        // Demand 128-bit preimage: spongent/photon drop out.
        let pick = select(1_500, 128).expect("fits");
        assert_eq!(pick.name, "U-QUARK");
        // Plenty of area: the smallest still wins by footprint.
        let pick = select(100_000, 128).expect("fits");
        assert_eq!(pick.name, "U-QUARK");
        // Nothing fits a 500-GE budget.
        assert!(select(500, 100).is_none());
    }

    #[test]
    fn software_time_scales() {
        let fast = ASCON_HASH.sw_time(1_024, 600.0);
        let slow = SPONGENT.sw_time(1_024, 600.0);
        assert!(slow.as_micros() > 10 * fast.as_micros());
    }
}
