//! Attack-Defence Trees (ADT) and countermeasure synthesis.
//!
//! The DPE lets designers "model the Attack Defence Tree for the analysis
//! of the threats to which the system is exposed and synthesize a set of
//! adapted counter-measures" (paper Sect. V). An [`Adt`] is an AND/OR
//! tree of attack goals with leaf success probabilities; [`Defense`]s
//! attach to nodes and multiply the attack probability by
//! `1 - mitigation`. [`Adt::synthesize`] greedily picks the
//! best-risk-reduction-per-cost defenses within a budget — the "Threat
//! Counter Measures" library instantiation.

use serde::{Deserialize, Serialize};

/// Index of a node within an [`Adt`].
pub type AdtNodeId = usize;
/// Index of a defense within an [`Adt`].
pub type DefenseId = usize;

/// How a non-leaf attack combines its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gate {
    /// All child attacks must succeed.
    And,
    /// Any child attack suffices.
    Or,
}

/// One attack node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackNode {
    /// Human-readable attack name.
    pub name: String,
    /// Gate for inner nodes; ignored for leaves.
    pub gate: Gate,
    /// Children (empty for leaves).
    pub children: Vec<AdtNodeId>,
    /// Base success probability for leaves (ignored for inner nodes).
    pub base_prob: f64,
    /// Defenses attached to this node.
    pub defenses: Vec<DefenseId>,
}

/// One defensive countermeasure from the customizable-primitives library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Defense {
    /// Countermeasure name (e.g. `"mutual-tls"`).
    pub name: String,
    /// Deployment cost in abstract units (engineering + runtime).
    pub cost: f64,
    /// Fraction of attack success removed when active, in `[0, 1)`.
    pub mitigation: f64,
}

/// Errors building or evaluating an ADT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdtError {
    /// A node or defense reference is out of range.
    BadReference(usize),
    /// The tree has no nodes.
    Empty,
}

impl std::fmt::Display for AdtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdtError::BadReference(i) => write!(f, "reference {i} is out of range"),
            AdtError::Empty => f.write_str("attack-defence tree has no nodes"),
        }
    }
}

impl std::error::Error for AdtError {}

/// An attack-defence tree; node 0 is the root goal.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Adt {
    nodes: Vec<AttackNode>,
    defenses: Vec<Defense>,
}

impl Adt {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Adt::default()
    }

    /// Adds a leaf attack with a base success probability; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn leaf(&mut self, name: impl Into<String>, prob: f64) -> AdtNodeId {
        assert!((0.0..=1.0).contains(&prob), "probability in [0,1]");
        self.nodes.push(AttackNode {
            name: name.into(),
            gate: Gate::Or,
            children: Vec::new(),
            base_prob: prob,
            defenses: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Adds an inner attack combining `children` with `gate`.
    pub fn inner(
        &mut self,
        name: impl Into<String>,
        gate: Gate,
        children: Vec<AdtNodeId>,
    ) -> AdtNodeId {
        self.nodes.push(AttackNode {
            name: name.into(),
            gate,
            children,
            base_prob: 0.0,
            defenses: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Registers a defense in the library; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `mitigation` is outside `[0, 1)` or `cost` is negative.
    pub fn defense(&mut self, name: impl Into<String>, cost: f64, mitigation: f64) -> DefenseId {
        assert!((0.0..1.0).contains(&mitigation), "mitigation in [0,1)");
        assert!(cost >= 0.0, "cost must be non-negative");
        self.defenses.push(Defense { name: name.into(), cost, mitigation });
        self.defenses.len() - 1
    }

    /// Attaches a defense to an attack node.
    ///
    /// # Errors
    ///
    /// Returns [`AdtError::BadReference`] for unknown ids.
    pub fn attach(&mut self, node: AdtNodeId, defense: DefenseId) -> Result<(), AdtError> {
        if node >= self.nodes.len() {
            return Err(AdtError::BadReference(node));
        }
        if defense >= self.defenses.len() {
            return Err(AdtError::BadReference(defense));
        }
        self.nodes[node].defenses.push(defense);
        Ok(())
    }

    /// The registered defenses.
    pub fn defenses(&self) -> &[Defense] {
        &self.defenses
    }

    /// The attack nodes.
    pub fn nodes(&self) -> &[AttackNode] {
        &self.nodes
    }

    /// Success probability of attack node `root` given the set of active
    /// defenses.
    ///
    /// # Errors
    ///
    /// Returns [`AdtError`] when the tree is empty or `root` is invalid.
    pub fn success_probability(
        &self,
        root: AdtNodeId,
        active: &[DefenseId],
    ) -> Result<f64, AdtError> {
        if self.nodes.is_empty() {
            return Err(AdtError::Empty);
        }
        if root >= self.nodes.len() {
            return Err(AdtError::BadReference(root));
        }
        Ok(self.prob(root, active))
    }

    fn prob(&self, id: AdtNodeId, active: &[DefenseId]) -> f64 {
        let n = &self.nodes[id];
        let raw = if n.children.is_empty() {
            n.base_prob
        } else {
            match n.gate {
                Gate::And => n.children.iter().map(|&c| self.prob(c, active)).product(),
                Gate::Or => {
                    1.0 - n.children.iter().map(|&c| 1.0 - self.prob(c, active)).product::<f64>()
                }
            }
        };
        let mitigation: f64 = n
            .defenses
            .iter()
            .filter(|d| active.contains(d))
            .map(|&d| 1.0 - self.defenses[d].mitigation)
            .product();
        raw * mitigation
    }

    /// Greedy countermeasure synthesis: repeatedly activates the defense
    /// with the best marginal risk reduction per unit cost until the
    /// budget is exhausted or the root risk drops to `target_risk`.
    /// Returns the chosen defenses and the residual root risk.
    ///
    /// # Errors
    ///
    /// Returns [`AdtError::Empty`] on an empty tree.
    pub fn synthesize(
        &self,
        budget: f64,
        target_risk: f64,
    ) -> Result<(Vec<DefenseId>, f64), AdtError> {
        if self.nodes.is_empty() {
            return Err(AdtError::Empty);
        }
        let root = 0;
        let mut active: Vec<DefenseId> = Vec::new();
        let mut remaining = budget;
        let mut risk = self.prob(root, &active);
        loop {
            if risk <= target_risk {
                break;
            }
            let mut best: Option<(DefenseId, f64, f64)> = None; // (id, new_risk, score)
            for d in 0..self.defenses.len() {
                if active.contains(&d) || self.defenses[d].cost > remaining {
                    continue;
                }
                let mut trial = active.clone();
                trial.push(d);
                let new_risk = self.prob(root, &trial);
                let reduction = risk - new_risk;
                if reduction <= 0.0 {
                    continue;
                }
                let score = reduction / self.defenses[d].cost.max(1e-9);
                if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    best = Some((d, new_risk, score));
                }
            }
            let Some((d, new_risk, _)) = best else { break };
            remaining -= self.defenses[d].cost;
            active.push(d);
            risk = new_risk;
        }
        active.sort_unstable();
        Ok((active, risk))
    }
}

/// A small library of reusable countermeasure primitives matching the
/// suites of Table II, with costs growing with strength.
pub fn standard_defense_library(adt: &mut Adt) -> Vec<DefenseId> {
    vec![
        adt.defense("ascon-link-encryption", 1.0, 0.55),
        adt.defense("aes128-link-encryption", 2.0, 0.70),
        adt.defense("aes256-pqc-channel", 4.0, 0.90),
        adt.defense("token-authentication", 1.5, 0.65),
        adt.defense("signed-firmware", 2.5, 0.80),
        adt.defense("registry-access-control", 1.0, 0.50),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Root OR(eavesdrop, AND(forge-token, reach-api)).
    fn sample() -> (Adt, Vec<DefenseId>) {
        let mut adt = Adt::new();
        // Build children first; the root must end up at index 0 for
        // synthesize(), so use a fresh tree with root inserted first via
        // placeholder pattern: here we simply build root last and swap.
        let eaves = adt.leaf("eavesdrop-link", 0.6);
        let forge = adt.leaf("forge-token", 0.3);
        let reach = adt.leaf("reach-api", 0.8);
        let combo = adt.inner("authenticated-access", Gate::And, vec![forge, reach]);
        let root = adt.inner("compromise-data", Gate::Or, vec![eaves, combo]);
        // Move root to index 0 by remapping: simplest is to assert and use
        // success_probability(root, ..) directly in tests.
        let defs = standard_defense_library(&mut adt);
        adt.attach(eaves, defs[1]).expect("valid");
        adt.attach(eaves, defs[2]).expect("valid");
        adt.attach(forge, defs[3]).expect("valid");
        let _ = root;
        (adt, defs)
    }

    #[test]
    fn probability_combines_gates() {
        let (adt, _) = sample();
        // OR(0.6, AND(0.3, 0.8)=0.24) = 1-0.4*0.76 = 0.696
        let p = adt.success_probability(4, &[]).expect("valid");
        assert!((p - 0.696).abs() < 1e-9, "{p}");
    }

    #[test]
    fn defenses_reduce_probability() {
        let (adt, defs) = sample();
        let base = adt.success_probability(4, &[]).expect("valid");
        let with_enc = adt.success_probability(4, &[defs[1]]).expect("valid");
        assert!(with_enc < base);
        // eavesdrop drops to 0.6*0.3=0.18 → OR(0.18, 0.24) = 0.3768
        assert!((with_enc - (1.0 - 0.82 * 0.76)).abs() < 1e-9);
    }

    #[test]
    fn stacked_defenses_multiply() {
        let (adt, defs) = sample();
        let both = adt.success_probability(4, &[defs[1], defs[2]]).expect("valid");
        // eavesdrop: 0.6*0.3*0.1 = 0.018
        assert!((both - (1.0 - (1.0 - 0.018) * 0.76)).abs() < 1e-9);
    }

    #[test]
    fn synthesis_respects_budget() {
        let mut adt = Adt::new();
        let root_leaf = adt.leaf("root-attack", 0.9);
        assert_eq!(root_leaf, 0, "root is node 0");
        let cheap = adt.defense("cheap", 1.0, 0.5);
        let strong = adt.defense("strong", 10.0, 0.9);
        adt.attach(root_leaf, cheap).expect("valid");
        adt.attach(root_leaf, strong).expect("valid");
        let (picked, risk) = adt.synthesize(1.5, 0.0).expect("valid");
        assert_eq!(picked, vec![cheap], "budget excludes the strong defense");
        assert!((risk - 0.45).abs() < 1e-9);
        let (picked2, risk2) = adt.synthesize(100.0, 0.0).expect("valid");
        assert_eq!(picked2.len(), 2);
        assert!(risk2 < 0.05);
    }

    #[test]
    fn synthesis_stops_at_target() {
        let mut adt = Adt::new();
        let l = adt.leaf("attack", 0.4);
        let d1 = adt.defense("d1", 1.0, 0.5);
        let d2 = adt.defense("d2", 1.0, 0.5);
        adt.attach(l, d1).expect("valid");
        adt.attach(l, d2).expect("valid");
        let (picked, risk) = adt.synthesize(10.0, 0.25).expect("valid");
        assert_eq!(picked.len(), 1, "one defense already meets the target");
        assert!(risk <= 0.25);
    }

    #[test]
    fn bad_references_error() {
        let mut adt = Adt::new();
        let l = adt.leaf("a", 0.5);
        assert_eq!(adt.attach(l, 42), Err(AdtError::BadReference(42)));
        assert_eq!(adt.attach(9, 0), Err(AdtError::BadReference(9)));
        assert!(adt.success_probability(7, &[]).is_err());
        assert!(Adt::new().success_probability(0, &[]).is_err());
    }
}
