//! Secure channels between continuum components.
//!
//! Combines a Table II [`crate::suite::CipherSuite`] into a
//! session abstraction: an `establish` step paying the handshake cost
//! model, then sequenced AEAD records using the real symmetric kernels.
//! The MIRTO deployment proxy opens one channel per component pair whose
//! traffic carries a security requirement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ascon::AuthError;
use crate::suite::{CipherSuite, HandshakeCost, SecurityLevel};

/// Errors on channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// Record failed authentication.
    Auth,
    /// Record arrived out of order (replay or loss).
    BadSequence {
        /// Expected sequence number.
        expected: u64,
        /// Received sequence number.
        got: u64,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Auth => f.write_str("record failed authentication"),
            ChannelError::BadSequence { expected, got } => {
                write!(f, "bad record sequence: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<AuthError> for ChannelError {
    fn from(_: AuthError) -> Self {
        ChannelError::Auth
    }
}

/// One end of an established secure channel.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    suite: CipherSuite,
    key: Vec<u8>,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Establishes a channel pair (initiator, responder) sharing a fresh
    /// session key derived deterministically from `seed` (standing in for
    /// the KEM shared secret), and reports the handshake cost.
    pub fn establish(
        level: SecurityLevel,
        seed: u64,
    ) -> (SecureChannel, SecureChannel, HandshakeCost) {
        let suite = level.suite();
        let cost = suite.handshake_cost();
        let mut rng = StdRng::seed_from_u64(seed);
        let key: Vec<u8> = (0..suite.encryption.key_len()).map(|_| rng.gen()).collect();
        let a = SecureChannel { suite: suite.clone(), key: key.clone(), send_seq: 0, recv_seq: 0 };
        let b = SecureChannel { suite, key, send_seq: 0, recv_seq: 0 };
        (a, b, cost)
    }

    /// The level this channel runs at.
    pub fn level(&self) -> SecurityLevel {
        self.suite.level
    }

    /// Protects a record; the sequence number doubles as the nonce and is
    /// carried in the associated data.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&seq.to_be_bytes());
        let mut record = seq.to_be_bytes().to_vec();
        record.extend_from_slice(&self.suite.seal(
            &self.key,
            &nonce,
            &seq.to_be_bytes(),
            plaintext,
        ));
        record
    }

    /// Opens the next record, enforcing strict sequencing.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::BadSequence`] on replay/reorder and
    /// [`ChannelError::Auth`] on tampering.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if record.len() < 8 {
            return Err(ChannelError::Auth);
        }
        let (seq_bytes, body) = record.split_at(8);
        let seq = u64::from_be_bytes(seq_bytes.try_into().expect("8 bytes"));
        if seq != self.recv_seq {
            return Err(ChannelError::BadSequence { expected: self.recv_seq, got: seq });
        }
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&seq.to_be_bytes());
        let pt = self.suite.open(&self.key, &nonce, seq_bytes, body)?;
        self.recv_seq += 1;
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_streams_round_trip_at_every_level() {
        for level in SecurityLevel::ALL {
            let (mut a, mut b, cost) = SecureChannel::establish(level, 42);
            assert!(cost.wire_bytes > 0);
            for i in 0..5 {
                let msg = format!("frame-{i}");
                let rec = a.seal(msg.as_bytes());
                let got = b.open(&rec).expect("in order");
                assert_eq!(got, msg.as_bytes(), "{level}");
            }
        }
    }

    #[test]
    fn replay_is_rejected() {
        let (mut a, mut b, _) = SecureChannel::establish(SecurityLevel::Low, 1);
        let rec = a.seal(b"once");
        b.open(&rec).expect("first delivery");
        assert!(matches!(b.open(&rec), Err(ChannelError::BadSequence { .. })));
    }

    #[test]
    fn reorder_is_rejected() {
        let (mut a, mut b, _) = SecureChannel::establish(SecurityLevel::Medium, 1);
        let r0 = a.seal(b"zero");
        let r1 = a.seal(b"one");
        assert!(matches!(b.open(&r1), Err(ChannelError::BadSequence { expected: 0, got: 1 })));
        b.open(&r0).expect("in order");
        b.open(&r1).expect("now in order");
    }

    #[test]
    fn tampered_record_fails_auth() {
        let (mut a, mut b, _) = SecureChannel::establish(SecurityLevel::High, 1);
        let mut rec = a.seal(b"integrity");
        let n = rec.len();
        rec[n - 1] ^= 1;
        assert_eq!(b.open(&rec), Err(ChannelError::Auth));
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let (mut a1, _, _) = SecureChannel::establish(SecurityLevel::Low, 1);
        let (_, mut b2, _) = SecureChannel::establish(SecurityLevel::Low, 2);
        let rec = a1.seal(b"x");
        assert!(b2.open(&rec).is_err(), "cross-session records do not open");
    }
}
