//! Gaia-X-style federated trust framework.
//!
//! Paper Sect. III: "on the cloud side, adherence to the Gaia-X trust
//! model will be guaranteed". The Gaia-X trust framework rests on signed
//! *self-descriptions*: a participant publishes claims about itself,
//! attested by an accredited trust anchor, and consumers verify the
//! attestation chain before federating. This module implements that
//! contract over the repository's HMAC primitives: a
//! [`TrustAnchorRegistry`] of accredited anchors, [`SelfDescription`]s
//! with claims, anchor-signed [`Credential`]s, and a compliance check
//! combining signature verification, expiry, claim requirements and the
//! runtime [`crate::trust::TrustModel`] score.

use std::collections::BTreeMap;

use myrtus_continuum::ids::NodeId;
use myrtus_continuum::time::SimTime;

use crate::sha2::hmac_sha256;
use crate::trust::TrustModel;

/// A participant's self-description: identity plus typed claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfDescription {
    /// Participant (provider) name.
    pub participant: String,
    /// The continuum node(s) this description covers.
    pub node: NodeId,
    /// Claims, e.g. `data-residency = eu`, `security-level = high`.
    pub claims: BTreeMap<String, String>,
}

impl SelfDescription {
    /// Creates a self-description.
    pub fn new(participant: impl Into<String>, node: NodeId) -> Self {
        SelfDescription { participant: participant.into(), node, claims: BTreeMap::new() }
    }

    /// Adds a claim (builder style).
    pub fn with_claim(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.claims.insert(key.into(), value.into());
        self
    }

    fn canonical(&self) -> String {
        let mut s = format!("{}|{}", self.participant, self.node.as_raw());
        for (k, v) in &self.claims {
            s.push_str(&format!("|{k}={v}"));
        }
        s
    }
}

/// An anchor-signed attestation of a self-description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// The attested description.
    pub description: SelfDescription,
    /// The signing anchor's name.
    pub anchor: String,
    /// Expiry of the attestation.
    pub expires: SimTime,
    signature: [u8; 32],
}

/// Reasons a credential fails compliance.
#[derive(Debug, Clone, PartialEq)]
pub enum ComplianceError {
    /// The signing anchor is not accredited.
    UnknownAnchor(String),
    /// The signature does not verify.
    BadSignature,
    /// The attestation expired.
    Expired {
        /// Expiry instant.
        at: SimTime,
    },
    /// A required claim is missing or has the wrong value.
    MissingClaim {
        /// The claim key.
        key: String,
    },
    /// The participant's runtime trust fell below the floor.
    Untrusted {
        /// The observed score.
        score: f64,
    },
}

impl std::fmt::Display for ComplianceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComplianceError::UnknownAnchor(a) => write!(f, "anchor {a:?} is not accredited"),
            ComplianceError::BadSignature => f.write_str("attestation signature does not verify"),
            ComplianceError::Expired { at } => write!(f, "attestation expired at {at}"),
            ComplianceError::MissingClaim { key } => {
                write!(f, "required claim {key:?} missing or mismatched")
            }
            ComplianceError::Untrusted { score } => {
                write!(f, "runtime trust {score:.2} below the compliance floor")
            }
        }
    }
}

impl std::error::Error for ComplianceError {}

/// The accredited trust anchors of the federation.
#[derive(Debug, Default)]
pub struct TrustAnchorRegistry {
    anchors: BTreeMap<String, Vec<u8>>,
}

impl TrustAnchorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TrustAnchorRegistry::default()
    }

    /// Accredits an anchor with its signing secret.
    pub fn accredit(&mut self, name: impl Into<String>, secret: &[u8]) {
        self.anchors.insert(name.into(), secret.to_vec());
    }

    /// Revokes an anchor's accreditation.
    pub fn revoke(&mut self, name: &str) {
        self.anchors.remove(name);
    }

    /// Accredited anchor names.
    pub fn anchors(&self) -> Vec<&str> {
        self.anchors.keys().map(String::as_str).collect()
    }

    /// Signs a self-description as `anchor`, producing a credential.
    ///
    /// # Errors
    ///
    /// Returns [`ComplianceError::UnknownAnchor`] for unaccredited
    /// anchors.
    pub fn attest(
        &self,
        anchor: &str,
        description: SelfDescription,
        expires: SimTime,
    ) -> Result<Credential, ComplianceError> {
        let secret = self
            .anchors
            .get(anchor)
            .ok_or_else(|| ComplianceError::UnknownAnchor(anchor.to_string()))?;
        let payload = format!("{}|{}|{}", description.canonical(), anchor, expires.as_micros());
        let signature = hmac_sha256(secret, payload.as_bytes());
        Ok(Credential { description, anchor: anchor.to_string(), expires, signature })
    }

    /// Full compliance check of a credential at `now`: accredited anchor,
    /// valid signature, unexpired, every `required_claims` entry present
    /// with the expected value, and runtime trust at least `min_trust`.
    ///
    /// # Errors
    ///
    /// Returns the first failing [`ComplianceError`].
    pub fn verify(
        &self,
        credential: &Credential,
        now: SimTime,
        required_claims: &[(&str, &str)],
        trust: &TrustModel,
        min_trust: f64,
    ) -> Result<(), ComplianceError> {
        let secret = self
            .anchors
            .get(&credential.anchor)
            .ok_or_else(|| ComplianceError::UnknownAnchor(credential.anchor.clone()))?;
        let payload = format!(
            "{}|{}|{}",
            credential.description.canonical(),
            credential.anchor,
            credential.expires.as_micros()
        );
        let expect = hmac_sha256(secret, payload.as_bytes());
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(credential.signature.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(ComplianceError::BadSignature);
        }
        if now > credential.expires {
            return Err(ComplianceError::Expired { at: credential.expires });
        }
        for (k, v) in required_claims {
            if credential.description.claims.get(*k).map(String::as_str) != Some(*v) {
                return Err(ComplianceError::MissingClaim { key: (*k).to_string() });
            }
        }
        let score = trust.score(credential.description.node);
        if score < min_trust {
            return Err(ComplianceError::Untrusted { score });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trust::Observation;

    fn setup() -> (TrustAnchorRegistry, Credential, TrustModel) {
        let mut reg = TrustAnchorRegistry::new();
        reg.accredit("eu-anchor", b"anchor-secret");
        let sd = SelfDescription::new("hiro-fmdc", NodeId::from_raw(9))
            .with_claim("data-residency", "eu")
            .with_claim("security-level", "high");
        let cred = reg.attest("eu-anchor", sd, SimTime::from_secs(3_600)).expect("accredited");
        let mut trust = TrustModel::new(0.99);
        for _ in 0..10 {
            trust.observe(NodeId::from_raw(9), Observation::TaskOk);
        }
        (reg, cred, trust)
    }

    #[test]
    fn compliant_credential_verifies() {
        let (reg, cred, trust) = setup();
        reg.verify(
            &cred,
            SimTime::from_secs(10),
            &[("data-residency", "eu"), ("security-level", "high")],
            &trust,
            0.5,
        )
        .expect("compliant");
    }

    #[test]
    fn unaccredited_anchor_rejected() {
        let (mut reg, cred, trust) = setup();
        reg.revoke("eu-anchor");
        assert!(matches!(
            reg.verify(&cred, SimTime::ZERO, &[], &trust, 0.0),
            Err(ComplianceError::UnknownAnchor(_))
        ));
    }

    #[test]
    fn tampered_claims_fail_signature() {
        let (reg, mut cred, trust) = setup();
        cred.description.claims.insert("data-residency".into(), "elsewhere".into());
        assert_eq!(
            reg.verify(&cred, SimTime::ZERO, &[], &trust, 0.0),
            Err(ComplianceError::BadSignature)
        );
    }

    #[test]
    fn expiry_is_enforced() {
        let (reg, cred, trust) = setup();
        assert!(matches!(
            reg.verify(&cred, SimTime::from_secs(4_000), &[], &trust, 0.0),
            Err(ComplianceError::Expired { .. })
        ));
    }

    #[test]
    fn missing_required_claim_rejected() {
        let (reg, cred, trust) = setup();
        let err = reg
            .verify(&cred, SimTime::ZERO, &[("carbon-neutral", "yes")], &trust, 0.0)
            .expect_err("claim absent");
        assert_eq!(err, ComplianceError::MissingClaim { key: "carbon-neutral".into() });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn runtime_trust_floor_applies() {
        let (reg, cred, mut trust) = setup();
        for _ in 0..5 {
            trust.observe(NodeId::from_raw(9), Observation::SecurityIncident);
        }
        assert!(matches!(
            reg.verify(&cred, SimTime::ZERO, &[], &trust, 0.6),
            Err(ComplianceError::Untrusted { .. })
        ));
    }

    #[test]
    fn cross_anchor_credentials_do_not_verify() {
        let (mut reg, cred, trust) = setup();
        reg.accredit("other-anchor", b"different");
        let mut forged = cred.clone();
        forged.anchor = "other-anchor".into();
        assert_eq!(
            reg.verify(&forged, SimTime::ZERO, &[], &trust, 0.0),
            Err(ComplianceError::BadSignature)
        );
    }
}
