//! Public-key scheme cost models.
//!
//! Table II names RSA, ECDSA, CRYSTALS-Dilithium, FALCON and
//! CRYSTALS-KYBER. Implementing lattice cryptography from scratch is out
//! of scope for a continuum simulator, and the experiments only need the
//! *relative cost* of the three security levels — so each scheme is
//! modeled by cycle counts and wire sizes calibrated to the published
//! pqm4 / SUPERCOP benchmark ratios (documented in DESIGN.md). Symmetric
//! and hash primitives, by contrast, are real implementations.

use serde::{Deserialize, Serialize};

use myrtus_continuum::time::SimDuration;

/// Cost model of one public-key scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PkScheme {
    /// Scheme name as the paper cites it.
    pub name: &'static str,
    /// Whether the scheme is post-quantum resistant.
    pub pqc: bool,
    /// Cycles to produce a signature (0 when not a signature scheme).
    pub sign_cycles: u64,
    /// Cycles to verify a signature.
    pub verify_cycles: u64,
    /// Cycles to encapsulate a shared secret (0 when not a KEM).
    pub encap_cycles: u64,
    /// Cycles to decapsulate.
    pub decap_cycles: u64,
    /// Public-key size in bytes.
    pub public_key_bytes: u64,
    /// Signature size in bytes (0 when not a signature scheme).
    pub signature_bytes: u64,
    /// KEM ciphertext size in bytes (0 when not a KEM).
    pub ciphertext_bytes: u64,
}

impl PkScheme {
    /// Wall time of `cycles` at `mhz` megacycles per second.
    pub fn time_at(cycles: u64, mhz: f64) -> SimDuration {
        SimDuration::from_micros_f64(cycles as f64 / mhz)
    }

    /// Signature production time at `mhz`.
    pub fn sign_time(&self, mhz: f64) -> SimDuration {
        Self::time_at(self.sign_cycles, mhz)
    }

    /// Signature verification time at `mhz`.
    pub fn verify_time(&self, mhz: f64) -> SimDuration {
        Self::time_at(self.verify_cycles, mhz)
    }

    /// Encapsulation time at `mhz`.
    pub fn encap_time(&self, mhz: f64) -> SimDuration {
        Self::time_at(self.encap_cycles, mhz)
    }

    /// Decapsulation time at `mhz`.
    pub fn decap_time(&self, mhz: f64) -> SimDuration {
        Self::time_at(self.decap_cycles, mhz)
    }
}

/// RSA-2048 (sign/verify and legacy KEM roles) — ref \[10\].
pub const RSA_2048: PkScheme = PkScheme {
    name: "RSA-2048",
    pqc: false,
    sign_cycles: 5_500_000,
    verify_cycles: 160_000,
    encap_cycles: 160_000,
    decap_cycles: 5_500_000,
    public_key_bytes: 256,
    signature_bytes: 256,
    ciphertext_bytes: 256,
};

/// ECDSA over P-256 (also standing in for ECDH key agreement at the Low
/// level, as Table II lists) — ref \[11\].
pub const ECDSA_P256: PkScheme = PkScheme {
    name: "ECDSA-P256",
    pqc: false,
    sign_cycles: 330_000,
    verify_cycles: 950_000,
    encap_cycles: 330_000,
    decap_cycles: 330_000,
    public_key_bytes: 64,
    signature_bytes: 64,
    ciphertext_bytes: 64,
};

/// CRYSTALS-Dilithium2 — ref \[8\].
pub const DILITHIUM2: PkScheme = PkScheme {
    name: "CRYSTALS-Dilithium2",
    pqc: true,
    sign_cycles: 1_350_000,
    verify_cycles: 380_000,
    encap_cycles: 0,
    decap_cycles: 0,
    public_key_bytes: 1_312,
    signature_bytes: 2_420,
    ciphertext_bytes: 0,
};

/// FALCON-512 — ref \[9\].
pub const FALCON_512: PkScheme = PkScheme {
    name: "FALCON-512",
    pqc: true,
    sign_cycles: 1_200_000,
    verify_cycles: 120_000,
    encap_cycles: 0,
    decap_cycles: 0,
    public_key_bytes: 897,
    signature_bytes: 666,
    ciphertext_bytes: 0,
};

/// CRYSTALS-KYBER-768 — ref \[12\].
pub const KYBER_768: PkScheme = PkScheme {
    name: "CRYSTALS-KYBER-768",
    pqc: true,
    sign_cycles: 0,
    verify_cycles: 0,
    encap_cycles: 210_000,
    decap_cycles: 245_000,
    public_key_bytes: 1_184,
    signature_bytes: 0,
    ciphertext_bytes: 1_088,
};

#[cfg(test)]
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn pqc_flags_match_table_ii() {
        assert!(DILITHIUM2.pqc && FALCON_512.pqc && KYBER_768.pqc);
        assert!(!RSA_2048.pqc && !ECDSA_P256.pqc);
    }

    #[test]
    fn rsa_sign_is_much_slower_than_verify() {
        assert!(RSA_2048.sign_cycles > 10 * RSA_2048.verify_cycles);
    }

    #[test]
    fn ecdsa_verify_is_slower_than_sign() {
        assert!(ECDSA_P256.verify_cycles > ECDSA_P256.sign_cycles);
    }

    #[test]
    fn pq_signatures_are_larger_than_classical() {
        assert!(DILITHIUM2.signature_bytes > 10 * ECDSA_P256.signature_bytes);
        assert!(FALCON_512.signature_bytes > ECDSA_P256.signature_bytes);
    }

    #[test]
    fn time_scales_inverse_with_frequency() {
        let slow = DILITHIUM2.sign_time(600.0);
        let fast = DILITHIUM2.sign_time(3_000.0);
        assert!(slow.as_micros() > 4 * fast.as_micros());
        assert_eq!(PkScheme::time_at(1_000, 1_000.0), SimDuration::from_micros(1));
    }
}
