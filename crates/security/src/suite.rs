//! The three MYRTUS security levels of paper Table II.
//!
//! | Level | Encryption | Authentication | Key exchange | Hashing |
//! |---|---|---|---|---|
//! | High (PQC)   | AES-256    | Dilithium / Falcon | Kyber | SHA-512 |
//! | Medium       | AES-128    | RSA / ECDSA        | RSA   | SHA-256 |
//! | Low (light)  | ASCON-128  | ECDSA              | ECDSA | ASCON-Hash |
//!
//! [`CipherSuite`] binds the four roles together, offering *real*
//! symmetric encryption and hashing plus cost-model accounting for the
//! public-key operations, so experiments measure genuine relative
//! overhead between the levels.

use serde::{Deserialize, Serialize};

use myrtus_continuum::time::SimDuration;

use crate::aes::{Aes, AesVariant};
use crate::ascon::{ascon128_open, ascon128_seal, ascon_hash, AuthError};
use crate::pk::{PkScheme, DILITHIUM2, ECDSA_P256, KYBER_768, RSA_2048};
use crate::sha2::{hmac_sha256, sha256, sha512};

/// The envisioned security levels (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SecurityLevel {
    /// Lightweight non-PQC considering component capabilities.
    Low,
    /// Non-PQC but suitable for current threats.
    Medium,
    /// PQC resistant.
    High,
}

impl SecurityLevel {
    /// All levels, weakest first.
    pub const ALL: [SecurityLevel; 3] =
        [SecurityLevel::Low, SecurityLevel::Medium, SecurityLevel::High];

    /// Numeric tier (0 = low … 2 = high), matching the registry field.
    pub fn tier(self) -> u8 {
        match self {
            SecurityLevel::Low => 0,
            SecurityLevel::Medium => 1,
            SecurityLevel::High => 2,
        }
    }

    /// Level from a numeric tier, clamping out-of-range values to High.
    pub fn from_tier(tier: u8) -> SecurityLevel {
        match tier {
            0 => SecurityLevel::Low,
            1 => SecurityLevel::Medium,
            _ => SecurityLevel::High,
        }
    }

    /// The concrete suite for this level.
    pub fn suite(self) -> CipherSuite {
        match self {
            SecurityLevel::High => CipherSuite {
                level: self,
                encryption: SymmetricAlg::Aes256,
                authentication: &DILITHIUM2,
                key_exchange: &KYBER_768,
                hash: HashAlg::Sha512,
            },
            SecurityLevel::Medium => CipherSuite {
                level: self,
                encryption: SymmetricAlg::Aes128,
                authentication: &RSA_2048,
                key_exchange: &RSA_2048,
                hash: HashAlg::Sha256,
            },
            SecurityLevel::Low => CipherSuite {
                level: self,
                encryption: SymmetricAlg::Ascon128,
                authentication: &ECDSA_P256,
                key_exchange: &ECDSA_P256,
                hash: HashAlg::AsconHash,
            },
        }
    }
}

impl std::fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SecurityLevel::Low => "low",
            SecurityLevel::Medium => "medium",
            SecurityLevel::High => "high",
        };
        f.write_str(s)
    }
}

/// Symmetric encryption role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymmetricAlg {
    /// AES-256 in CTR mode with an HMAC-SHA-256 tag (encrypt-then-MAC).
    Aes256,
    /// AES-128 in CTR mode with an HMAC-SHA-256 tag.
    Aes128,
    /// ASCON-128 AEAD (natively authenticated).
    Ascon128,
}

impl SymmetricAlg {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            SymmetricAlg::Aes256 => 32,
            SymmetricAlg::Aes128 | SymmetricAlg::Ascon128 => 16,
        }
    }

    /// Modeled software cost per byte, cycles (table-based AES without
    /// AES-NI vs. bitsliced ASCON on a 64-bit core).
    pub fn cycles_per_byte(self) -> f64 {
        match self {
            SymmetricAlg::Aes256 => 28.0,
            SymmetricAlg::Aes128 => 21.0,
            SymmetricAlg::Ascon128 => 11.0,
        }
    }
}

/// Hashing role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashAlg {
    /// SHA-512.
    Sha512,
    /// SHA-256.
    Sha256,
    /// ASCON-Hash.
    AsconHash,
}

impl HashAlg {
    /// Digest size in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlg::Sha512 => 64,
            HashAlg::Sha256 | HashAlg::AsconHash => 32,
        }
    }

    /// Modeled software cost per byte, cycles.
    pub fn cycles_per_byte(self) -> f64 {
        match self {
            HashAlg::Sha512 => 12.0,
            HashAlg::Sha256 => 15.0,
            HashAlg::AsconHash => 20.0,
        }
    }
}

/// Handshake cost summary (mutual authentication + key encapsulation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandshakeCost {
    /// CPU cycles on the initiator.
    pub initiator_cycles: u64,
    /// CPU cycles on the responder.
    pub responder_cycles: u64,
    /// Extra bytes exchanged on the wire.
    pub wire_bytes: u64,
}

impl HandshakeCost {
    /// Initiator wall time at `mhz`.
    pub fn initiator_time(&self, mhz: f64) -> SimDuration {
        PkScheme::time_at(self.initiator_cycles, mhz)
    }
}

/// A bound Table II suite with real symmetric/hash operations and
/// public-key cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CipherSuite {
    /// The level this suite implements.
    pub level: SecurityLevel,
    /// Symmetric encryption role.
    pub encryption: SymmetricAlg,
    /// Digital-signature scheme.
    pub authentication: &'static PkScheme,
    /// Key-encapsulation scheme.
    pub key_exchange: &'static PkScheme,
    /// Hash role.
    pub hash: HashAlg,
}

const AEAD_TAG_LEN: usize = 16;

impl CipherSuite {
    /// Authenticated encryption of `plaintext`. `key` must be
    /// [`SymmetricAlg::key_len`] bytes; `nonce` is 12 bytes (AES-CTR) of
    /// which ASCON uses an extended 16-byte form internally.
    ///
    /// # Panics
    ///
    /// Panics if the key length does not match the suite.
    pub fn seal(&self, key: &[u8], nonce: &[u8; 12], ad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        assert_eq!(key.len(), self.encryption.key_len(), "suite key length");
        match self.encryption {
            SymmetricAlg::Aes256 | SymmetricAlg::Aes128 => {
                let variant = if self.encryption == SymmetricAlg::Aes256 {
                    AesVariant::Aes256
                } else {
                    AesVariant::Aes128
                };
                let aes = Aes::new(variant, key).expect("length checked");
                let mut buf = plaintext.to_vec();
                aes.ctr_apply(nonce, &mut buf);
                // Encrypt-then-MAC over nonce ‖ ad ‖ ciphertext.
                let mut mac_input = Vec::with_capacity(12 + ad.len() + buf.len());
                mac_input.extend_from_slice(nonce);
                mac_input.extend_from_slice(ad);
                mac_input.extend_from_slice(&buf);
                let tag = hmac_sha256(key, &mac_input);
                buf.extend_from_slice(&tag[..AEAD_TAG_LEN]);
                buf
            }
            SymmetricAlg::Ascon128 => {
                let mut k = [0u8; 16];
                k.copy_from_slice(key);
                let mut n = [0u8; 16];
                n[..12].copy_from_slice(nonce);
                ascon128_seal(&k, &n, ad, plaintext)
            }
        }
    }

    /// Authenticated decryption.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] on tampering or a wrong key/nonce/AD.
    ///
    /// # Panics
    ///
    /// Panics if the key length does not match the suite.
    pub fn open(
        &self,
        key: &[u8],
        nonce: &[u8; 12],
        ad: &[u8],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, AuthError> {
        assert_eq!(key.len(), self.encryption.key_len(), "suite key length");
        match self.encryption {
            SymmetricAlg::Aes256 | SymmetricAlg::Aes128 => {
                if ciphertext.len() < AEAD_TAG_LEN {
                    return Err(AuthError);
                }
                let (ct, tag) = ciphertext.split_at(ciphertext.len() - AEAD_TAG_LEN);
                let mut mac_input = Vec::with_capacity(12 + ad.len() + ct.len());
                mac_input.extend_from_slice(nonce);
                mac_input.extend_from_slice(ad);
                mac_input.extend_from_slice(ct);
                let expect = hmac_sha256(key, &mac_input);
                let mut diff = 0u8;
                for (a, b) in expect[..AEAD_TAG_LEN].iter().zip(tag.iter()) {
                    diff |= a ^ b;
                }
                if diff != 0 {
                    return Err(AuthError);
                }
                let variant = if self.encryption == SymmetricAlg::Aes256 {
                    AesVariant::Aes256
                } else {
                    AesVariant::Aes128
                };
                let aes = Aes::new(variant, key).expect("length checked");
                let mut buf = ct.to_vec();
                aes.ctr_apply(nonce, &mut buf);
                Ok(buf)
            }
            SymmetricAlg::Ascon128 => {
                let mut k = [0u8; 16];
                k.copy_from_slice(key);
                let mut n = [0u8; 16];
                n[..12].copy_from_slice(nonce);
                ascon128_open(&k, &n, ad, ciphertext)
            }
        }
    }

    /// Hashes `data` with the suite's hash role.
    pub fn digest(&self, data: &[u8]) -> Vec<u8> {
        match self.hash {
            HashAlg::Sha512 => sha512(data).to_vec(),
            HashAlg::Sha256 => sha256(data).to_vec(),
            HashAlg::AsconHash => ascon_hash(data).to_vec(),
        }
    }

    /// Cost of a mutual-authentication handshake: the initiator signs and
    /// encapsulates; the responder verifies, signs and decapsulates; both
    /// verify the peer's certificate signature.
    pub fn handshake_cost(&self) -> HandshakeCost {
        let auth = self.authentication;
        let kem = self.key_exchange;
        let initiator_cycles = auth.sign_cycles + 2 * auth.verify_cycles + kem.encap_cycles;
        let responder_cycles = auth.sign_cycles + 2 * auth.verify_cycles + kem.decap_cycles;
        let wire_bytes = 2 * (auth.public_key_bytes + auth.signature_bytes)
            + kem.public_key_bytes
            + kem.ciphertext_bytes;
        HandshakeCost { initiator_cycles, responder_cycles, wire_bytes }
    }

    /// Modeled CPU cycles to protect `bytes` of payload (encrypt + hash).
    pub fn record_cycles(&self, bytes: u64) -> u64 {
        ((self.encryption.cycles_per_byte() + self.hash.cycles_per_byte()) * bytes as f64) as u64
    }

    /// Per-record wire overhead in bytes (tag + per-record framing).
    pub fn record_overhead_bytes(&self) -> u64 {
        AEAD_TAG_LEN as u64 + 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_for(s: &CipherSuite) -> Vec<u8> {
        vec![0x5Au8; s.encryption.key_len()]
    }

    #[test]
    fn all_levels_seal_and_open() {
        for level in SecurityLevel::ALL {
            let suite = level.suite();
            let key = key_for(&suite);
            let nonce = [3u8; 12];
            let ct = suite.seal(&key, &nonce, b"hdr", b"vital signs");
            assert!(ct.len() > b"vital signs".len(), "{level}: ciphertext carries a tag");
            let pt = suite.open(&key, &nonce, b"hdr", &ct).expect("authentic");
            assert_eq!(pt, b"vital signs", "{level}");
        }
    }

    #[test]
    fn all_levels_detect_tampering() {
        for level in SecurityLevel::ALL {
            let suite = level.suite();
            let key = key_for(&suite);
            let nonce = [3u8; 12];
            let mut ct = suite.seal(&key, &nonce, b"", b"payload");
            let n = ct.len();
            ct[n - 1] ^= 0x80;
            assert_eq!(suite.open(&key, &nonce, b"", &ct), Err(AuthError), "{level}");
        }
    }

    #[test]
    fn table_ii_role_assignments() {
        let high = SecurityLevel::High.suite();
        assert_eq!(high.encryption, SymmetricAlg::Aes256);
        assert_eq!(high.authentication.name, "CRYSTALS-Dilithium2");
        assert_eq!(high.key_exchange.name, "CRYSTALS-KYBER-768");
        assert_eq!(high.hash, HashAlg::Sha512);
        assert!(high.authentication.pqc && high.key_exchange.pqc);

        let medium = SecurityLevel::Medium.suite();
        assert_eq!(medium.encryption, SymmetricAlg::Aes128);
        assert_eq!(medium.hash, HashAlg::Sha256);

        let low = SecurityLevel::Low.suite();
        assert_eq!(low.encryption, SymmetricAlg::Ascon128);
        assert_eq!(low.hash, HashAlg::AsconHash);
        assert!(!low.authentication.pqc);
    }

    #[test]
    fn handshake_cost_ranks_high_heaviest_on_wire() {
        let hc: Vec<HandshakeCost> =
            SecurityLevel::ALL.iter().map(|l| l.suite().handshake_cost()).collect();
        // Wire bytes: PQC certificates dominate.
        assert!(hc[2].wire_bytes > hc[1].wire_bytes);
        assert!(hc[1].wire_bytes > hc[0].wire_bytes);
        // Low level is cheapest for the initiator CPU.
        assert!(hc[0].initiator_cycles < hc[1].initiator_cycles);
    }

    #[test]
    fn record_cycles_rank_low_cheapest() {
        let c: Vec<u64> =
            SecurityLevel::ALL.iter().map(|l| l.suite().record_cycles(1_000_000)).collect();
        assert!(c[0] < c[1], "ascon+ascon-hash beats aes128+sha256");
        assert!(c[1] < c[2], "aes128 beats aes256+sha512 per byte? no — check ordering");
    }

    #[test]
    fn digest_lengths_match_roles() {
        assert_eq!(SecurityLevel::High.suite().digest(b"x").len(), 64);
        assert_eq!(SecurityLevel::Medium.suite().digest(b"x").len(), 32);
        assert_eq!(SecurityLevel::Low.suite().digest(b"x").len(), 32);
    }

    #[test]
    fn tier_round_trips() {
        for l in SecurityLevel::ALL {
            assert_eq!(SecurityLevel::from_tier(l.tier()), l);
        }
        assert_eq!(SecurityLevel::from_tier(99), SecurityLevel::High);
        assert!(SecurityLevel::High > SecurityLevel::Low);
    }

    #[test]
    fn cross_level_ciphertexts_do_not_open() {
        let high = SecurityLevel::High.suite();
        let low = SecurityLevel::Low.suite();
        let nonce = [1u8; 12];
        let ct = low.seal(&[1u8; 16], &nonce, b"", b"msg");
        // Different algorithms entirely; High's open must reject.
        assert!(high.open(&[1u8; 32], &nonce, b"", &ct).is_err());
    }
}
