//! Property-based tests of the security stack's invariants.

use proptest::prelude::*;

use myrtus_security::adt::{Adt, Gate};
use myrtus_security::aes::{Aes, AesVariant};
use myrtus_security::channel::SecureChannel;
use myrtus_security::suite::SecurityLevel;
use myrtus_security::trust::{Observation, TrustModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AES-CTR is an involution under the same key/nonce for any data.
    #[test]
    fn aes_ctr_round_trips(
        key128 in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let aes = Aes::new(AesVariant::Aes128, &key128).expect("valid key");
        let mut buf = data.clone();
        aes.ctr_apply(&nonce, &mut buf);
        aes.ctr_apply(&nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Channel records survive any message sequence in order, and a
    /// single swapped pair is always rejected.
    #[test]
    fn channels_enforce_order(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 2..8),
        swap_at in 0usize..6,
        level in prop_oneof![
            Just(SecurityLevel::Low),
            Just(SecurityLevel::Medium),
            Just(SecurityLevel::High),
        ],
    ) {
        let (mut tx, mut rx, _) = SecureChannel::establish(level, 9);
        let records: Vec<Vec<u8>> = msgs.iter().map(|m| tx.seal(m)).collect();
        // In-order delivery always works.
        let (tx2, mut rx2, _) = SecureChannel::establish(level, 9);
        let _ = tx2;
        let records2: Vec<Vec<u8>> = {
            let (mut t, _, _) = SecureChannel::establish(level, 9);
            msgs.iter().map(|m| t.seal(m)).collect()
        };
        for (r, m) in records2.iter().zip(&msgs) {
            prop_assert_eq!(rx2.open(r).expect("in order"), m.clone());
        }
        // A swapped adjacent pair fails at the swap point.
        let i = swap_at % (records.len() - 1);
        for (j, r) in records.iter().enumerate() {
            let r = if j == i { &records[i + 1] } else if j == i + 1 { &records[i] } else { r };
            let res = rx.open(r);
            if j < i {
                prop_assert!(res.is_ok());
            } else if j == i {
                prop_assert!(res.is_err(), "swapped record must be rejected");
                break;
            }
        }
    }

    /// ADT probabilities stay in [0, 1] and adding defenses never
    /// increases risk, for random two-level trees.
    #[test]
    fn adt_defenses_are_monotone(
        leaf_probs in proptest::collection::vec(0.0f64..1.0, 1..6),
        or_gate in any::<bool>(),
        mitigation in 0.0f64..0.99,
    ) {
        let mut adt = Adt::new();
        let gate = if or_gate { Gate::Or } else { Gate::And };
        let children: Vec<usize> = (1..=leaf_probs.len()).collect();
        adt.inner("root", gate, children);
        let mut leaves = Vec::new();
        for (i, p) in leaf_probs.iter().enumerate() {
            leaves.push(adt.leaf(format!("l{i}"), *p));
        }
        let d = adt.defense("d", 1.0, mitigation);
        adt.attach(leaves[0], d).expect("valid");
        let base = adt.success_probability(0, &[]).expect("valid");
        let defended = adt.success_probability(0, &[d]).expect("valid");
        prop_assert!((0.0..=1.0).contains(&base));
        prop_assert!((0.0..=1.0).contains(&defended));
        prop_assert!(defended <= base + 1e-12);
    }

    /// Trust scores stay in [0, 1] under arbitrary observation streams,
    /// and all-good streams dominate all-bad ones.
    #[test]
    fn trust_is_bounded_and_ordered(
        obs in proptest::collection::vec(0u8..3, 1..60),
    ) {
        let n = myrtus_continuum::ids::NodeId::from_raw(0);
        let mut mixed = TrustModel::new(0.99);
        let mut good = TrustModel::new(0.99);
        let mut bad = TrustModel::new(0.99);
        for o in &obs {
            let o = match o {
                0 => Observation::TaskOk,
                1 => Observation::TaskFailed,
                _ => Observation::SecurityIncident,
            };
            mixed.observe(n, o);
            good.observe(n, Observation::TaskOk);
            bad.observe(n, Observation::SecurityIncident);
        }
        for m in [&mixed, &good, &bad] {
            let s = m.score(n);
            prop_assert!((0.0..=1.0).contains(&s));
        }
        prop_assert!(good.score(n) >= mixed.score(n));
        prop_assert!(mixed.score(n) >= bad.score(n));
    }

    /// Suite digests are deterministic and length-correct for all levels.
    #[test]
    fn digests_are_stable(
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        for level in SecurityLevel::ALL {
            let suite = level.suite();
            let a = suite.digest(&data);
            let b = suite.digest(&data);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), suite.hash.digest_len());
        }
    }
}
