//! Budget-tuning probe for the Raft model: run one budget vector and
//! print the state count and wall-clock time, without the runner's
//! starvation floor. Used to size `RaftModel::small()`.
//!
//! Usage: `cargo run --release -p mc --example raft_probe -- N E H P D`
//! where N = nodes, E = election budget, H = heartbeat budget,
//! P = proposal budget, D = drop budget.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 6 {
        eprintln!("usage: raft_probe <nodes> <elections> <heartbeats> <proposals> <drops>");
        std::process::exit(2);
    }
    let g = |i: usize| args[i].parse::<u32>().expect("budgets are small integers");
    let model = mc::raft::RaftModel::with_budgets(g(1) as usize, g(2), g(3), g(4), g(5));
    let start = std::time::Instant::now();
    let out = mc::explore(&model, mc::Strategy::Bfs, &mc::Limits::default());
    let verdict = match out {
        mc::Outcome::Pass(s) => {
            format!("PASS  {} states  {} transitions", s.distinct_states, s.transitions)
        }
        mc::Outcome::Violation { message, trace, .. } => {
            print!("{}", mc::render_trace(&trace));
            format!("FAIL  {message}")
        }
        mc::Outcome::LimitReached(s) => format!("LIMIT {} states", s.distinct_states),
    };
    println!("{verdict}  elapsed {:.2?}", start.elapsed());
}
