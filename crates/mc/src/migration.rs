//! Model-checks the live-migration protocol of the task VM
//! (`myrtus_continuum::engine::SimCore::migrate_task`): snapshot at the
//! source, checkpoint bytes in network transit, resume at the
//! destination — adversarially interleaved with the simulator's own
//! event processing and with node crashes, including crashes that land
//! *mid-transfer* (the checkpoint arrives at a dead node and dies with
//! the attempt).
//!
//! Same recipe as [`crate::retry`]: [`SimCore`] is not `Clone`, so a
//! state is the action trace that reaches it, replayed into a fresh
//! core; the fingerprint hashes an abstract view that two traces only
//! share when the cores are observably identical.
//!
//! Every submitted task carries a portable body (a real
//! [`myrtus_workload::scenarios::programs`] compute program), so each
//! migration exercises the full checkpoint → transfer → resume path
//! across an ISA boundary (node 0 is ARM-class, node 1 server-class —
//! the cost tables differ, the step ledger must not).
//!
//! Checked invariants:
//! - **Exactly one live instance**: a task is never running or queued
//!   on two nodes at once, in any interleaving — this is what the
//!   seeded `migration_double_resume` mutation breaks (the checkpoint
//!   arrival is duplicated, resuming the task twice).
//! - **Transit exclusivity**: while a checkpoint is in network
//!   transit, the task has *zero* live instances.
//! - **Step conservation**: the interpreter's step tally is monotone
//!   along every path — a resume never re-executes or skips work the
//!   source already retired.
//! - **Exact completion cost**: a completed bodied task has retired
//!   exactly the program's full step count, no matter how many times
//!   (or across which ISAs) it migrated.
//! - **Exactly one terminal event per task** (completion or loss).

use std::collections::HashMap;
use std::fmt;

use myrtus_continuum::engine::{Driver, SimCore, SimEvent, VmConfig};
use myrtus_continuum::ids::{NodeId, TaskId};
use myrtus_continuum::net::Protocol;
use myrtus_continuum::node::{NodeKind, NodeSpec};
use myrtus_continuum::task::{TaskBody, TaskInstance};
use myrtus_continuum::time::SimDuration;
use myrtus_obs::{Obs, ObsConfig};
use myrtus_vm::{CostTable, IsaClass};
use myrtus_workload::scenarios::programs::{program_for, Mix};

use crate::{fingerprint_of, Model};

/// Body seed shared by every submission: the compute mix is
/// straight-line, so the step count is seed-independent, but the
/// fingerprint still pins the exact program the engine interprets.
const BODY_SEED: u64 = 7;

/// Program size in megacycles on the ARM reference table: ~0.25 ms of
/// service on the model's 1000 MHz nodes — long enough that crashes
/// and migrations interleave with execution, short enough that a
/// replay interprets only a few hundred opcodes.
const PROGRAM_MC: f64 = 0.25;

/// One transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MigrationAction {
    /// Submit the next bodied task (rotating over up nodes).
    Submit,
    /// Let the simulator process its next queued event.
    Step,
    /// Live-migrate submitted task `t` to the opposite node.
    Migrate(usize),
    /// Crash a node (resident tasks are lost; in-flight checkpoints
    /// addressed to it die on arrival).
    Crash(usize),
    /// Bring a crashed node back up.
    Recover(usize),
}

impl fmt::Display for MigrationAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationAction::Submit => write!(f, "submit the next bodied task"),
            MigrationAction::Step => write!(f, "simulator processes one event"),
            MigrationAction::Migrate(t) => {
                write!(f, "live-migrate task {t} to the opposite node")
            }
            MigrationAction::Crash(i) => write!(f, "node {i} crashes"),
            MigrationAction::Recover(i) => write!(f, "node {i} comes back up"),
        }
    }
}

/// Where one submitted task currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TaskPhase {
    InFlight,
    Completed,
    Lost,
}

/// The bookkeeping driver: terminal-event accounting plus violation
/// detection (the migration protocol itself lives in the engine).
#[derive(Debug, Default)]
struct Harness {
    ids: Vec<TaskId>,
    phases: Vec<TaskPhase>,
    by_raw: HashMap<u64, usize>,
    violation: Option<String>,
}

impl Harness {
    fn mark_terminal(&mut self, raw: u64, phase: TaskPhase, what: &str) {
        let Some(&idx) = self.by_raw.get(&raw) else {
            self.violation = Some(format!("{what} for unknown task {raw}"));
            return;
        };
        if self.phases[idx] == TaskPhase::InFlight {
            self.phases[idx] = phase;
        } else if self.violation.is_none() {
            self.violation = Some(format!(
                "{what} for task {raw} which already reached terminal state {:?} — \
                 every task must have exactly one final state",
                self.phases[idx]
            ));
        }
    }
}

impl Driver for Harness {
    fn on_event(&mut self, _sim: &mut SimCore, event: SimEvent) {
        match event {
            SimEvent::TaskCompleted(outcome) => {
                self.mark_terminal(outcome.task.id.as_raw(), TaskPhase::Completed, "completion");
            }
            SimEvent::TasksLost { tasks, .. } => {
                for t in tasks {
                    self.mark_terminal(t.id.as_raw(), TaskPhase::Lost, "loss");
                }
            }
            SimEvent::TaskShed { task, .. } => {
                // No admission policy is installed: a shed is drift.
                self.violation = Some(format!("unexpected shed of task {}", task.id.as_raw()));
            }
            SimEvent::TaskAbandoned { task, .. } | SimEvent::TaskRecovered { task, .. } => {
                // No retry policy is installed: the recovery machinery
                // must stay dormant.
                self.violation = Some(format!(
                    "retry machinery fired for task {} without a policy",
                    task.id.as_raw()
                ));
            }
            SimEvent::TaskStarted { .. }
            | SimEvent::NodeRestored(_)
            | SimEvent::LinkChanged { .. }
            | SimEvent::MessageDelivered(_)
            | SimEvent::Timer { .. } => {}
        }
    }
}

/// Per-task abstract standing: everything enabledness and the
/// invariants need, and nothing node-private.
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
struct TaskView {
    phase: TaskPhase,
    /// Node hosting the (single) live instance, if any.
    resident: Option<u32>,
    in_transit: bool,
    /// Interpreter steps retired so far (`None` before first arrival,
    /// in transit, or after a loss dropped the image).
    steps: Option<u64>,
}

/// The abstract, hashable view of a replayed core.
#[derive(Debug, Clone, Hash)]
struct View {
    now_us: u64,
    next_event_in_us: Option<u64>,
    processed_events: u64,
    nodes: Vec<(bool, usize, usize)>,
    tasks: Vec<TaskView>,
    submits_left: u32,
    migrates_left: u32,
    crashes_left: Vec<u32>,
    recovers_left: Vec<u32>,
    crash_debt: Vec<u32>,
    violated: bool,
}

/// One explicit state: the reaching trace plus its replayed view.
#[derive(Debug, Clone)]
pub struct MigrationState {
    trace: Vec<MigrationAction>,
    view: View,
    check: Result<(), String>,
}

/// The live-migration model.
#[derive(Debug, Clone)]
pub struct MigrationModel {
    nodes: usize,
    submits: u32,
    migrates: u32,
    crashes_per_node: u32,
    recovers_per_node: u32,
    /// Full step cost of the shared program (ISA-independent).
    total_steps: u64,
}

impl MigrationModel {
    /// The instance used in CI: two nodes across an ISA boundary, two
    /// bodied submissions, two live migrations, one crash/recovery
    /// cycle per node.
    pub fn small() -> Self {
        Self::with_budgets(2, 2, 1, 1)
    }

    /// Custom budgets for tests and tuning.
    pub fn with_budgets(
        submits: u32,
        migrates: u32,
        crashes_per_node: u32,
        recovers_per_node: u32,
    ) -> Self {
        let program = program_for(Mix::Compute, BODY_SEED, PROGRAM_MC);
        // Steps are the portable work measure: the tally is identical
        // under every cost table, so any ISA works as the reference.
        let total_steps = program.full_cost(BODY_SEED, &CostTable::for_isa(IsaClass::Arm, 1.0)).0;
        MigrationModel {
            nodes: 2,
            submits,
            migrates,
            crashes_per_node,
            recovers_per_node,
            total_steps,
        }
    }

    fn fresh_core(&self) -> SimCore {
        let mut sim = SimCore::new();
        sim.set_obs(Obs::new(ObsConfig::on().with_scrape_interval_us(0)));
        let kinds = [NodeKind::EdgeMulticore, NodeKind::CloudServer];
        let ids: Vec<NodeId> = (0..self.nodes)
            .map(|i| {
                sim.add_node(
                    NodeSpec::builder(format!("mc-n{i}"), kinds[i % kinds.len()]).cores(1).build(),
                )
            })
            .collect();
        sim.network_mut().add_duplex(ids[0], ids[1], SimDuration::from_millis(2), 100.0);
        sim.set_vm(VmConfig::new(vec![program_for(Mix::Compute, BODY_SEED, PROGRAM_MC)]));
        sim
    }

    /// Replays a trace into a fresh core, returning the reached state.
    fn replay(&self, trace: Vec<MigrationAction>) -> MigrationState {
        let mut sim = self.fresh_core();
        let mut harness = Harness::default();
        let mut submits_left = self.submits;
        let mut migrates_left = self.migrates;
        let mut crashes_left = vec![self.crashes_per_node; self.nodes];
        let mut recovers_left = vec![self.recovers_per_node; self.nodes];
        let mut crash_debt = vec![0u32; self.nodes];
        // High-water mark of each task's step tally: progress must
        // never run backwards, not even across a checkpoint/resume.
        let mut steps_seen: Vec<u64> = Vec::new();

        for action in &trace {
            match action {
                MigrationAction::Submit => {
                    submits_left -= 1;
                    let ordinal = harness.ids.len();
                    let target = (0..self.nodes)
                        .map(|k| NodeId::from_raw(((ordinal + k) % self.nodes) as u32))
                        .find(|&n| sim.node(n).is_some_and(|st| st.is_up()));
                    let Some(node) = target else { continue };
                    let id = sim.fresh_task_id();
                    harness.by_raw.insert(id.as_raw(), ordinal);
                    harness.ids.push(id);
                    harness.phases.push(TaskPhase::InFlight);
                    steps_seen.push(0);
                    let task = TaskInstance::new(id, 1.0)
                        .with_body(TaskBody::new(0, BODY_SEED))
                        .with_io_bytes(4_096, 0);
                    if let Err(e) = sim.submit_local(node, task) {
                        harness.violation = Some(format!("submission to an up node failed: {e:?}"));
                    }
                }
                MigrationAction::Step => {
                    sim.step_event(&mut harness);
                }
                MigrationAction::Migrate(t) => {
                    let Some(&id) = harness.ids.get(*t) else { continue };
                    let Some(from) = self.resident_node(&sim, id) else { continue };
                    migrates_left -= 1;
                    let to = NodeId::from_raw(1 - from.as_raw());
                    // `None` is legal here: the destination may have
                    // crashed since the action was enumerated.
                    let _ = sim.migrate_task(from, to, id, Protocol::Mqtt, true);
                }
                MigrationAction::Crash(i) => {
                    crashes_left[*i] -= 1;
                    crash_debt[*i] += 1;
                    sim.schedule_node_down(NodeId::from_raw(*i as u32), sim.now());
                }
                MigrationAction::Recover(i) => {
                    recovers_left[*i] -= 1;
                    crash_debt[*i] -= 1;
                    sim.schedule_node_up(NodeId::from_raw(*i as u32), sim.now());
                }
            }
            // Step conservation, checked after *every* action so a
            // regression is pinned to the transition that caused it.
            for (idx, &id) in harness.ids.iter().enumerate() {
                if let Some(s) = sim.vm_steps_of(id) {
                    if s < steps_seen[idx] && harness.violation.is_none() {
                        harness.violation = Some(format!(
                            "step conservation violated: task {idx} ran backwards from \
                             {} to {s} interpreter steps after \"{action}\"",
                            steps_seen[idx]
                        ));
                    }
                    steps_seen[idx] = steps_seen[idx].max(s);
                }
            }
        }

        let tasks: Vec<TaskView> = harness
            .ids
            .iter()
            .zip(&harness.phases)
            .map(|(&id, &phase)| TaskView {
                phase,
                resident: self.resident_node(&sim, id).map(NodeId::as_raw),
                in_transit: sim.vm_in_transit(id),
                steps: sim.vm_steps_of(id),
            })
            .collect();
        let view = View {
            now_us: sim.now().as_micros(),
            next_event_in_us: sim.next_event_at().map(|t| t.as_micros() - sim.now().as_micros()),
            processed_events: sim.processed_events(),
            nodes: sim
                .nodes()
                .iter()
                .map(|n| (n.is_up(), n.running().len(), n.queue_len()))
                .collect(),
            tasks,
            submits_left,
            migrates_left,
            crashes_left,
            recovers_left,
            crash_debt,
            violated: harness.violation.is_some(),
        };
        let check = self.verdict(&sim, &harness, &view);
        MigrationState { trace, view, check }
    }

    /// Node hosting `id`'s live instance, if exactly one node does.
    fn resident_node(&self, sim: &SimCore, id: TaskId) -> Option<NodeId> {
        sim.nodes()
            .iter()
            .find(|st| {
                st.running().iter().any(|r| r.task.id == id) || st.queued().any(|t| t.id == id)
            })
            .map(|st| st.id())
    }

    /// The invariants, evaluated once at replay time.
    fn verdict(&self, sim: &SimCore, harness: &Harness, view: &View) -> Result<(), String> {
        if let Some(v) = &harness.violation {
            return Err(v.clone());
        }
        for (idx, (&id, tv)) in harness.ids.iter().zip(&view.tasks).enumerate() {
            let live = sim.live_instances(id);
            if live > 1 {
                return Err(format!(
                    "exactly-one-live-instance discipline violated: task {idx} has {live} \
                     concurrent instances"
                ));
            }
            if tv.in_transit && live != 0 {
                return Err(format!(
                    "transit exclusivity violated: task {idx}'s checkpoint is on the wire \
                     but {live} instance(s) are live"
                ));
            }
            if tv.phase == TaskPhase::Completed && tv.steps != Some(self.total_steps) {
                return Err(format!(
                    "completion cost violated: task {idx} completed with {:?} interpreter \
                     steps, the program costs exactly {}",
                    tv.steps, self.total_steps
                ));
            }
        }
        Ok(())
    }
}

impl Model for MigrationModel {
    type State = MigrationState;
    type Action = MigrationAction;

    fn name(&self) -> &'static str {
        "migration"
    }

    fn initial_states(&self) -> Vec<MigrationState> {
        vec![self.replay(Vec::new())]
    }

    fn actions(&self, s: &MigrationState, out: &mut Vec<MigrationAction>) {
        let v = &s.view;
        if v.submits_left > 0 && v.nodes.iter().any(|&(up, _, _)| up) {
            out.push(MigrationAction::Submit);
        }
        if v.next_event_in_us.is_some() {
            out.push(MigrationAction::Step);
        }
        if v.migrates_left > 0 {
            for (t, tv) in v.tasks.iter().enumerate() {
                if tv.phase == TaskPhase::InFlight && tv.resident.is_some() {
                    out.push(MigrationAction::Migrate(t));
                }
            }
        }
        for i in 0..self.nodes {
            if v.crashes_left[i] > 0 && v.crash_debt[i] == 0 {
                out.push(MigrationAction::Crash(i));
            }
            if v.recovers_left[i] > 0 && v.crash_debt[i] > 0 {
                out.push(MigrationAction::Recover(i));
            }
        }
    }

    fn apply(&self, s: &MigrationState, a: &MigrationAction) -> Option<MigrationState> {
        let mut trace = s.trace.clone();
        trace.push(a.clone());
        Some(self.replay(trace))
    }

    fn fingerprint(&self, s: &MigrationState) -> u64 {
        fingerprint_of(&s.view)
    }

    fn check(&self, s: &MigrationState) -> Result<(), String> {
        s.check.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn migration_without_faults_reaches_fixpoint() {
        let model = MigrationModel::with_budgets(1, 1, 0, 0);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 10),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn crash_mid_transfer_explores_cleanly() {
        let model = MigrationModel::with_budgets(1, 1, 1, 1);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 100),
            other => panic!("expected pass, got {other:?}"),
        }
    }
}
