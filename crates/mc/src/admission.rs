//! Model-checks the shipped admission controller
//! (`myrtus_continuum::admission`).
//!
//! The model runs *two* copies of the real [`AdmissionPolicy::decide`]
//! in lockstep over one arrival/clock/completion history: a low-rate
//! policy and a high-rate policy that are otherwise identical. Every
//! state carries both token buckets ([`AdmissionState`] is plain data),
//! so the checker explores every interleaving of arrivals (of both
//! priority classes), window-aligned and mid-window clock advances, and
//! task completions within small budgets.
//!
//! Checked invariants:
//! - **Protected class is never shed**: a task with
//!   `priority >= protect_priority` admits under both policies, at any
//!   queue depth and any bucket fill (this is exactly what the seeded
//!   `admission_strict_protect` mutation breaks at the
//!   `priority == protect_priority` boundary).
//! - **Monotonicity in rate**: on identical inputs, anything the
//!   low-rate policy admits the high-rate policy admits too — raising a
//!   tenant's rate limit can never make a request worse off.
//! - **Bucket sanity**: no retained window holds more consumed tokens
//!   than the policy's rate.

use std::fmt;

use myrtus_continuum::admission::{AdmissionDecision, AdmissionState};
use myrtus_continuum::ids::TaskId;
use myrtus_continuum::time::{SimDuration, SimTime};
use myrtus_continuum::{AdmissionPolicy, TaskInstance};

use crate::{fingerprint_of, Model};

/// One explicit state: the simulated clock, both real token buckets,
/// and the shared abstract node backlog both policies are consulted
/// about.
#[derive(Debug, Clone)]
pub struct AdmissionSt {
    now_us: u64,
    lo: AdmissionState,
    hi: AdmissionState,
    /// Abstract run-queue depth of the node both policies guard; grows
    /// when the (authoritative) high-rate policy admits, shrinks on
    /// [`AdmissionAction::Complete`].
    depth: u32,
    next_task: u64,
    arrivals_left: u32,
    advances_left: u32,
    /// Typed shed tallies `(lo, hi)`, part of the observable state.
    sheds: (u32, u32),
    violation: Option<String>,
}

/// One transition.
#[derive(Debug, Clone)]
pub enum AdmissionAction {
    /// A task of the given priority is submitted to both policies.
    Arrive {
        /// Task priority (0 = best-effort, 1 = protected boundary).
        priority: u8,
    },
    /// The clock advances half a token window (exercises intra-window
    /// boundaries).
    AdvanceHalf,
    /// The clock advances one full token window (exercises rollover).
    AdvanceFull,
    /// A previously admitted task finishes, freeing queue depth.
    Complete,
}

impl fmt::Display for AdmissionAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionAction::Arrive { priority } => {
                write!(f, "task arrives with priority {priority}")
            }
            AdmissionAction::AdvanceHalf => write!(f, "clock advances half a window"),
            AdmissionAction::AdvanceFull => write!(f, "clock advances one full window"),
            AdmissionAction::Complete => write!(f, "an admitted task completes"),
        }
    }
}

/// The admission model: paired rate-limited policies over one history.
#[derive(Debug, Clone)]
pub struct AdmissionModel {
    lo: AdmissionPolicy,
    hi: AdmissionPolicy,
    arrivals: u32,
    advances: u32,
}

impl AdmissionModel {
    /// The instance used in CI: rate 1 vs rate 2 per 10 ms window, a
    /// 2-deep queue bound, and budgets sized so the full interleaving
    /// graph still explores in well under a minute.
    pub fn small() -> Self {
        Self::with_budgets(10, 10)
    }

    /// Custom arrival/advance budgets for tests and tuning.
    pub fn with_budgets(arrivals: u32, advances: u32) -> Self {
        let base = AdmissionPolicy {
            rate_per_window: 1,
            window: SimDuration::from_millis(10),
            max_delay: SimDuration::from_millis(20),
            max_queue_depth: 2,
            slo_check: false,
            protect_priority: 1,
            jitter_frac: 0.0,
            seed: 7,
        };
        AdmissionModel {
            lo: base,
            hi: AdmissionPolicy { rate_per_window: 2, ..base },
            arrivals,
            advances,
        }
    }

    fn half_window_us(&self) -> u64 {
        (self.lo.window.as_micros() / 2).max(1)
    }
}

impl Model for AdmissionModel {
    type State = AdmissionSt;
    type Action = AdmissionAction;

    fn name(&self) -> &'static str {
        "admission"
    }

    fn initial_states(&self) -> Vec<AdmissionSt> {
        vec![AdmissionSt {
            now_us: 0,
            lo: AdmissionState::default(),
            hi: AdmissionState::default(),
            depth: 0,
            next_task: 0,
            arrivals_left: self.arrivals,
            advances_left: self.advances,
            sheds: (0, 0),
            violation: None,
        }]
    }

    fn actions(&self, s: &AdmissionSt, out: &mut Vec<AdmissionAction>) {
        if s.arrivals_left > 0 {
            out.push(AdmissionAction::Arrive { priority: 0 });
            out.push(AdmissionAction::Arrive { priority: 1 });
        }
        if s.advances_left > 0 {
            out.push(AdmissionAction::AdvanceHalf);
            out.push(AdmissionAction::AdvanceFull);
        }
        if s.depth > 0 {
            out.push(AdmissionAction::Complete);
        }
    }

    fn apply(&self, s: &AdmissionSt, a: &AdmissionAction) -> Option<AdmissionSt> {
        let mut next = s.clone();
        match a {
            AdmissionAction::Arrive { priority } => {
                next.arrivals_left -= 1;
                let task = TaskInstance::new(TaskId::from_raw(next.next_task), 1.0)
                    .with_priority(*priority);
                next.next_task += 1;
                let now = SimTime::from_micros(next.now_us);
                let d_lo = self.lo.decide(now, &task, next.depth, None, &mut next.lo);
                let d_hi = self.hi.decide(now, &task, next.depth, None, &mut next.hi);
                if *priority >= self.lo.protect_priority {
                    for (which, d) in [("low-rate", d_lo), ("high-rate", d_hi)] {
                        if let AdmissionDecision::Shed { reason } = d {
                            next.violation = Some(format!(
                                "protected task (priority {priority} >= protect_priority {}) \
                                 shed by the {which} policy with reason {reason:?} at depth {}",
                                self.lo.protect_priority, next.depth
                            ));
                        }
                    }
                }
                if let (AdmissionDecision::Admit { .. }, AdmissionDecision::Shed { reason }) =
                    (d_lo, d_hi)
                {
                    next.violation = Some(format!(
                        "rate monotonicity violated: rate {} admitted the task but \
                         rate {} shed it ({reason:?})",
                        self.lo.rate_per_window, self.hi.rate_per_window
                    ));
                }
                if matches!(d_lo, AdmissionDecision::Shed { .. }) {
                    next.sheds.0 += 1;
                }
                match d_hi {
                    AdmissionDecision::Admit { .. } => next.depth += 1,
                    AdmissionDecision::Shed { .. } => next.sheds.1 += 1,
                }
            }
            AdmissionAction::AdvanceHalf => {
                next.advances_left -= 1;
                next.now_us += self.half_window_us();
            }
            AdmissionAction::AdvanceFull => {
                next.advances_left -= 1;
                next.now_us += 2 * self.half_window_us();
            }
            AdmissionAction::Complete => {
                next.depth -= 1;
            }
        }
        Some(next)
    }

    fn fingerprint(&self, s: &AdmissionSt) -> u64 {
        fingerprint_of(&(
            s.now_us,
            s.lo.used_windows(),
            s.hi.used_windows(),
            s.depth,
            s.next_task,
            s.arrivals_left,
            s.advances_left,
            s.sheds,
            s.violation.is_some(),
        ))
    }

    fn check(&self, s: &AdmissionSt) -> Result<(), String> {
        if let Some(v) = &s.violation {
            return Err(v.clone());
        }
        for (policy, st, which) in [(&self.lo, &s.lo, "low-rate"), (&self.hi, &s.hi, "high-rate")] {
            for (w, used) in st.used_windows() {
                if used > policy.rate_per_window {
                    return Err(format!(
                        "bucket overflow: {which} window {w} holds {used} consumed tokens \
                         but the rate is {}",
                        policy.rate_per_window
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn small_instance_reaches_fixpoint() {
        let model = AdmissionModel::with_budgets(3, 3);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 10),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn protected_arrivals_always_admit_even_at_full_queue() {
        let model = AdmissionModel::small();
        let mut s = model.initial_states().remove(0);
        // Fill the queue past the bound with protected arrivals.
        for _ in 0..4 {
            s = model.apply(&s, &AdmissionAction::Arrive { priority: 1 }).unwrap();
        }
        assert!(model.check(&s).is_ok());
        assert_eq!(s.depth, 4, "every protected arrival admitted");
    }
}
