//! # mc
//!
//! A deterministic explicit-state model checker for the protocols the
//! workspace actually ships: Raft leader election and log replication
//! (`myrtus-kb`), the retry/cancel-epoch and k=2 replication machinery
//! of the simulation core, admission control (`myrtus-continuum`),
//! elastic scale-down (`myrtus-mirto`), the federation tier's
//! gossip registry and sealed-bid burst auction
//! (`myrtus-continuum::federation`), and the task VM's live-migration
//! protocol (checkpoint → transfer → resume).
//!
//! The checker is deliberately small: a [`Model`] is anything with
//! initial states, enabled actions, a successor function, a canonical
//! (symmetry-reduced) fingerprint, and an invariant. [`explore`] walks
//! the induced state graph breadth- or depth-first behind a hashed
//! seen-set and, on violation, reconstructs the action sequence that
//! reached the bad state as a readable counterexample trace.
//!
//! The six bundled models ([`raft`], [`retry`], [`admission`],
//! [`scaledown`], [`federation`], [`migration`]) are *adapters over
//! the production implementations*,
//! not re-specifications: every transition calls the same public
//! methods the orchestration stack calls, and every invariant reads
//! state back through the same accessors.
//!
//! ## Quick start
//!
//! ```
//! use mc::{explore, Limits, Outcome, Strategy};
//!
//! let model = mc::admission::AdmissionModel::small();
//! match explore(&model, Strategy::Bfs, &Limits::default()) {
//!     Outcome::Pass(stats) => assert!(stats.distinct_states > 0),
//!     Outcome::Violation { message, trace, .. } => {
//!         panic!("{message}\n{}", mc::render_trace(&trace))
//!     }
//!     Outcome::LimitReached(_) => panic!("bounds too small"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashSet, VecDeque};
use std::fmt::Display;
use std::hash::{Hash, Hasher};

pub mod admission;
pub mod federation;
pub mod migration;
pub mod raft;
pub mod retry;
pub mod scaledown;

/// A checkable transition system.
///
/// States must be cheap to clone (the frontier holds them) and actions
/// must render readably (`Display`) — they *are* the counterexample.
pub trait Model {
    /// One explicit state.
    type State: Clone;
    /// One enabled transition out of a state.
    type Action: Clone + Display;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// The initial state(s).
    fn initial_states(&self) -> Vec<Self::State>;

    /// Appends every action enabled in `state` to `out` (cleared by
    /// the caller). Enabledness must be deterministic.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// The successor of `state` under `action`, or `None` when the
    /// action turns out to be a no-op/disabled at application time.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// A canonical 64-bit fingerprint of `state`. Two states with the
    /// same fingerprint are treated as identical by the seen-set, so
    /// this is where symmetry reduction happens: fingerprint the
    /// *orbit representative* (e.g. minimum over node-id permutations,
    /// see [`canonical_fingerprint`]) rather than the raw state.
    fn fingerprint(&self, state: &Self::State) -> u64;

    /// The invariant: `Err(reason)` marks `state` as a violation.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// Search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: shortest counterexamples, larger frontier.
    Bfs,
    /// Depth-first: smaller frontier, longer counterexamples.
    Dfs,
}

/// Exploration bounds. Defaults are effectively unbounded — the
/// bundled models bound themselves through action budgets instead, so
/// hitting a limit usually means a model lost its finiteness argument.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Stop after this many distinct states.
    pub max_states: u64,
    /// Do not expand states deeper than this.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_states: 50_000_000, max_depth: 10_000 }
    }
}

/// Exploration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states (post symmetry reduction) entered into the
    /// seen-set.
    pub distinct_states: u64,
    /// Transitions taken (successor computations that produced a
    /// state, novel or not).
    pub transitions: u64,
    /// Depth of the deepest state discovered.
    pub max_depth_seen: u32,
    /// Peak frontier occupancy.
    pub frontier_peak: u64,
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub enum Outcome<A> {
    /// Every reachable state (within limits that were never hit)
    /// satisfies the invariant: a fixpoint.
    Pass(Stats),
    /// A reachable state violates the invariant.
    Violation {
        /// The invariant's reason.
        message: String,
        /// Actions from an initial state to the violating state.
        trace: Vec<A>,
        /// Counters at the moment of discovery.
        stats: Stats,
    },
    /// A bound in [`Limits`] was hit before the frontier drained; the
    /// invariant held on everything visited but the run is inconclusive.
    LimitReached(Stats),
}

/// Per-discovered-state bookkeeping for trace reconstruction.
struct NodeMeta<A> {
    parent: usize,
    action: Option<A>,
    depth: u32,
}

const NO_PARENT: usize = usize::MAX;

fn reconstruct<A: Clone>(meta: &[NodeMeta<A>], mut idx: usize) -> Vec<A> {
    let mut trace = Vec::new();
    while idx != NO_PARENT {
        let m = &meta[idx];
        if let Some(a) = &m.action {
            trace.push(a.clone());
        }
        idx = m.parent;
    }
    trace.reverse();
    trace
}

/// Exhaustively explores `model`'s state graph.
///
/// Deterministic: same model, same strategy, same limits — same
/// outcome, same counterexample.
pub fn explore<M: Model>(model: &M, strategy: Strategy, limits: &Limits) -> Outcome<M::Action> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut meta: Vec<NodeMeta<M::Action>> = Vec::new();
    let mut frontier: VecDeque<(usize, M::State)> = VecDeque::new();
    let mut stats = Stats::default();

    for s in model.initial_states() {
        let fp = model.fingerprint(&s);
        if !seen.insert(fp) {
            continue;
        }
        stats.distinct_states += 1;
        let idx = meta.len();
        meta.push(NodeMeta { parent: NO_PARENT, action: None, depth: 0 });
        if let Err(message) = model.check(&s) {
            return Outcome::Violation { message, trace: reconstruct(&meta, idx), stats };
        }
        frontier.push_back((idx, s));
    }
    stats.frontier_peak = frontier.len() as u64;

    let mut acts: Vec<M::Action> = Vec::new();
    loop {
        let (idx, state) = match strategy {
            Strategy::Bfs => match frontier.pop_front() {
                Some(x) => x,
                None => break,
            },
            Strategy::Dfs => match frontier.pop_back() {
                Some(x) => x,
                None => break,
            },
        };
        let depth = meta[idx].depth;
        if depth >= limits.max_depth {
            return Outcome::LimitReached(stats);
        }
        acts.clear();
        model.actions(&state, &mut acts);
        for a in &acts {
            let Some(next) = model.apply(&state, a) else { continue };
            stats.transitions += 1;
            let fp = model.fingerprint(&next);
            if !seen.insert(fp) {
                continue;
            }
            stats.distinct_states += 1;
            stats.max_depth_seen = stats.max_depth_seen.max(depth + 1);
            let nidx = meta.len();
            meta.push(NodeMeta { parent: idx, action: Some(a.clone()), depth: depth + 1 });
            if let Err(message) = model.check(&next) {
                return Outcome::Violation { message, trace: reconstruct(&meta, nidx), stats };
            }
            if stats.distinct_states >= limits.max_states {
                return Outcome::LimitReached(stats);
            }
            frontier.push_back((nidx, next));
            stats.frontier_peak = stats.frontier_peak.max(frontier.len() as u64);
        }
    }
    Outcome::Pass(stats)
}

/// Renders a counterexample as a numbered, one-action-per-line script.
pub fn render_trace<A: Display>(trace: &[A]) -> String {
    let mut out = String::new();
    if trace.is_empty() {
        out.push_str("  (an initial state violates the invariant)\n");
        return out;
    }
    for (i, a) in trace.iter().enumerate() {
        out.push_str(&format!("  {:>3}. {a}\n", i + 1));
    }
    out
}

// ---------------------------------------------------------------------------
// Fingerprint hashing
// ---------------------------------------------------------------------------

/// FNV-1a with a splitmix64 finalizer: a fixed-key, platform-stable
/// 64-bit hasher. Explicit-state checkers conventionally accept the
/// (astronomically small at these state counts) risk of fingerprint
/// collisions silently merging two distinct states.
#[derive(Debug, Clone)]
pub struct FpHasher(u64);

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FpHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        // splitmix64 finalization scatters FNV's weak low bits.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Fingerprints any `Hash` value with the checker's stable hasher.
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FpHasher::default();
    value.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Symmetry reduction
// ---------------------------------------------------------------------------

/// All permutations of `0..n` in lexicographic order (Heap's algorithm
/// would be cheaper but order-stability matters for determinism).
///
/// # Panics
///
/// Panics for `n > 6` — factorial growth makes larger orbits a model
/// design error, not something to silently pay for.
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 6, "symmetry orbits above 6! are a model design error");
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            rec(items, k + 1, out);
            items.swap(k, i);
        }
        // Restore lexicographic-ish determinism by sorting the tail is
        // unnecessary: the swap/unswap discipline already restores
        // order, and the emitted sequence is deterministic.
    }
    rec(&mut items, 0, &mut out);
    out
}

/// The canonical fingerprint of a state under a symmetry group acting
/// by permutations of `0..n` (typically node identities): the minimum
/// of the state's hash over every permutation. `hash_under(perm)` must
/// hash the state with every symmetric index `i` renamed to `perm[i]`.
pub fn canonical_fingerprint<F: FnMut(&[usize]) -> u64>(n: usize, mut hash_under: F) -> u64 {
    permutations(n).iter().map(|p| hash_under(p)).min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that may step +1 or +2 up to 20, with a planted
    /// violation at exactly 13 reached only via a +2 step.
    struct Toy;

    #[derive(Clone)]
    struct ToyState(u32, bool);

    #[derive(Debug, Clone)]
    enum ToyAction {
        One,
        Two,
    }

    impl Display for ToyAction {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                ToyAction::One => write!(f, "+1"),
                ToyAction::Two => write!(f, "+2"),
            }
        }
    }

    impl Model for Toy {
        type State = ToyState;
        type Action = ToyAction;

        fn name(&self) -> &'static str {
            "toy"
        }

        fn initial_states(&self) -> Vec<ToyState> {
            vec![ToyState(0, false)]
        }

        fn actions(&self, s: &ToyState, out: &mut Vec<ToyAction>) {
            if s.0 < 20 {
                out.push(ToyAction::One);
                out.push(ToyAction::Two);
            }
        }

        fn apply(&self, s: &ToyState, a: &ToyAction) -> Option<ToyState> {
            let step = match a {
                ToyAction::One => 1,
                ToyAction::Two => 2,
            };
            Some(ToyState(s.0 + step, matches!(a, ToyAction::Two)))
        }

        fn fingerprint(&self, s: &ToyState) -> u64 {
            fingerprint_of(&(s.0, s.1))
        }

        fn check(&self, s: &ToyState) -> Result<(), String> {
            if s.0 == 13 && s.1 {
                Err("reached 13 via +2".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn bfs_finds_shortest_counterexample() {
        match explore(&Toy, Strategy::Bfs, &Limits::default()) {
            Outcome::Violation { trace, .. } => {
                // Shortest: six +2 steps then... 13 is odd, so 5×+2 + 1×+1
                // then +2 = 7 steps minimum ending in +2.
                assert_eq!(trace.len(), 7, "BFS must find a shortest trace");
                assert!(matches!(trace.last(), Some(ToyAction::Two)));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn dfs_finds_the_same_violation() {
        assert!(matches!(
            explore(&Toy, Strategy::Dfs, &Limits::default()),
            Outcome::Violation { .. }
        ));
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = format!("{:?}", explore(&Toy, Strategy::Bfs, &Limits::default()));
        let b = format!("{:?}", explore(&Toy, Strategy::Bfs, &Limits::default()));
        assert_eq!(a, b);
    }

    #[test]
    fn state_limit_reports_inconclusive() {
        let limits = Limits { max_states: 5, ..Limits::default() };
        assert!(matches!(explore(&Toy, Strategy::Bfs, &limits), Outcome::LimitReached(_)));
    }

    #[test]
    fn permutations_are_exhaustive_and_deterministic() {
        let p3 = permutations(3);
        assert_eq!(p3.len(), 6);
        let again = permutations(3);
        assert_eq!(p3, again);
        let mut sorted = p3.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "no duplicates");
    }

    #[test]
    fn canonical_fingerprint_collapses_orbits() {
        // Two "states" that are node-relabelings of each other: an
        // up-vector [true,false] vs [false,true].
        let ups_a = [true, false];
        let ups_b = [false, true];
        let canon = |ups: [bool; 2]| {
            canonical_fingerprint(2, |perm| {
                let mut v = [false; 2];
                for (i, &u) in ups.iter().enumerate() {
                    v[perm[i]] = u;
                }
                fingerprint_of(&v)
            })
        };
        assert_eq!(canon(ups_a), canon(ups_b));
    }
}
