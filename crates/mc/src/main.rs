//! Runs the six protocol models to fixpoint and reports state-space
//! statistics. Exits non-zero on an invariant violation (printing the
//! counterexample trace) or when a model fails to explore at least
//! [`MIN_STATES`] distinct states — a shrinking state space usually
//! means an adapter quietly stopped driving the real implementation.
//!
//! Usage: `cargo run -p mc [--model raft|retry|admission|scaledown|federation|migration]`.

use std::time::Instant;

use mc::{explore, Limits, Model, Outcome, Strategy};

/// Floor on distinct states per model: the CI tripwire that the models
/// still explore a non-trivial graph.
const MIN_STATES: u64 = 10_000;

/// Runs one model and renders its outcome; returns `(ok, states)`.
fn run_model<M: Model>(model: &M) -> (bool, u64) {
    let start = Instant::now();
    let outcome = explore(model, Strategy::Bfs, &Limits::default());
    let elapsed = start.elapsed();
    match outcome {
        Outcome::Pass(stats) => {
            println!(
                "{:<10} PASS   {:>9} states  {:>9} transitions  depth {:<4} frontier peak \
                 {:>8}  {:.2?}",
                model.name(),
                stats.distinct_states,
                stats.transitions,
                stats.max_depth_seen,
                stats.frontier_peak,
                elapsed
            );
            (true, stats.distinct_states)
        }
        Outcome::Violation { message, trace, stats } => {
            println!(
                "{:<10} FAIL after {} states ({:.2?}): {message}",
                model.name(),
                stats.distinct_states,
                elapsed
            );
            println!("counterexample ({} actions):", trace.len());
            print!("{}", mc::render_trace(&trace));
            (false, stats.distinct_states)
        }
        Outcome::LimitReached(stats) => {
            println!(
                "{:<10} INCONCLUSIVE: exploration limit hit after {} states ({:.2?}) — \
                 the model lost its finiteness argument",
                model.name(),
                stats.distinct_states,
                elapsed
            );
            (false, stats.distinct_states)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = match args.iter().position(|a| a == "--model") {
        Some(i) => match args.get(i + 1) {
            Some(name) => Some(name.clone()),
            None => {
                eprintln!(
                    "--model requires a name: raft, retry, admission, scaledown, federation, \
                     migration"
                );
                std::process::exit(2);
            }
        },
        None => None,
    };
    let wants = |name: &str| filter.as_deref().is_none_or(|f| f == name);

    let mut failed = false;
    let mut starved = Vec::new();
    let mut ran = 0u32;
    let mut record = |name: &'static str, (ok, states): (bool, u64)| {
        ran += 1;
        failed |= !ok;
        if ok && states < MIN_STATES {
            starved.push((name, states));
        }
    };

    if wants("raft") {
        record("raft", run_model(&mc::raft::RaftModel::small()));
    }
    if wants("retry") {
        record("retry", run_model(&mc::retry::RetryModel::small()));
    }
    if wants("admission") {
        record("admission", run_model(&mc::admission::AdmissionModel::small()));
    }
    if wants("scaledown") {
        record("scaledown", run_model(&mc::scaledown::ScaleDownModel::small()));
    }
    if wants("federation") {
        record("federation", run_model(&mc::federation::FederationModel::small()));
    }
    if wants("migration") {
        record("migration", run_model(&mc::migration::MigrationModel::small()));
    }

    if ran == 0 {
        eprintln!(
            "unknown model {filter:?}: expected raft, retry, admission, scaledown, federation, \
             or migration"
        );
        std::process::exit(2);
    }
    for (name, states) in &starved {
        println!(
            "{name:<10} explored only {states} distinct states (< {MIN_STATES}) — \
             the instance no longer exercises the protocol"
        );
    }
    if failed || !starved.is_empty() {
        std::process::exit(1);
    }
}
