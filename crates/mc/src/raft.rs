//! Model-checks the shipped Raft implementation (`myrtus_kb::raft`).
//!
//! The model drives real [`RaftNode`] replicas — the same state machine
//! `RaftCluster` and the knowledge base run — through every
//! interleaving of election timeouts, heartbeats, proposals, message
//! deliveries (in any order), and message drops, within small action
//! budgets that keep the graph finite.
//!
//! Time is abstracted away soundly: the config pins
//! `election_min == election_max`, so the randomized jitter span is
//! zero and the RNG is never drawn from, and each timeout/heartbeat
//! action ticks its node exactly at the node's own deadline. Deadline
//! *values* then carry no information (any non-leader may time out
//! next, which is exactly the asynchronous-network assumption) and are
//! excluded from fingerprints.
//!
//! Checked invariants, straight from the Raft paper:
//! - **Election safety**: at most one leader is ever elected per term
//!   (tracked with a history variable across the whole run, not just
//!   per state).
//! - **Log matching** on committed prefixes: any two replicas agree on
//!   the term of every index both have committed.
//! - **Leader completeness**: a current leader's log contains every
//!   entry any replica has committed.
//!
//! Symmetry: replicas are interchangeable (their RNGs differ by seed
//! but are never used), so fingerprints are canonicalized as the
//! minimum over all node-id permutations.

use std::fmt;

use myrtus_continuum::time::{SimDuration, SimTime};
use myrtus_kb::raft::{RaftMsg, RaftNode, Role};
use myrtus_kb::{KvCommand, RaftConfig};

use crate::{canonical_fingerprint, fingerprint_of, FpHasher, Model};
use std::hash::{Hash, Hasher};

/// One in-flight message. The network is a multiset: any pending
/// message may be delivered (or dropped) next, modelling arbitrary
/// reordering and loss.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender replica id.
    pub from: usize,
    /// Destination replica id.
    pub to: usize,
    /// The wire message.
    pub msg: RaftMsg,
}

/// One explicit state: real replicas plus the network and history.
#[derive(Debug, Clone)]
pub struct RaftState {
    /// The replicas, exactly as production runs them.
    pub nodes: Vec<RaftNode>,
    /// Undelivered messages.
    pub net: Vec<Envelope>,
    /// History variable: every `(term, node)` leadership ever observed.
    pub leaders_seen: Vec<(u64, usize)>,
    elections_left: u32,
    heartbeats_left: u32,
    proposals_left: u32,
    drops_left: u32,
}

/// One transition.
#[derive(Debug, Clone)]
pub enum RaftAction {
    /// Replica `0`'s election timer fires (it starts an election).
    Timeout(usize),
    /// Leader replica sends a round of heartbeats.
    Heartbeat(usize),
    /// Leader replica appends a client command to its log.
    Propose(usize),
    /// Deliver the pending message at network slot `.0` (summary in `.1`).
    Deliver(usize, String),
    /// Drop the pending message at network slot `.0` (summary in `.1`).
    Drop(usize, String),
}

impl fmt::Display for RaftAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaftAction::Timeout(i) => write!(f, "election timeout fires on node {i}"),
            RaftAction::Heartbeat(i) => write!(f, "leader {i} sends heartbeats"),
            RaftAction::Propose(i) => write!(f, "client proposes a command at leader {i}"),
            RaftAction::Deliver(_, d) => write!(f, "deliver {d}"),
            RaftAction::Drop(_, d) => write!(f, "drop {d}"),
        }
    }
}

fn summarize(env: &Envelope) -> String {
    let kind = match &env.msg {
        RaftMsg::RequestVote { term, .. } => format!("RequestVote(term {term})"),
        RaftMsg::VoteReply { term, granted } => {
            format!("VoteReply(term {term}, granted {granted})")
        }
        RaftMsg::AppendEntries { term, entries, leader_commit, .. } => {
            format!("AppendEntries(term {term}, {} entries, commit {leader_commit})", entries.len())
        }
        RaftMsg::InstallSnapshot { term, last_index, .. } => {
            format!("InstallSnapshot(term {term}, upto {last_index})")
        }
        RaftMsg::AppendReply { term, success, match_index } => {
            format!("AppendReply(term {term}, success {success}, match {match_index})")
        }
    };
    format!("{kind} from node {} to node {}", env.from, env.to)
}

/// The Raft model: `n` real replicas under an adversarial network.
#[derive(Debug, Clone)]
pub struct RaftModel {
    n: usize,
    elections: u32,
    heartbeats: u32,
    proposals: u32,
    drops: u32,
}

impl RaftModel {
    /// A 3-replica instance with the action budgets used in CI: two
    /// elections (so leadership can be contested and change hands) and
    /// a replicated, committable proposal, exploring ~3·10^5 distinct
    /// states. Heartbeats and message drops are off here — each extra
    /// budget multiplies the graph several-fold past the CI wall-clock
    /// budget — and are covered at smaller bounds by the in-module
    /// fixpoint tests.
    pub fn small() -> Self {
        RaftModel { n: 3, elections: 2, heartbeats: 0, proposals: 1, drops: 0 }
    }

    /// Custom budgets for tests and tuning.
    pub fn with_budgets(
        n: usize,
        elections: u32,
        heartbeats: u32,
        proposals: u32,
        drops: u32,
    ) -> Self {
        RaftModel { n, elections, heartbeats, proposals, drops }
    }

    /// Zero-jitter timing so replica behaviour is a pure function of
    /// the action sequence (the election RNG is never consulted).
    fn config() -> RaftConfig {
        RaftConfig {
            election_min: SimDuration::from_millis(10),
            election_max: SimDuration::from_millis(10),
            heartbeat: SimDuration::from_millis(5),
        }
    }

    /// Records any leadership visible in `s` into the history variable.
    fn note_leaders(s: &mut RaftState) {
        for node in &s.nodes {
            if node.role() == Role::Leader {
                let key = (node.term(), node.id());
                if let Err(pos) = s.leaders_seen.binary_search(&key) {
                    s.leaders_seen.insert(pos, key);
                }
            }
        }
    }

    fn push_out(s: &mut RaftState, from: usize, out: Vec<(usize, RaftMsg)>) {
        for (to, msg) in out {
            s.net.push(Envelope { from, to, msg });
        }
    }
}

impl Model for RaftModel {
    type State = RaftState;
    type Action = RaftAction;

    fn name(&self) -> &'static str {
        "raft"
    }

    fn initial_states(&self) -> Vec<RaftState> {
        let nodes = (0..self.n).map(|id| RaftNode::new(id, self.n, 42, Self::config())).collect();
        vec![RaftState {
            nodes,
            net: Vec::new(),
            leaders_seen: Vec::new(),
            elections_left: self.elections,
            heartbeats_left: self.heartbeats,
            proposals_left: self.proposals,
            drops_left: self.drops,
        }]
    }

    fn actions(&self, s: &RaftState, out: &mut Vec<RaftAction>) {
        for (i, node) in s.nodes.iter().enumerate() {
            match node.role() {
                Role::Leader => {
                    if s.heartbeats_left > 0 {
                        out.push(RaftAction::Heartbeat(i));
                    }
                    if s.proposals_left > 0 {
                        out.push(RaftAction::Propose(i));
                    }
                }
                Role::Follower | Role::Candidate => {
                    if s.elections_left > 0 {
                        out.push(RaftAction::Timeout(i));
                    }
                }
            }
        }
        for (k, env) in s.net.iter().enumerate() {
            out.push(RaftAction::Deliver(k, summarize(env)));
            if s.drops_left > 0 {
                out.push(RaftAction::Drop(k, summarize(env)));
            }
        }
    }

    fn apply(&self, s: &RaftState, a: &RaftAction) -> Option<RaftState> {
        let mut next = s.clone();
        match a {
            RaftAction::Timeout(i) => {
                next.elections_left -= 1;
                let at = next.nodes[*i].election_deadline();
                let out = next.nodes[*i].tick(at);
                Self::push_out(&mut next, *i, out);
            }
            RaftAction::Heartbeat(i) => {
                next.heartbeats_left -= 1;
                let at = next.nodes[*i].heartbeat_due();
                let out = next.nodes[*i].tick(at);
                Self::push_out(&mut next, *i, out);
            }
            RaftAction::Propose(i) => {
                next.proposals_left -= 1;
                let (_, out) = next.nodes[*i].propose(KvCommand::put("/mc/key", b"value")).ok()?;
                Self::push_out(&mut next, *i, out);
            }
            RaftAction::Deliver(k, _) => {
                let env = next.net.remove(*k);
                let out = next.nodes[env.to].handle(SimTime::ZERO, env.from, env.msg);
                Self::push_out(&mut next, env.to, out);
            }
            RaftAction::Drop(k, _) => {
                next.drops_left -= 1;
                next.net.remove(*k);
            }
        }
        // Drain applied commands so replica memory stays flat; the log
        // and commit index (which the invariants read) are untouched.
        for node in &mut next.nodes {
            let _ = node.take_committed();
        }
        Self::note_leaders(&mut next);
        Some(next)
    }

    fn fingerprint(&self, s: &RaftState) -> u64 {
        // Message payloads carry no node ids, so their digests are
        // permutation-invariant and computed once per state.
        let payloads: Vec<u64> =
            s.net.iter().map(|e| fingerprint_of(&format!("{:?}", e.msg))).collect();
        canonical_fingerprint(self.n, |perm| {
            let mut h = FpHasher::default();
            // Invert: position `new` hashes the node whose new name is
            // `new`, so relabeled states hash identically.
            let mut inv = vec![0usize; self.n];
            for (old, &new) in perm.iter().enumerate() {
                inv[new] = old;
            }
            for &old in &inv {
                let node = &s.nodes[old];
                node.term().hash(&mut h);
                (node.role() as u8).hash(&mut h);
                match node.voted_for() {
                    Some(v) => (perm[v] as i64).hash(&mut h),
                    None => (-1i64).hash(&mut h),
                }
                node.commit_index().hash(&mut h);
                let last = node.last_log_index();
                last.hash(&mut h);
                for idx in 1..=last {
                    node.log_term_at(idx).hash(&mut h);
                }
                let mut votes: Vec<usize> = node.votes_granted().iter().map(|&v| perm[v]).collect();
                votes.sort_unstable();
                votes.hash(&mut h);
                for &peer_old in &inv {
                    node.next_index_of(peer_old).hash(&mut h);
                    node.match_index_of(peer_old).hash(&mut h);
                }
            }
            let mut net: Vec<u64> = s
                .net
                .iter()
                .zip(&payloads)
                .map(|(e, &payload)| fingerprint_of(&(perm[e.from], perm[e.to], payload)))
                .collect();
            net.sort_unstable();
            net.hash(&mut h);
            let mut seen: Vec<(u64, usize)> =
                s.leaders_seen.iter().map(|&(t, id)| (t, perm[id])).collect();
            seen.sort_unstable();
            seen.hash(&mut h);
            (s.elections_left, s.heartbeats_left, s.proposals_left, s.drops_left).hash(&mut h);
            h.finish()
        })
    }

    fn check(&self, s: &RaftState) -> Result<(), String> {
        // Election safety: one leader per term, ever.
        for w in s.leaders_seen.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!(
                    "election safety violated: nodes {} and {} were both leader in term {}",
                    w[0].1, w[1].1, w[0].0
                ));
            }
        }
        // Log matching on committed prefixes.
        for i in 0..s.nodes.len() {
            for j in (i + 1)..s.nodes.len() {
                let upto = s.nodes[i].commit_index().min(s.nodes[j].commit_index());
                for idx in 1..=upto {
                    let (ti, tj) = (s.nodes[i].log_term_at(idx), s.nodes[j].log_term_at(idx));
                    if ti != tj {
                        return Err(format!(
                            "log matching violated: index {idx} has term {ti} on node {i} \
                             but term {tj} on node {j} (both committed it)"
                        ));
                    }
                }
            }
        }
        // Leader completeness: an entry committed with term `t` is in
        // the log of every leader of term >= t. (A deposed leader of an
        // *older* term that has not yet heard of its successor is
        // legitimately missing newer commits, so it is exempt.)
        for leader in s.nodes.iter().filter(|n| n.role() == Role::Leader) {
            for follower in &s.nodes {
                for idx in 1..=follower.commit_index() {
                    let t = follower.log_term_at(idx);
                    if leader.term() < t {
                        continue;
                    }
                    if idx > leader.last_log_index() || leader.log_term_at(idx) != t {
                        return Err(format!(
                            "leader completeness violated: node {} committed index {idx} \
                             (term {t}) but leader {} of term {} lacks or disagrees on it",
                            follower.id(),
                            leader.id(),
                            leader.term()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn tiny_instance_reaches_fixpoint() {
        let model = RaftModel::with_budgets(2, 1, 1, 0, 0);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 1),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn symmetry_collapses_mirror_elections() {
        // From the initial state, "node 0 times out" and "node 1 times
        // out" are the same state up to relabeling.
        let model = RaftModel::with_budgets(2, 1, 0, 0, 0);
        let init = &model.initial_states()[0];
        let a = model.apply(init, &RaftAction::Timeout(0)).unwrap();
        let b = model.apply(init, &RaftAction::Timeout(1)).unwrap();
        assert_eq!(model.fingerprint(&a), model.fingerprint(&b));
    }
}
