//! Model-checks the shipped elastic scale-down path
//! (`myrtus_mirto::DeploymentProxy`).
//!
//! The model drives a real [`DeploymentProxy`] — federation, clusters,
//! pods, exactly as the elasticity controller uses it — through every
//! interleaving of `scale_up` / `scale_down` calls over a small set of
//! components and interchangeable candidate nodes, against an
//! independently maintained mirror of what the replica stacks *should*
//! contain.
//!
//! Checked invariants:
//! - **No lost pod / LIFO discipline**: `scale_down` returns exactly
//!   the node of the most recent surviving `scale_up` for that
//!   component, and the proxy's route table (`replica_nodes`) always
//!   equals the mirror.
//! - **No orphaned replica**: each candidate node's requested CPU
//!   equals its post-placement baseline plus the per-replica cost of
//!   exactly the replicas currently routed to it — an evicted replica
//!   must release its cluster resources (this is what the seeded
//!   `scale_down_leaks_pod` mutation breaks).
//! - **Primary is sacred**: scale-down never touches the primary pod
//!   of any component.
//!
//! Symmetry: candidate nodes live in the same layer cluster and
//! `Cluster::bind` is unconditional, so candidates are interchangeable
//! and fingerprints are canonicalized over candidate permutations.

use std::fmt;

use myrtus_continuum::ids::NodeId;
use myrtus_continuum::topology::ContinuumBuilder;
use myrtus_mirto::{DeploymentProxy, Placement};
use myrtus_workload::scenarios;
use myrtus_workload::tosca::Application;

use crate::{canonical_fingerprint, fingerprint_of, Model};

/// One explicit state: the real proxy plus the specification mirror.
#[derive(Debug, Clone)]
pub struct ScaleState {
    /// The production deployment proxy under test.
    pub proxy: DeploymentProxy,
    /// Per-component stack of candidate indices the proxy *should*
    /// hold, maintained by the model independently of the proxy.
    pub mirror: Vec<Vec<usize>>,
    ups_left: u32,
    violation: Option<String>,
}

/// One transition.
#[derive(Debug, Clone)]
pub enum ScaleAction {
    /// Bind an extra replica of a component on a candidate node.
    ScaleUp {
        /// Component index.
        comp: usize,
        /// Candidate node index.
        cand: usize,
    },
    /// Evict the newest replica of a component.
    ScaleDown {
        /// Component index.
        comp: usize,
    },
}

impl fmt::Display for ScaleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleAction::ScaleUp { comp, cand } => {
                write!(f, "scale up component {comp} onto candidate node {cand}")
            }
            ScaleAction::ScaleDown { comp } => write!(f, "scale down component {comp}"),
        }
    }
}

/// The scale-down model: a telerehab deployment with its primaries
/// pinned to one edge node and replicas elastically spread over
/// interchangeable candidates.
#[derive(Debug)]
pub struct ScaleDownModel {
    app: Application,
    app_id: u16,
    comps: usize,
    primary: NodeId,
    candidates: Vec<NodeId>,
    /// Per-component replica pod CPU request, measured empirically from
    /// the real proxy at model construction.
    comp_cost: Vec<u32>,
    /// Requested CPU per candidate right after the initial placement.
    baseline: Vec<u32>,
    initial: DeploymentProxy,
    ups: u32,
}

impl ScaleDownModel {
    /// The instance used in CI: 3 components, 3 candidate edge nodes,
    /// and a scale-up budget of 7.
    pub fn small() -> Self {
        Self::with_budgets(3, 7)
    }

    /// Custom component count / scale-up budget for tests and tuning.
    ///
    /// # Panics
    ///
    /// Panics if the telerehab app has fewer than `comps` components or
    /// the default continuum fewer than four edge nodes.
    pub fn with_budgets(comps: usize, ups: u32) -> Self {
        let continuum = ContinuumBuilder::new().build();
        let app = scenarios::telerehab_with(1);
        assert!(app.components.len() >= comps, "telerehab is smaller than expected");
        assert!(continuum.edge().len() >= 4, "need a primary plus three candidates");
        let app_id = 7;
        let primary = continuum.edge()[0];
        let candidates = continuum.edge()[1..4].to_vec();

        let mut proxy = DeploymentProxy::new(continuum.sim());
        let placement = Placement::new(vec![primary; app.components.len()]);
        proxy.apply_placement(app_id, &app, &placement).expect("placement binds");

        let baseline: Vec<u32> =
            candidates.iter().map(|&c| proxy.requested_cpu_millis(c)).collect();
        // Measure each component's replica cost on a scratch clone so
        // the invariant checks against what the proxy actually binds,
        // not a re-derivation of its sizing heuristic.
        let comp_cost: Vec<u32> = (0..comps)
            .map(|comp| {
                let mut scratch = proxy.clone();
                let before = scratch.requested_cpu_millis(candidates[0]);
                scratch.scale_up(app_id, &app, comp, candidates[0]).expect("scale_up binds");
                scratch.requested_cpu_millis(candidates[0]) - before
            })
            .collect();

        ScaleDownModel {
            app,
            app_id,
            comps,
            primary,
            candidates,
            comp_cost,
            baseline,
            initial: proxy,
            ups,
        }
    }
}

impl Model for ScaleDownModel {
    type State = ScaleState;
    type Action = ScaleAction;

    fn name(&self) -> &'static str {
        "scaledown"
    }

    fn initial_states(&self) -> Vec<ScaleState> {
        vec![ScaleState {
            proxy: self.initial.clone(),
            mirror: vec![Vec::new(); self.comps],
            ups_left: self.ups,
            violation: None,
        }]
    }

    fn actions(&self, s: &ScaleState, out: &mut Vec<ScaleAction>) {
        for comp in 0..self.comps {
            if s.ups_left > 0 {
                for cand in 0..self.candidates.len() {
                    out.push(ScaleAction::ScaleUp { comp, cand });
                }
            }
            if !s.mirror[comp].is_empty() {
                out.push(ScaleAction::ScaleDown { comp });
            }
        }
    }

    fn apply(&self, s: &ScaleState, a: &ScaleAction) -> Option<ScaleState> {
        let mut next = s.clone();
        match a {
            ScaleAction::ScaleUp { comp, cand } => {
                next.ups_left -= 1;
                if let Err(e) =
                    next.proxy.scale_up(self.app_id, &self.app, *comp, self.candidates[*cand])
                {
                    next.violation = Some(format!("scale_up failed: {e:?}"));
                } else {
                    next.mirror[*comp].push(*cand);
                }
            }
            ScaleAction::ScaleDown { comp } => {
                let expected = next.mirror[*comp].pop().map(|c| self.candidates[c]);
                match next.proxy.scale_down(self.app_id, *comp) {
                    Ok(got) if got == expected => {}
                    Ok(got) => {
                        next.violation = Some(format!(
                            "LIFO violated: scale_down of component {comp} returned {got:?} \
                             but the newest replica was on {expected:?}"
                        ));
                    }
                    Err(e) => {
                        next.violation = Some(format!("scale_down failed: {e:?}"));
                    }
                }
            }
        }
        Some(next)
    }

    fn fingerprint(&self, s: &ScaleState) -> u64 {
        canonical_fingerprint(self.candidates.len(), |perm| {
            let mirror: Vec<Vec<usize>> =
                s.mirror.iter().map(|stack| stack.iter().map(|&c| perm[c]).collect()).collect();
            fingerprint_of(&(mirror, s.ups_left, s.violation.is_some()))
        })
    }

    fn check(&self, s: &ScaleState) -> Result<(), String> {
        if let Some(v) = &s.violation {
            return Err(v.clone());
        }
        for comp in 0..self.comps {
            // Route table mirrors the spec stack exactly, in order.
            let want: Vec<NodeId> = s.mirror[comp].iter().map(|&c| self.candidates[c]).collect();
            let got = s.proxy.replica_nodes(self.app_id, comp);
            if got != want {
                return Err(format!(
                    "replica route table diverged for component {comp}: proxy says {got:?}, \
                     spec says {want:?}"
                ));
            }
            // The primary pod must still be where the placement put it.
            match s.proxy.pod_of(self.app_id, comp) {
                Some((_, _, node)) if node == self.primary => {}
                other => {
                    return Err(format!(
                        "primary pod of component {comp} disturbed: {other:?}, \
                         expected it on {:?}",
                        self.primary
                    ));
                }
            }
        }
        // Resource accounting: every evicted replica released its
        // requests, every live replica still holds exactly its cost.
        for (i, &cand) in self.candidates.iter().enumerate() {
            let live: u32 = (0..self.comps)
                .map(|comp| {
                    let count = s.mirror[comp].iter().filter(|&&c| c == i).count() as u32;
                    count * self.comp_cost[comp]
                })
                .sum();
            let want = self.baseline[i] + live;
            let got = s.proxy.requested_cpu_millis(cand);
            if got != want {
                return Err(format!(
                    "orphaned replica resources on candidate {i}: requested {got} millicores \
                     but live replicas account for {want} (a scaled-down pod was not evicted?)"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn small_instance_reaches_fixpoint() {
        let model = ScaleDownModel::with_budgets(2, 3);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 10),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn candidates_are_symmetric() {
        let model = ScaleDownModel::with_budgets(2, 3);
        let init = &model.initial_states()[0];
        let a = model.apply(init, &ScaleAction::ScaleUp { comp: 0, cand: 0 }).unwrap();
        let b = model.apply(init, &ScaleAction::ScaleUp { comp: 0, cand: 2 }).unwrap();
        assert_eq!(model.fingerprint(&a), model.fingerprint(&b));
    }
}
