//! Model-checks the shipped retry/cancel-epoch machinery and k=2
//! replication dedup (`myrtus_continuum::engine::SimCore`).
//!
//! [`SimCore`] is deliberately not `Clone` (it owns slab arenas and a
//! live observability handle), so this model represents a state as the
//! *action trace that reaches it* and recomputes successors by
//! replaying the trace into a fresh core — the standard recipe for
//! checking a stateful system through its real API. Replay is exact:
//! the simulator is fully deterministic, so a trace is a faithful
//! state, and the fingerprint hashes an abstract view (clock, event
//! horizon, per-node occupancy, task ledger, counters) that two traces
//! only share when the underlying cores are observably identical.
//!
//! Each logical task is submitted as a replicated pair (k=2, primary +
//! twin on different nodes) with the same first-completion-wins dedup
//! the MIRTO engine uses. The adversary controls when nodes crash and
//! recover, when the client cancels, and how external actions
//! interleave with the simulator's own event processing.
//!
//! Checked invariants:
//! - **Exactly one final state per copy**: no copy ever receives a
//!   second terminal event (completion, shed, abandonment) — this is
//!   what the seeded `engine_stale_recover` mutation breaks: a
//!   recovery event for an already-terminal task must stay stale.
//! - **At most one completion per logical pair** (replica dedup).
//! - **Six-term conservation**, cross-checked against the engine's own
//!   counters: `dispatched = completed + shed + gave-up + cancelled +
//!   in-flight + resubmissions`.
//! - **Losses ride the recovery queue**: with a retry policy
//!   installed, `TasksLost` never carries tasks.
//!
//! No symmetry reduction here: actions name absolute node indices
//! (crash node 0, submit rotates over nodes), so node identities are
//! observable and permuting them is unsound.

use std::collections::HashMap;
use std::fmt;

use myrtus_continuum::engine::{Driver, SimCore, SimEvent};
use myrtus_continuum::ids::{NodeId, TaskId};
use myrtus_continuum::node::{NodeKind, NodeSpec};
use myrtus_continuum::time::SimDuration;
use myrtus_continuum::{AdmissionPolicy, RetryPolicy, TaskInstance};
use myrtus_obs::{Obs, ObsConfig};

use crate::{fingerprint_of, Model};

/// Per-request work in megacycles: 3 ms of service on the model's
/// 1000 MHz single-core nodes, chosen so a queued twin can outlive the
/// 5 ms attempt timeout (3 ms wait + 3 ms service) and the timeout
/// path is genuinely reachable.
const WORK_MC: f64 = 3.0;

/// One transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RetryAction {
    /// Submit the next logical task as a replicated pair.
    Submit,
    /// Let the simulator process its next queued event.
    Step,
    /// Crash a node (its tasks enter the recovery path).
    Crash(usize),
    /// Bring a crashed node back up.
    Recover(usize),
    /// The client cancels the newest in-flight attempt.
    Cancel,
}

impl fmt::Display for RetryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryAction::Submit => write!(f, "submit the next task as a replicated pair"),
            RetryAction::Step => write!(f, "simulator processes one event"),
            RetryAction::Crash(i) => write!(f, "node {i} crashes"),
            RetryAction::Recover(i) => write!(f, "node {i} comes back up"),
            RetryAction::Cancel => write!(f, "client cancels the newest in-flight attempt"),
        }
    }
}

/// Where one submitted copy currently stands. Every copy must visit
/// exactly one terminal phase, exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CopyPhase {
    InFlight,
    Completed,
    Shed,
    Abandoned,
    Cancelled,
}

#[derive(Debug, Clone)]
struct CopyInfo {
    raw: u64,
    logical: usize,
    phase: CopyPhase,
    /// Node the current attempt targets (updated on re-dispatch).
    node: NodeId,
}

/// The test harness driver: the same bookkeeping role the MIRTO engine
/// plays in production (replica dedup, recovery re-placement), plus
/// violation detection.
#[derive(Debug, Default)]
struct Harness {
    copies: Vec<CopyInfo>,
    by_raw: HashMap<u64, usize>,
    logicals: usize,
    submit_calls: u64,
    resubmissions: u64,
    cancelled: u64,
    violation: Option<String>,
}

impl Harness {
    fn mark_terminal(&mut self, raw: u64, phase: CopyPhase, what: &str) {
        let Some(&idx) = self.by_raw.get(&raw) else {
            self.violation = Some(format!("{what} for unknown task {raw}"));
            return;
        };
        let copy = &mut self.copies[idx];
        if copy.phase == CopyPhase::InFlight {
            copy.phase = phase;
        } else if self.violation.is_none() {
            self.violation = Some(format!(
                "{what} for task {raw} which already reached terminal state {:?} — \
                 every copy must have exactly one final state",
                copy.phase
            ));
        }
    }

    fn completions_of_logical(&self, logical: usize) -> usize {
        self.copies
            .iter()
            .filter(|c| c.logical == logical && c.phase == CopyPhase::Completed)
            .count()
    }
}

impl Driver for Harness {
    fn on_event(&mut self, sim: &mut SimCore, event: SimEvent) {
        match event {
            SimEvent::TaskCompleted(outcome) => {
                let raw = outcome.task.id.as_raw();
                self.mark_terminal(raw, CopyPhase::Completed, "completion");
                // First-completion-wins dedup, as the MIRTO engine does
                // for replicated stages: cancel the in-flight sibling.
                let Some(&idx) = self.by_raw.get(&raw) else { return };
                let logical = self.copies[idx].logical;
                let sibling = self.copies.iter().position(|c| {
                    c.logical == logical && c.raw != raw && c.phase == CopyPhase::InFlight
                });
                if let Some(s) = sibling {
                    let (node, sraw) = (self.copies[s].node, self.copies[s].raw);
                    if sim.cancel_task(node, TaskId::from_raw(sraw)) {
                        self.copies[s].phase = CopyPhase::Cancelled;
                        self.cancelled += 1;
                    }
                    // `false` means the sibling already went terminal
                    // inside the engine (e.g. it was shed and its
                    // notification is still queued): the race was lost,
                    // and the pending event will settle the ledger.
                }
            }
            SimEvent::TaskShed { task, .. } => {
                self.mark_terminal(task.id.as_raw(), CopyPhase::Shed, "shed");
            }
            SimEvent::TaskAbandoned { task, .. } => {
                self.mark_terminal(task.id.as_raw(), CopyPhase::Abandoned, "abandonment");
            }
            SimEvent::TaskRecovered { task, .. } => {
                let raw = task.id.as_raw();
                let phase = self.by_raw.get(&raw).map(|&i| self.copies[i].phase);
                match phase {
                    Some(CopyPhase::InFlight) => {
                        // Re-place on the first node that is still up,
                        // like the production recovery path.
                        let target = sim.nodes().iter().find(|n| n.is_up()).map(|n| n.id());
                        let idx = self.by_raw[&raw];
                        match target {
                            Some(node) => {
                                self.submit_calls += 1;
                                self.resubmissions += 1;
                                self.copies[idx].node = node;
                                if let Err(e) = sim.submit_local(node, task) {
                                    self.violation = Some(format!(
                                        "re-dispatch of recovered task {raw} failed: {e:?}"
                                    ));
                                }
                            }
                            None => {
                                sim.note_give_up(TaskId::from_raw(raw));
                                self.copies[idx].phase = CopyPhase::Abandoned;
                            }
                        }
                    }
                    Some(terminal) => {
                        if self.violation.is_none() {
                            self.violation = Some(format!(
                                "recovery fired for task {raw} which already reached \
                                 terminal state {terminal:?} — stale recoveries must be \
                                 suppressed"
                            ));
                        }
                    }
                    None => {
                        self.violation = Some(format!("recovery fired for unknown task {raw}"));
                    }
                }
            }
            SimEvent::TasksLost { tasks, .. } => {
                if !tasks.is_empty() && self.violation.is_none() {
                    self.violation = Some(format!(
                        "TasksLost carried {} tasks despite an installed retry policy — \
                         losses must ride the recovery queue",
                        tasks.len()
                    ));
                }
            }
            SimEvent::TaskStarted { .. }
            | SimEvent::NodeRestored(_)
            | SimEvent::LinkChanged { .. }
            | SimEvent::MessageDelivered(_)
            | SimEvent::Timer { .. } => {}
        }
    }
}

/// The abstract, hashable view of a replayed core: what the fingerprint
/// and the invariants read.
#[derive(Debug, Clone, Hash)]
struct View {
    now_us: u64,
    next_event_in_us: Option<u64>,
    nodes: Vec<(bool, usize, usize)>,
    recovery_outstanding: u32,
    processed_events: u64,
    counters: [u64; 6],
    ledger: Vec<(usize, CopyPhase, u32)>,
    submits_left: u32,
    crashes_left: Vec<u32>,
    recovers_left: Vec<u32>,
    crash_debt: Vec<u32>,
    cancels_left: u32,
    violated: bool,
}

/// One explicit state: the trace that reaches it plus the abstract
/// view replayed from that trace.
#[derive(Debug, Clone)]
pub struct RetryState {
    trace: Vec<RetryAction>,
    view: View,
    check: Result<(), String>,
}

/// The retry/replication model.
#[derive(Debug, Clone)]
pub struct RetryModel {
    nodes: usize,
    submits: u32,
    crashes_per_node: u32,
    recovers_per_node: u32,
    cancels: u32,
}

impl RetryModel {
    /// The instance used in CI: two single-core nodes, two replicated
    /// submissions, one crash/recovery cycle per node, one client
    /// cancel.
    pub fn small() -> Self {
        RetryModel { nodes: 2, submits: 2, crashes_per_node: 1, recovers_per_node: 1, cancels: 1 }
    }

    /// Custom budgets for tests and tuning.
    pub fn with_budgets(
        submits: u32,
        crashes_per_node: u32,
        recovers_per_node: u32,
        cancels: u32,
    ) -> Self {
        RetryModel { nodes: 2, submits, crashes_per_node, recovers_per_node, cancels }
    }

    fn fresh_core(&self) -> SimCore {
        let mut sim = SimCore::new();
        sim.set_obs(Obs::new(ObsConfig::on().with_scrape_interval_us(0)));
        for i in 0..self.nodes {
            sim.add_node(
                NodeSpec::builder(format!("mc-n{i}"), NodeKind::EdgeMulticore).cores(1).build(),
            );
        }
        sim.set_retry_policy(Some(RetryPolicy {
            max_attempts: 2,
            base_backoff: SimDuration::from_millis(2),
            backoff_cap: SimDuration::from_millis(8),
            jitter_frac: 0.0,
            attempt_timeout: Some(SimDuration::from_millis(5)),
            seed: 7,
            recovery_queue_cap: 1,
        }));
        sim.set_admission(Some(AdmissionPolicy {
            max_queue_depth: 2,
            ..AdmissionPolicy::default()
        }));
        sim
    }

    /// Replays a trace into a fresh core, returning the reached state.
    fn replay(&self, trace: Vec<RetryAction>) -> RetryState {
        let mut sim = self.fresh_core();
        let mut harness = Harness::default();
        let mut submits_left = self.submits;
        let mut crashes_left = vec![self.crashes_per_node; self.nodes];
        let mut recovers_left = vec![self.recovers_per_node; self.nodes];
        let mut crash_debt = vec![0u32; self.nodes];
        let mut cancels_left = self.cancels;

        for action in &trace {
            match action {
                RetryAction::Submit => {
                    submits_left -= 1;
                    let logical = harness.logicals;
                    harness.logicals += 1;
                    // Rotate the primary over nodes; the twin lands on
                    // the next up node, if any.
                    let order: Vec<NodeId> = (0..self.nodes)
                        .map(|k| NodeId::from_raw(((logical + k) % self.nodes) as u32))
                        .collect();
                    let targets: Vec<NodeId> = order
                        .into_iter()
                        .filter(|&n| sim.node(n).is_some_and(|st| st.is_up()))
                        .take(2)
                        .collect();
                    for node in targets {
                        let id = sim.fresh_task_id();
                        let idx = harness.copies.len();
                        harness.by_raw.insert(id.as_raw(), idx);
                        harness.copies.push(CopyInfo {
                            raw: id.as_raw(),
                            logical,
                            phase: CopyPhase::InFlight,
                            node,
                        });
                        harness.submit_calls += 1;
                        let task = TaskInstance::new(id, WORK_MC).with_priority(0);
                        if let Err(e) = sim.submit_local(node, task) {
                            harness.violation =
                                Some(format!("submission to an up node failed: {e:?}"));
                        }
                    }
                }
                RetryAction::Step => {
                    sim.step_event(&mut harness);
                }
                RetryAction::Crash(i) => {
                    crashes_left[*i] -= 1;
                    crash_debt[*i] += 1;
                    sim.schedule_node_down(NodeId::from_raw(*i as u32), sim.now());
                }
                RetryAction::Recover(i) => {
                    recovers_left[*i] -= 1;
                    crash_debt[*i] -= 1;
                    sim.schedule_node_up(NodeId::from_raw(*i as u32), sim.now());
                }
                RetryAction::Cancel => {
                    cancels_left -= 1;
                    let newest = harness
                        .copies
                        .iter()
                        .filter(|c| c.phase == CopyPhase::InFlight)
                        .max_by_key(|c| c.raw)
                        .map(|c| (c.node, c.raw));
                    if let Some((node, raw)) = newest {
                        // A `false` return is legal: the copy already
                        // went terminal inside the engine and its
                        // notification is still queued.
                        if sim.cancel_task(node, TaskId::from_raw(raw)) {
                            let idx = harness.by_raw[&raw];
                            harness.copies[idx].phase = CopyPhase::Cancelled;
                            harness.cancelled += 1;
                        }
                    }
                }
            }
        }

        let obs = sim.obs();
        let counters = [
            obs.counter_value("sim_tasks_dispatched", ""),
            obs.counter_value("sim_tasks_completed", ""),
            obs.counter_sum("tasks_shed"),
            obs.counter_value("task_gave_up", ""),
            obs.counter_value("task_retries", ""),
            obs.counter_value("task_timeouts", ""),
        ];
        let ledger: Vec<(usize, CopyPhase, u32)> =
            harness.copies.iter().map(|c| (c.logical, c.phase, c.node.as_raw())).collect();
        let view = View {
            now_us: sim.now().as_micros(),
            next_event_in_us: sim.next_event_at().map(|t| t.as_micros() - sim.now().as_micros()),
            nodes: sim
                .nodes()
                .iter()
                .map(|n| (n.is_up(), n.running().len(), n.queue_len()))
                .collect(),
            recovery_outstanding: sim.recovery_outstanding(),
            processed_events: sim.processed_events(),
            counters,
            ledger,
            submits_left,
            crashes_left,
            recovers_left,
            crash_debt,
            cancels_left,
            violated: harness.violation.is_some(),
        };
        let check = Self::verdict(&harness, &view);
        RetryState { trace, view, check }
    }

    /// The invariants, evaluated once at replay time (states cache the
    /// verdict so `check` is a lookup).
    fn verdict(harness: &Harness, view: &View) -> Result<(), String> {
        if let Some(v) = &harness.violation {
            return Err(v.clone());
        }
        for logical in 0..harness.logicals {
            let c = harness.completions_of_logical(logical);
            if c > 1 {
                return Err(format!(
                    "replica dedup violated: logical task {logical} completed {c} times"
                ));
            }
        }
        let [dispatched, completed, shed, gave_up, _retries, _timeouts] = view.counters;
        if dispatched != harness.submit_calls {
            return Err(format!(
                "dispatch ledger diverged: engine counted {dispatched} dispatches, \
                 harness performed {}",
                harness.submit_calls
            ));
        }
        let tally =
            |phase: CopyPhase| harness.copies.iter().filter(|c| c.phase == phase).count() as u64;
        let (h_completed, h_shed, h_abandoned, h_cancelled, in_flight) = (
            tally(CopyPhase::Completed),
            tally(CopyPhase::Shed),
            tally(CopyPhase::Abandoned),
            tally(CopyPhase::Cancelled),
            tally(CopyPhase::InFlight),
        );
        // Completion, abandonment, and dispatch notifications are
        // synchronous, so those ledgers must agree in every state. Shed
        // notifications ride the event queue (`NotifyShed`), so the
        // engine counter may lead the harness while one is in flight —
        // but never lag it, and at quiescence they must be equal.
        if completed != h_completed || gave_up != h_abandoned {
            return Err(format!(
                "terminal-state ledgers diverged: engine (completed {completed}, \
                 gave up {gave_up}) vs harness (completed {h_completed}, \
                 abandoned {h_abandoned})"
            ));
        }
        if shed < h_shed {
            return Err(format!(
                "shed ledger ran backwards: engine counted {shed} but the harness was \
                 notified of {h_shed}"
            ));
        }
        if view.next_event_in_us.is_none() && shed != h_shed {
            return Err(format!(
                "shed notification lost: the queue is quiescent but the engine counted \
                 {shed} sheds and the harness saw {h_shed}"
            ));
        }
        // Six-term conservation over copies: the pending-shed lag is
        // exactly the engine/harness shed gap, so counting sheds from
        // the engine and in-flight copies net of pending notifications
        // keeps the identity exact in every state.
        let pending_shed = shed - h_shed;
        let rhs = completed
            + shed
            + gave_up
            + h_cancelled
            + (in_flight - pending_shed)
            + harness.resubmissions;
        if dispatched != rhs {
            return Err(format!(
                "conservation violated: dispatched {dispatched} != completed {completed} + \
                 shed {shed} + gave up {gave_up} + cancelled {h_cancelled} + \
                 in flight {} + resubmissions {}",
                in_flight - pending_shed,
                harness.resubmissions
            ));
        }
        Ok(())
    }
}

impl Model for RetryModel {
    type State = RetryState;
    type Action = RetryAction;

    fn name(&self) -> &'static str {
        "retry"
    }

    fn initial_states(&self) -> Vec<RetryState> {
        vec![self.replay(Vec::new())]
    }

    fn actions(&self, s: &RetryState, out: &mut Vec<RetryAction>) {
        let v = &s.view;
        if v.submits_left > 0 && v.nodes.iter().any(|&(up, _, _)| up) {
            out.push(RetryAction::Submit);
        }
        if v.next_event_in_us.is_some() {
            out.push(RetryAction::Step);
        }
        for i in 0..self.nodes {
            if v.crashes_left[i] > 0 && v.crash_debt[i] == 0 {
                out.push(RetryAction::Crash(i));
            }
            if v.recovers_left[i] > 0 && v.crash_debt[i] > 0 {
                out.push(RetryAction::Recover(i));
            }
        }
        if v.cancels_left > 0 && v.ledger.iter().any(|&(_, p, _)| p == CopyPhase::InFlight) {
            out.push(RetryAction::Cancel);
        }
    }

    fn apply(&self, s: &RetryState, a: &RetryAction) -> Option<RetryState> {
        let mut trace = s.trace.clone();
        trace.push(a.clone());
        Some(self.replay(trace))
    }

    fn fingerprint(&self, s: &RetryState) -> u64 {
        fingerprint_of(&s.view)
    }

    fn check(&self, s: &RetryState) -> Result<(), String> {
        s.check.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn tiny_instance_reaches_fixpoint() {
        let model = RetryModel::with_budgets(1, 0, 0, 0);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 2),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn crash_and_recovery_explore_cleanly() {
        let model = RetryModel::with_budgets(1, 1, 1, 0);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 10),
            other => panic!("expected pass, got {other:?}"),
        }
    }
}
