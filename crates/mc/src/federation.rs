//! Model-checks the shipped federation tier
//! (`myrtus_continuum::federation`).
//!
//! The model drives a real [`GossipRegistry`], the real sealed-bid
//! [`run_auction`] and a real [`AuctionBook`] — the exact objects the
//! MIRTO federation manager composes — through every interleaving of
//! digest publishes, anti-entropy rounds (with single-region churn),
//! burst-link opens and closes, against an independently maintained
//! mirror of which application holds which award.
//!
//! Checked invariants:
//! - **No double award**: opening a burst link for an application that
//!   already holds one is rejected by the book; the model records the
//!   ledger's refusal as a violation if it ever fires.
//! - **No burst to a never-advertised region**: every auction winner is
//!   backed by a published digest (`advertised`) and satisfies the
//!   query it won — this is what the seeded `federation_blind_award`
//!   mutation breaks: with the feasibility filter skipped, the silent
//!   region's zero-cost placeholder bid wins.
//! - **Conservation**: the book's live-award count and per-key winners
//!   always equal the mirror of open links — a close releases exactly
//!   the award its open recorded.
//!
//! Regions are *not* interchangeable (one region is deliberately
//! silent, and each application is homed to a distinct region), so
//! fingerprints hash the raw state rather than a permutation orbit.

use std::fmt;

use myrtus_continuum::federation::{
    bid_from_view, run_auction, AuctionBook, BurstQuery, GossipConfig, GossipRegistry,
    RegionDigest, SealedBid,
};
use myrtus_continuum::ids::{NodeId, RegionId};

use crate::{fingerprint_of, Model};

/// Views older than this many rounds degrade to placeholder bids,
/// mirroring `FederationConfig::staleness_limit`.
const STALENESS_LIMIT: u64 = 4;
/// WAN transfer estimate priced into every bid, µs.
const TRANSFER_US: f64 = 1_000.0;
/// Inter-region handshake cost priced into every bid, µs.
const HANDSHAKE_US: f64 = 500.0;
/// Service-time estimate on the offered node, µs.
const SERVICE_US: f64 = 200.0;

/// One explicit state: the real registry and ledger plus the mirror.
#[derive(Debug, Clone)]
pub struct FederationState {
    /// The production gossip registry under test.
    pub registry: GossipRegistry,
    /// The production award ledger under test.
    pub book: AuctionBook,
    /// Per-application open link the book *should* hold, maintained by
    /// the model independently of the ledger.
    pub mirror: Vec<Option<RegionId>>,
    /// Per-region publish count; derives the next digest's shape.
    published: Vec<u8>,
    publishes_left: u8,
    rounds_left: u8,
    violation: Option<String>,
}

/// One transition.
#[derive(Debug, Clone)]
pub enum FederationAction {
    /// A region publishes a fresh digest of its capacity.
    Publish {
        /// The advertising region.
        region: u16,
    },
    /// One anti-entropy round; `down`, if any, neither pushes nor
    /// pulls this round.
    Round {
        /// The churned-out region, if any.
        down: Option<u16>,
    },
    /// An application solicits bids, runs the auction and opens a
    /// burst link to the winner.
    Open {
        /// The escalating application (homed at region `app`).
        app: usize,
    },
    /// An application closes its burst link and releases the award.
    Close {
        /// The de-escalating application.
        app: usize,
    },
}

impl fmt::Display for FederationAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationAction::Publish { region } => {
                write!(f, "region {region} publishes a fresh digest")
            }
            FederationAction::Round { down: Some(r) } => {
                write!(f, "gossip round with region {r} churned out")
            }
            FederationAction::Round { down: None } => write!(f, "gossip round, all regions live"),
            FederationAction::Open { app } => {
                write!(f, "app {app} auctions and opens a burst link")
            }
            FederationAction::Close { app } => write!(f, "app {app} closes its burst link"),
        }
    }
}

/// The federation model: `regions` regions on a seeded gossip
/// schedule, the highest-numbered region permanently silent, and one
/// application homed at each non-silent region.
#[derive(Debug)]
pub struct FederationModel {
    regions: usize,
    apps: usize,
    publishes: u8,
    rounds: u8,
}

impl FederationModel {
    /// The instance used in CI: 3 regions (region 2 silent), 2 homed
    /// applications, 4 publishes and 4 gossip rounds.
    pub fn small() -> Self {
        Self::with_budgets(3, 4, 4)
    }

    /// Custom region count / publish / round budgets for tests and
    /// tuning. The highest-numbered region stays silent; every other
    /// region homes one application.
    ///
    /// # Panics
    ///
    /// Panics unless at least two regions can advertise (the auction
    /// needs a real bidder besides the silent placeholder).
    pub fn with_budgets(regions: usize, publishes: u8, rounds: u8) -> Self {
        assert!(regions >= 3, "need two advertisers plus the silent region");
        FederationModel { regions, apps: regions - 1, publishes, rounds }
    }

    /// The digest region `r` publishes on its `k`-th publish (1-based).
    /// Headroom and backlog cycle with `k` so repeated publishes shift
    /// the auction's cost ordering rather than idempotently repeating.
    fn digest(&self, r: u16, k: u8) -> RegionDigest {
        let phase = ((k - 1) % 3) as f64;
        RegionDigest {
            free_mc_per_s: 4_000.0 - 700.0 * phase,
            utilization: 0.25 + 0.2 * phase,
            queue_depth: 1.0 + phase,
            best_node: Some(NodeId::from_raw(r as u32)),
            best_speed_mhz: 1_000.0,
            best_backlog_us: 100.0 * f64::from(r) + 250.0 * phase,
            best_mem_free_mb: 256,
            security_tier: 2,
            ..RegionDigest::empty(RegionId::from_raw(r))
        }
    }

    /// The burst query every application escalates with — comfortably
    /// satisfied by every published digest, never by the placeholder.
    fn query(&self) -> BurstQuery {
        BurstQuery {
            work_mc: 50.0,
            input_bytes: 4_096,
            mem_mb: 64,
            min_tier: 1,
            min_headroom_mc_per_s: 1_000.0,
        }
    }

    /// Sealed bids from every peer of `home`, priced from `home`'s own
    /// gossip views exactly as the MIRTO manager solicits them.
    fn solicit(&self, state: &FederationState, home: RegionId) -> Vec<SealedBid> {
        (0..self.regions as u16)
            .map(RegionId::from_raw)
            .filter(|&peer| peer != home)
            .map(|peer| {
                bid_from_view(
                    peer,
                    state.registry.view(home, peer),
                    state.registry.staleness(home, peer),
                    STALENESS_LIMIT,
                    TRANSFER_US,
                    HANDSHAKE_US,
                    |_| SERVICE_US,
                )
            })
            .collect()
    }
}

impl Model for FederationModel {
    type State = FederationState;
    type Action = FederationAction;

    fn name(&self) -> &'static str {
        "federation"
    }

    fn initial_states(&self) -> Vec<FederationState> {
        vec![FederationState {
            registry: GossipRegistry::new(self.regions, GossipConfig { fanout: 1, seed: 7 }),
            book: AuctionBook::new(),
            mirror: vec![None; self.apps],
            published: vec![0; self.regions],
            publishes_left: self.publishes,
            rounds_left: self.rounds,
            violation: None,
        }]
    }

    fn actions(&self, state: &FederationState, out: &mut Vec<FederationAction>) {
        if state.publishes_left > 0 {
            // The silent region (the last) never advertises.
            for region in 0..(self.regions - 1) as u16 {
                out.push(FederationAction::Publish { region });
            }
        }
        if state.rounds_left > 0 {
            out.push(FederationAction::Round { down: None });
            for region in 0..self.regions as u16 {
                out.push(FederationAction::Round { down: Some(region) });
            }
        }
        for (app, link) in state.mirror.iter().enumerate() {
            match link {
                None => out.push(FederationAction::Open { app }),
                Some(_) => out.push(FederationAction::Close { app }),
            }
        }
    }

    fn apply(&self, state: &FederationState, action: &FederationAction) -> Option<FederationState> {
        let mut next = state.clone();
        match *action {
            FederationAction::Publish { region } => {
                next.publishes_left -= 1;
                next.published[region as usize] += 1;
                let digest = self.digest(region, next.published[region as usize]);
                next.registry.publish(RegionId::from_raw(region), digest);
            }
            FederationAction::Round { down } => {
                next.rounds_left -= 1;
                match down {
                    Some(r) => next.registry.round_with_churn(&[RegionId::from_raw(r)]),
                    None => next.registry.round(),
                }
            }
            FederationAction::Open { app } => {
                let home = RegionId::from_raw(app as u16);
                let query = self.query();
                let bids = self.solicit(&next, home);
                let winner = run_auction(&query, &bids)?.clone();
                if !winner.advertised {
                    next.violation = Some(format!(
                        "app {app} awarded a burst to region {} which never advertised \
                         (placeholder bid won the auction)",
                        winner.region.as_raw()
                    ));
                } else if !winner.feasible(&query) {
                    next.violation = Some(format!(
                        "app {app} awarded a burst to region {} on an infeasible bid",
                        winner.region.as_raw()
                    ));
                }
                if let Err(prev) = next.book.award(app as u64, winner.region) {
                    next.violation = Some(format!(
                        "double award: app {app} won region {} while still holding region {}",
                        winner.region.as_raw(),
                        prev.as_raw()
                    ));
                }
                next.mirror[app] = Some(winner.region);
            }
            FederationAction::Close { app } => {
                let released = next.book.release(app as u64);
                let expected = next.mirror[app];
                if released != expected {
                    next.violation = Some(format!(
                        "close of app {app} released {released:?}, mirror held {expected:?}"
                    ));
                }
                next.mirror[app] = None;
            }
        }
        Some(next)
    }

    fn fingerprint(&self, state: &FederationState) -> u64 {
        // Regions are distinguishable (silent peer, fixed app homes),
        // so no orbit canonicalization: hash the observable state —
        // the full view matrix, the ledger and the budgets.
        let mut views = Vec::with_capacity(self.regions * self.regions);
        for by in 0..self.regions as u16 {
            for of in 0..self.regions as u16 {
                let entry = state.registry.view(RegionId::from_raw(by), RegionId::from_raw(of));
                views.push(entry.map(|e| {
                    (
                        e.digest.version,
                        e.digest.free_mc_per_s.to_bits(),
                        e.digest.best_backlog_us.to_bits(),
                        e.published_round,
                    )
                }));
            }
        }
        let links: Vec<Option<u16>> =
            state.mirror.iter().map(|l| l.map(RegionId::as_raw)).collect();
        fingerprint_of(&(
            views,
            state.registry.round_index(),
            links,
            state.book.live() as u64,
            &state.published,
            state.publishes_left,
            state.rounds_left,
            state.violation.is_some(),
        ))
    }

    fn check(&self, state: &FederationState) -> Result<(), String> {
        if let Some(v) = &state.violation {
            return Err(v.clone());
        }
        let open = state.mirror.iter().filter(|l| l.is_some()).count();
        if state.book.live() != open {
            return Err(format!(
                "conservation: ledger holds {} live awards, {} links are open",
                state.book.live(),
                open
            ));
        }
        for (app, link) in state.mirror.iter().enumerate() {
            let ledger = state.book.winner(app as u64);
            if ledger != *link {
                return Err(format!(
                    "conservation: app {app} ledger says {ledger:?}, mirror says {link:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Limits, Outcome, Strategy};

    #[test]
    fn small_instance_reaches_fixpoint() {
        let model = FederationModel::with_budgets(3, 2, 2);
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(stats.distinct_states > 10),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn ci_instance_exceeds_ten_thousand_states() {
        let model = FederationModel::small();
        match explore(&model, Strategy::Bfs, &Limits::default()) {
            Outcome::Pass(stats) => assert!(
                stats.distinct_states >= 10_000,
                "CI instance explores {} states",
                stats.distinct_states
            ),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn silent_region_never_wins() {
        // Exhaustively: region 2 never publishes, so no reachable state
        // opens a link to it — the invariant proves it, but assert the
        // auction-level fact directly on one representative path too.
        let model = FederationModel::small();
        let mut s = model.initial_states().remove(0);
        s = model.apply(&s, &FederationAction::Publish { region: 1 }).unwrap();
        for _ in 0..2 {
            s = model.apply(&s, &FederationAction::Round { down: None }).unwrap();
        }
        let s = model.apply(&s, &FederationAction::Open { app: 0 }).unwrap();
        assert_eq!(s.mirror[0], Some(RegionId::from_raw(1)));
        model.check(&s).expect("advertised winner passes the invariant");
    }
}
