//! The mutation battery: each shipped protocol compiles in one
//! deliberately seeded bug behind its crate's `mc-mutations` feature
//! (enabled here via dev-dependencies, invisible to `cargo build` /
//! `cargo run` graphs). Every test first explores the clean instance
//! to fixpoint, then arms the bug and asserts the checker catches it
//! with a concrete counterexample trace — proving the models are wired
//! to the real implementations and the invariants have teeth.
//!
//! The switches are thread-local and exploration is single-threaded,
//! so the tests are safe under the parallel test harness.

use mc::{explore, render_trace, Limits, Model, Outcome, Strategy};

/// Arms one thread-local mutation switch for the scope of a test and
/// disarms it on drop (including on panic), so an assertion failure in
/// one test cannot leave the bug armed for later code on this thread.
struct Armed(fn(bool));

impl Armed {
    fn new(set: fn(bool)) -> Self {
        set(true);
        Armed(set)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        (self.0)(false);
    }
}

/// Explores `model` and asserts a clean pass.
fn assert_clean<M: Model>(model: &M) {
    match explore(model, Strategy::Bfs, &Limits::default()) {
        Outcome::Pass(stats) => {
            println!(
                "{}: clean run passed, {} distinct states",
                model.name(),
                stats.distinct_states
            )
        }
        Outcome::Violation { message, trace, .. } => panic!(
            "{}: clean instance violated its invariants: {message}\n{}",
            model.name(),
            render_trace(&trace)
        ),
        Outcome::LimitReached(_) => {
            panic!("{}: clean instance hit the exploration limit", model.name())
        }
    }
}

/// Explores `model` and asserts the seeded bug is caught, printing the
/// counterexample and requiring `needle` in the violation message.
fn assert_caught<M: Model>(model: &M, needle: &str) {
    match explore(model, Strategy::Bfs, &Limits::default()) {
        Outcome::Violation { message, trace, stats } => {
            println!(
                "{}: seeded bug caught after {} states: {message}\ncounterexample ({} actions):\n{}",
                model.name(),
                stats.distinct_states,
                trace.len(),
                render_trace(&trace)
            );
            assert!(
                message.contains(needle),
                "violation message {message:?} does not mention {needle:?}"
            );
            assert!(!trace.is_empty(), "violation must come with a non-empty trace");
        }
        Outcome::Pass(stats) => panic!(
            "{}: seeded bug NOT caught — explored {} states clean",
            model.name(),
            stats.distinct_states
        ),
        Outcome::LimitReached(_) => {
            panic!("{}: exploration limit hit before the seeded bug was found", model.name())
        }
    }
}

/// Election-safety mutation: a replica forgets its vote and grants
/// twice in one term, so two candidates of the same term can both
/// assemble a majority. Two election timeouts on a 3-node cluster are
/// enough; no proposals or heartbeats needed.
#[test]
fn raft_double_vote_breaks_election_safety() {
    let model = mc::raft::RaftModel::with_budgets(3, 2, 0, 0, 0);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_kb::mutation::set_raft_double_vote);
    assert_caught(&model, "election safety");
}

/// Retry-epoch mutation: the engine skips its stale-recovery guard, so
/// a crash recovery resurrects a task that already reached a terminal
/// state. The window needs a client cancel between the crash and the
/// backoff-delayed recovery event, hence the cancel budget.
#[test]
fn engine_stale_recover_resurrects_terminal_task() {
    let model = mc::retry::RetryModel::with_budgets(1, 1, 1, 1);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_continuum::mutation::set_engine_stale_recover);
    assert_caught(&model, "stale recoveries");
}

/// Admission mutation: the boundary class `priority == protect_priority`
/// loses its shed exemption, so a protected-class task gets shed once
/// the queue and rate window fill up.
#[test]
fn admission_strict_protect_sheds_protected_class() {
    let model = mc::admission::AdmissionModel::with_budgets(6, 4);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_continuum::mutation::set_admission_strict_protect);
    assert_caught(&model, "protected");
}

/// Scale-down mutation: the evicted replica is dropped from the route
/// table but its pod never releases the cluster's resource requests —
/// one scale-up followed by a scale-down leaks it.
#[test]
fn scale_down_leak_orphans_replica_resources() {
    let model = mc::scaledown::ScaleDownModel::with_budgets(2, 2);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_mirto::mutation::set_scale_down_leaks_pod);
    assert_caught(&model, "orphaned replica");
}

/// Federation mutation: the sealed-bid auction skips its feasibility
/// filter, so the silent region's zero-cost placeholder bid (no
/// published digest, no target node) beats every real advertiser —
/// the very first open escalates to a region that never advertised.
#[test]
fn federation_blind_award_bursts_to_silent_region() {
    let model = mc::federation::FederationModel::with_budgets(3, 2, 2);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_continuum::mutation::set_federation_blind_award);
    assert_caught(&model, "never advertised");
}

/// Migration mutation: the checkpoint arrival is delivered twice, so
/// the task resumes on the destination *and* resumes again — two live
/// instances of one task, the exact split-brain live migration must
/// exclude. One submission and one live migration suffice; no crashes
/// needed to expose it.
#[test]
fn migration_double_resume_breaks_single_instance() {
    let model = mc::migration::MigrationModel::with_budgets(1, 1, 0, 0);
    assert_clean(&model);
    let _armed = Armed::new(myrtus_continuum::mutation::set_migration_double_resume);
    assert_caught(&model, "exactly-one-live-instance");
}
