//! Property-based tests of the DPE's transformation invariants.

use proptest::prelude::*;

use myrtus_dpe::ir::{Actor, ActorKind, DataflowGraph};
use myrtus_dpe::mdc::compose;
use myrtus_dpe::nn::{Layer, NnModel, Shape};
use myrtus_dpe::transform::{fuse_linear_chains, partition};

fn kind_of(tag: u8) -> ActorKind {
    match tag % 4 {
        0 => ActorKind::Map,
        1 => ActorKind::Stencil,
        2 => ActorKind::Reduce,
        _ => ActorKind::Control,
    }
}

fn random_chain(spec: &[(u8, u16)]) -> DataflowGraph {
    let mut g = DataflowGraph::new("chain");
    let src = g.add_actor(Actor::new("src", ActorKind::Source, 4));
    let mut prev = src;
    for (i, (kind, ops)) in spec.iter().enumerate() {
        let a = g.add_actor(Actor::new(format!("a{i}"), kind_of(*kind), *ops as u64 + 1));
        g.connect(prev, 1, a, 1, 16);
        prev = a;
    }
    let sink = g.add_actor(Actor::new("sink", ActorKind::Sink, 4));
    g.connect(prev, 1, sink, 1, 16);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fusion preserves total work, total state and validity for any
    /// single-rate chain.
    #[test]
    fn fusion_preserves_work(spec in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..12)) {
        let g = random_chain(&spec);
        let fused = fuse_linear_chains(&g).expect("valid chain");
        prop_assert!(fused.validate().is_ok());
        prop_assert_eq!(
            g.ops_per_iteration().expect("valid"),
            fused.ops_per_iteration().expect("valid")
        );
        prop_assert!(fused.actors().len() <= g.actors().len());
    }

    /// Partitioning conserves bytes: internal channel bytes + cut bytes
    /// equal the whole graph's per-iteration bytes, for any assignment.
    #[test]
    fn partition_conserves_bytes(
        spec in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..10),
        targets in proptest::collection::vec(0usize..3, 12),
    ) {
        let g = random_chain(&spec);
        let assignment: Vec<usize> =
            (0..g.actors().len()).map(|i| targets[i % targets.len()]).collect();
        let p = partition(&g, &assignment).expect("valid");
        let internal: u64 = p
            .pieces
            .iter()
            .map(|piece| piece.graph.bytes_per_iteration().unwrap_or(0))
            .sum();
        prop_assert_eq!(
            internal + p.cut_bytes,
            g.bytes_per_iteration().expect("valid")
        );
        let total_actors: usize = p.pieces.iter().map(|x| x.graph.actors().len()).sum();
        prop_assert_eq!(total_actors, g.actors().len());
    }

    /// MDC composition never *increases* area beyond dedicated datapaths
    /// plus bounded mux overhead, and savings stay in [0, 1).
    #[test]
    fn mdc_savings_are_bounded(
        spec_a in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..6),
        spec_b in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..6),
    ) {
        let a = random_chain(&spec_a);
        let mut b = random_chain(&spec_b);
        b.name = "chain-b".into();
        let comp = compose(&[a, b]).expect("valid");
        let report = comp.area_report();
        let savings = report.savings();
        prop_assert!(savings < 1.0, "savings {savings}");
        prop_assert!(
            report.composed.area_units() <= report.dedicated.area_units(),
            "sharing cannot cost more than duplication"
        );
        // Extracted configurations stay valid.
        for cfg in 0..comp.configs {
            prop_assert!(comp.configuration(cfg).validate().is_ok());
        }
    }

    /// Any well-shaped sequential NN lowers to a valid dataflow graph
    /// whose actor count is layers + 2.
    #[test]
    fn nn_models_lower_validly(
        channels in proptest::collection::vec(1u32..24, 1..5),
        kernel in 1u32..5,
        dense_out in 1u32..64,
    ) {
        let mut m = NnModel::new("gen", Shape::new(3, 16, 16));
        for &c in &channels {
            m = m.with_layer(Layer::Conv2d { out_channels: c, kernel });
            m = m.with_layer(Layer::Relu);
        }
        m = m.with_layer(Layer::MaxPool { window: 2 });
        m = m.with_layer(Layer::Dense { outputs: dense_out });
        let g = m.lower().expect("lowers");
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.actors().len(), m.layers.len() + 2);
        prop_assert!(m.total_ops().expect("valid") > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel and serial design-space exploration are bit-identical
    /// for the same inputs — across both the exhaustive branch (short
    /// chains) and the seeded sampling branch (long chains).
    #[test]
    fn parallel_and_serial_exploration_agree(
        spec in proptest::collection::vec((any::<u8>(), 1u16..400), 1..11),
        seed in any::<u16>(),
        samples in 1usize..10,
    ) {
        let g = random_chain(&spec);
        let platform = myrtus_dpe::standard_edge_platform();
        let par = myrtus_dpe::explore(&g, &platform, seed as u64, samples)
            .expect("valid graph");
        let ser = myrtus_dpe::dse::explore_serial(&g, &platform, seed as u64, samples)
            .expect("valid graph");
        prop_assert_eq!(par.points, ser.points);
        prop_assert_eq!(par.front, ser.front);
    }
}
