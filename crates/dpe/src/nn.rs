//! Neural-network model import (the ONNX / torch-MLIR front-end analog).
//!
//! The DPE "already takes in … ML models in ONNX format" and ref \[26\]
//! describes an ONNX-to-hardware flow for adaptive inference. This
//! module provides the typed model description such a front-end
//! produces — a sequential [`NnModel`] of convolution / dense / pooling
//! / activation layers — and lowers it to the dataflow IR with exact
//! per-layer operation counts, ready for HLS, MDC and the DSE.

use serde::{Deserialize, Serialize};

use crate::ir::{Actor, ActorKind, DataflowGraph, IrError};

/// A tensor shape `(channels, height, width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl Shape {
    /// Creates a shape.
    pub fn new(c: u32, h: u32, w: u32) -> Self {
        Shape { c, h, w }
    }

    /// Elements in the tensor.
    pub fn elements(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }
}

/// One layer of a sequential model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution with square `kernel`, `out_channels` filters,
    /// stride 1, same padding.
    Conv2d {
        /// Output channels.
        out_channels: u32,
        /// Kernel side length.
        kernel: u32,
    },
    /// Fully connected layer to `outputs` neurons (flattens its input).
    Dense {
        /// Output neurons.
        outputs: u32,
    },
    /// Max pooling with a square window (stride = window).
    MaxPool {
        /// Window side length.
        window: u32,
    },
    /// Element-wise ReLU.
    Relu,
}

/// Errors lowering a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// The model has no layers.
    Empty,
    /// A pooling window does not divide the spatial size.
    BadPooling {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The lowered graph failed IR validation.
    Ir(IrError),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Empty => f.write_str("model has no layers"),
            NnError::BadPooling { layer } => {
                write!(f, "layer {layer}: pooling window does not divide the input")
            }
            NnError::Ir(e) => write!(f, "lowered graph invalid: {e}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<IrError> for NnError {
    fn from(e: IrError) -> Self {
        NnError::Ir(e)
    }
}

/// A sequential inference model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnModel {
    /// Model name.
    pub name: String,
    /// Input tensor shape.
    pub input: Shape,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl NnModel {
    /// Creates a model.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        NnModel { name: name.into(), input, layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn with_layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Output shapes after each layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadPooling`] for non-dividing pool windows and
    /// [`NnError::Empty`] for layer-less models.
    pub fn shapes(&self) -> Result<Vec<Shape>, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::Empty);
        }
        let mut cur = self.input;
        let mut out = Vec::with_capacity(self.layers.len());
        for (i, l) in self.layers.iter().enumerate() {
            cur = match l {
                Layer::Conv2d { out_channels, .. } => Shape::new(*out_channels, cur.h, cur.w),
                Layer::Dense { outputs } => Shape::new(*outputs, 1, 1),
                Layer::MaxPool { window } => {
                    if *window == 0
                        || !cur.h.is_multiple_of(*window)
                        || !cur.w.is_multiple_of(*window)
                    {
                        return Err(NnError::BadPooling { layer: i });
                    }
                    Shape::new(cur.c, cur.h / window, cur.w / window)
                }
                Layer::Relu => cur,
            };
            out.push(cur);
        }
        Ok(out)
    }

    /// Multiply-accumulate (and comparison) operations per layer.
    pub fn ops_per_layer(&self) -> Result<Vec<u64>, NnError> {
        let shapes = self.shapes()?;
        let mut prev = self.input;
        let mut ops = Vec::with_capacity(self.layers.len());
        for (l, out) in self.layers.iter().zip(&shapes) {
            let o = match l {
                Layer::Conv2d { kernel, .. } => {
                    out.elements() * prev.c as u64 * (*kernel as u64) * (*kernel as u64) * 2
                }
                Layer::Dense { .. } => prev.elements() * out.elements() * 2,
                Layer::MaxPool { window } => out.elements() * (*window as u64) * (*window as u64),
                Layer::Relu => out.elements(),
            };
            ops.push(o);
            prev = *out;
        }
        Ok(ops)
    }

    /// Total operations of one inference.
    pub fn total_ops(&self) -> Result<u64, NnError> {
        Ok(self.ops_per_layer()?.iter().sum())
    }

    /// Lowers the model to a validated dataflow graph: one actor per
    /// layer plus source/sink, channels carrying the inter-layer tensor
    /// volumes (1 byte per element, quantized inference).
    ///
    /// # Errors
    ///
    /// Propagates shape and IR validation errors.
    pub fn lower(&self) -> Result<DataflowGraph, NnError> {
        let shapes = self.shapes()?;
        let ops = self.ops_per_layer()?;
        // Ops are per-inference; the dataflow actor fires once per
        // inference, so ops_per_firing = per-layer ops. Scale down to
        // kilo-ops to keep HLS II estimates in a practical range.
        let mut g = DataflowGraph::new(self.name.clone());
        let src = g.add_actor(Actor::new("input", ActorKind::Source, 8));
        let mut prev = src;
        let mut prev_bytes = self.input.elements();
        for (i, (l, out)) in self.layers.iter().zip(&shapes).enumerate() {
            let (kind, name) = match l {
                Layer::Conv2d { kernel, .. } => {
                    (ActorKind::Stencil, format!("conv{i}_{kernel}x{kernel}"))
                }
                Layer::Dense { .. } => (ActorKind::Map, format!("dense{i}")),
                Layer::MaxPool { .. } => (ActorKind::Reduce, format!("pool{i}")),
                Layer::Relu => (ActorKind::Map, format!("relu{i}")),
            };
            let weight_bytes = match l {
                Layer::Conv2d { out_channels, kernel } => {
                    *out_channels as u64 * (*kernel as u64).pow(2)
                }
                Layer::Dense { outputs } => *outputs as u64 * 16,
                _ => 0,
            };
            let a = g.add_actor(
                Actor::new(name, kind, (ops[i] / 1_000).max(1)).with_state_bytes(weight_bytes),
            );
            g.connect(prev, 1, a, 1, prev_bytes);
            prev = a;
            prev_bytes = out.elements();
        }
        let sink = g.add_actor(Actor::new("output", ActorKind::Sink, 8));
        g.connect(prev, 1, sink, 1, prev_bytes);
        g.validate()?;
        Ok(g)
    }
}

/// The reference pose-estimation backbone of the telerehabilitation
/// use case as an importable model (ref \[26\] style).
pub fn pose_backbone() -> NnModel {
    NnModel::new("pose-backbone", Shape::new(3, 64, 64))
        .with_layer(Layer::Conv2d { out_channels: 16, kernel: 3 })
        .with_layer(Layer::Relu)
        .with_layer(Layer::MaxPool { window: 2 })
        .with_layer(Layer::Conv2d { out_channels: 32, kernel: 3 })
        .with_layer(Layer::Relu)
        .with_layer(Layer::MaxPool { window: 2 })
        .with_layer(Layer::Dense { outputs: 34 }) // 17 keypoints × (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_propagate() {
        let m = pose_backbone();
        let shapes = m.shapes().expect("valid");
        assert_eq!(shapes[0], Shape::new(16, 64, 64));
        assert_eq!(shapes[2], Shape::new(16, 32, 32));
        assert_eq!(shapes[5], Shape::new(32, 16, 16));
        assert_eq!(shapes.last(), Some(&Shape::new(34, 1, 1)));
    }

    #[test]
    fn conv_ops_match_formula() {
        let m = NnModel::new("t", Shape::new(3, 8, 8))
            .with_layer(Layer::Conv2d { out_channels: 4, kernel: 3 });
        // out elements = 4*8*8 = 256; ops = 256 * 3 * 9 * 2 = 13824.
        assert_eq!(m.ops_per_layer().expect("valid"), vec![13_824]);
    }

    #[test]
    fn bad_pooling_is_rejected() {
        let m = NnModel::new("t", Shape::new(1, 7, 7)).with_layer(Layer::MaxPool { window: 2 });
        assert_eq!(m.shapes(), Err(NnError::BadPooling { layer: 0 }));
        let empty = NnModel::new("e", Shape::new(1, 1, 1));
        assert_eq!(empty.shapes(), Err(NnError::Empty));
    }

    #[test]
    fn lowering_produces_a_valid_graph() {
        let g = pose_backbone().lower().expect("lowers");
        g.validate().expect("valid IR");
        // source + 7 layers + sink.
        assert_eq!(g.actors().len(), 9);
        assert!(g.actor_by_name("conv0_3x3").is_some());
        assert!(g.actor_by_name("dense6").is_some());
        // Channel volumes shrink through pooling.
        let first = g.channels()[0].token_bytes;
        let last = g.channels().last().expect("non-empty").token_bytes;
        assert!(first > last);
    }

    #[test]
    fn lowered_model_flows_into_hls_and_dse() {
        let g = pose_backbone().lower().expect("lowers");
        let est = crate::hls::estimate_graph(&g).expect("estimates");
        assert!(est.cycles_per_iteration > 0);
        let dse =
            crate::dse::explore(&g, &crate::dse::standard_edge_platform(), 1, 6).expect("explores");
        assert!(!dse.front.is_empty());
    }

    #[test]
    fn total_ops_are_conv_dominated() {
        let m = pose_backbone();
        let ops = m.ops_per_layer().expect("valid");
        let total = m.total_ops().expect("valid");
        let convs: u64 = ops[0] + ops[3];
        assert!(convs * 10 > total * 8, "convs dominate: {convs} of {total}");
    }
}
