//! The three-step DPE flow of paper Fig. 4.
//!
//! 1. **Continuum modeling, simulation and analysis** — validate the
//!    TOSCA model, estimate model-based KPIs (end-to-end latency lower
//!    bound), build the Attack-Defence Tree and synthesize
//!    countermeasures.
//! 2. **Model to implementation** — portion the application into
//!    software components and acceleratable kernels (resolved from the
//!    kernel library and fused).
//! 3. **Node-level optimisation and deployment** — HLS-estimate the
//!    kernels, run the DSE for the mapping metadata, and emit the
//!    deployment specification (executables, bitstreams, swarm rules,
//!    countermeasure snippets, operating points) for MIRTO.

use serde::{Deserialize, Serialize};

use myrtus_security::adt::{standard_defense_library, Adt, Gate};
use myrtus_workload::graph::RequestDag;
use myrtus_workload::opset::AppPointSet;
use myrtus_workload::tosca::{Application, SecurityTier, ValidateAppError};

use crate::deploy::{Artifact, ArtifactKind, DeploymentSpec};
use crate::dse::{explore, standard_edge_platform, DseResult};
use crate::hls::estimate_graph;
use crate::ir::{DataflowGraph, IrError};
use crate::kernels::kernel_for;
use crate::transform::fuse_linear_chains;

/// Errors across the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The application topology is invalid.
    Topology(ValidateAppError),
    /// A kernel graph is invalid.
    Kernel(IrError),
    /// A component requests an unknown accelerator configuration.
    UnknownKernel {
        /// The component.
        component: String,
        /// The unresolved configuration id.
        accel_cfg: u32,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Topology(e) => write!(f, "topology: {e}"),
            FlowError::Kernel(e) => write!(f, "kernel: {e}"),
            FlowError::UnknownKernel { component, accel_cfg } => {
                write!(f, "component {component:?} requests unknown kernel {accel_cfg}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ValidateAppError> for FlowError {
    fn from(e: ValidateAppError) -> Self {
        FlowError::Topology(e)
    }
}

impl From<IrError> for FlowError {
    fn from(e: IrError) -> Self {
        FlowError::Kernel(e)
    }
}

/// Step-1 output: KPI estimates and threat analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Lower-bound end-to-end latency (reference platform), microseconds.
    pub critical_path_us: f64,
    /// Root attack success probability with no defenses.
    pub base_risk: f64,
    /// Synthesized countermeasure names.
    pub countermeasures: Vec<String>,
    /// Residual risk after countermeasures.
    pub residual_risk: f64,
}

/// Step-1: modeling, simulation and analysis.
///
/// # Errors
///
/// Returns [`FlowError::Topology`] for invalid applications.
pub fn step1_analyze(app: &Application) -> Result<AnalysisReport, FlowError> {
    let dag = RequestDag::from_application(app)?;
    // Reference platform: a 1.5 GHz core (1.5e-3 mc/µs) and 100 Mbit/s
    // links (12.5 bytes/µs).
    let cp = dag.critical_path(1.5e-3, 12.5);

    // ADT: the root goal "compromise application data" is reachable by
    // eavesdropping any under-protected connection OR breaching the
    // weakest host running a sensitive component.
    let mut adt = Adt::new();
    // Root leaf placeholder replaced by a built tree: node 0 must be root.
    let eaves_prob = |tier: SecurityTier| match tier {
        SecurityTier::Low => 0.5,
        SecurityTier::Medium => 0.3,
        SecurityTier::High => 0.15,
    };
    // Build leaves after root: create root as OR over children added next.
    // Adt requires children ids before the inner node, so build leaves
    // first into a staging Vec, then the root — but root must be node 0.
    // Trick: create a staging tree, then rebuild with root first.
    let mut staging: Vec<(String, f64)> = Vec::new();
    for conn in &app.connections {
        let tier =
            app.component(&conn.to).map(|c| c.requirements.security).unwrap_or(SecurityTier::Low);
        staging.push((format!("eavesdrop:{}->{}", conn.from, conn.to), eaves_prob(tier)));
    }
    for comp in &app.components {
        if comp.requirements.security >= SecurityTier::Medium {
            staging.push((format!("breach-host:{}", comp.name), 0.25));
        }
    }
    if staging.is_empty() {
        staging.push(("opportunistic-probe".to_string(), 0.2));
    }
    // Root at index 0: an OR gate whose children follow.
    let child_ids: Vec<usize> = (1..=staging.len()).collect();
    adt.inner("compromise-application-data", Gate::Or, child_ids);
    let mut leaf_ids = Vec::new();
    for (name, prob) in &staging {
        leaf_ids.push(adt.leaf(name.clone(), *prob));
    }
    let defenses = standard_defense_library(&mut adt);
    // Attach: link-encryption defenses to eavesdrop leaves, host defenses
    // to breach leaves.
    for (&leaf, (name, _)) in leaf_ids.iter().zip(&staging) {
        if name.starts_with("eavesdrop") {
            for &d in &defenses[0..3] {
                let _ = adt.attach(leaf, d);
            }
        } else {
            for &d in &defenses[3..6] {
                let _ = adt.attach(leaf, d);
            }
        }
    }
    let base_risk = adt.success_probability(0, &[]).expect("tree is non-empty");
    let (picked, residual_risk) = adt.synthesize(8.0, 0.05).expect("tree is non-empty");
    let countermeasures = picked.iter().map(|&d| adt.defenses()[d].name.clone()).collect();
    Ok(AnalysisReport {
        critical_path_us: cp.as_micros() as f64,
        base_risk,
        countermeasures,
        residual_risk,
    })
}

/// Step-2 output: the portioned application.
#[derive(Debug, Clone, PartialEq)]
pub struct PortionedApp {
    /// The source application.
    pub app: Application,
    /// Components compiled as plain software.
    pub sw_components: Vec<String>,
    /// Components with accelerator kernels: `(component, fused graph)`.
    pub hw_kernels: Vec<(String, DataflowGraph)>,
}

/// Step-2: model → implementation portioning.
///
/// # Errors
///
/// Returns [`FlowError::UnknownKernel`] for unresolved accelerator ids.
pub fn step2_portion(app: &Application) -> Result<PortionedApp, FlowError> {
    app.validate()?;
    let mut sw = Vec::new();
    let mut hw = Vec::new();
    for comp in &app.components {
        match comp.requirements.accel_cfg {
            Some(cfg) => {
                let graph = kernel_for(cfg).ok_or_else(|| FlowError::UnknownKernel {
                    component: comp.name.clone(),
                    accel_cfg: cfg,
                })?;
                hw.push((comp.name.clone(), fuse_linear_chains(&graph)?));
            }
            None => sw.push(comp.name.clone()),
        }
    }
    Ok(PortionedApp { app: app.clone(), sw_components: sw, hw_kernels: hw })
}

/// Step-3 output bundle.
#[derive(Debug, Clone)]
pub struct NodeLevelResult {
    /// The deployment specification for MIRTO.
    pub spec: DeploymentSpec,
    /// Per-kernel DSE results, component order.
    pub dse: Vec<(String, DseResult)>,
}

/// Step-3: node-level optimisation and deployment generation.
///
/// # Errors
///
/// Propagates kernel estimation / exploration errors.
pub fn step3_generate(
    portioned: &PortionedApp,
    analysis: &AnalysisReport,
) -> Result<NodeLevelResult, FlowError> {
    let mut artifacts = Vec::new();
    for name in &portioned.sw_components {
        let work = portioned.app.component(name).map(|c| c.requirements.work_mc).unwrap_or(1.0);
        artifacts.push(Artifact {
            name: format!("{name}.elf"),
            kind: ArtifactKind::Executable,
            component: name.clone(),
            size_bytes: 64_000 + (work * 2_000.0) as u64,
        });
    }
    let platform = standard_edge_platform();
    let mut dse_results = Vec::new();
    for (name, graph) in &portioned.hw_kernels {
        let est = estimate_graph(graph)?;
        artifacts.push(Artifact {
            name: format!("{name}.bit"),
            kind: ArtifactKind::Bitstream,
            component: name.clone(),
            // Bitstream size scales with the configured fabric area.
            size_bytes: 200_000 + est.total_resources.area_units() * 16,
        });
        let dse = explore(graph, &platform, 11, 8)?;
        dse_results.push((name.clone(), dse));
    }
    artifacts.push(Artifact {
        name: "swarm-rules.frevo".into(),
        kind: ArtifactKind::SwarmRules,
        component: "mirto-manager".into(),
        size_bytes: 4_096,
    });
    for cm in &analysis.countermeasures {
        artifacts.push(Artifact {
            name: format!("{cm}.snippet"),
            kind: ArtifactKind::Countermeasure,
            component: "security".into(),
            size_bytes: 2_048,
        });
    }
    let spec = DeploymentSpec {
        application: portioned.app.clone(),
        artifacts,
        operating_points: AppPointSet::standard_ladder(),
        estimated_latency_us: analysis.critical_path_us,
        residual_risk: analysis.residual_risk,
    };
    Ok(NodeLevelResult { spec, dse: dse_results })
}

/// Runs all three steps end to end.
///
/// # Errors
///
/// Propagates the first failing step's error.
pub fn run_flow(app: &Application) -> Result<NodeLevelResult, FlowError> {
    let analysis = step1_analyze(app)?;
    let portioned = step2_portion(app)?;
    step3_generate(&portioned, &analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_workload::scenarios;

    #[test]
    fn analysis_produces_kpis_and_countermeasures() {
        let report = step1_analyze(&scenarios::telerehab()).expect("valid");
        assert!(report.critical_path_us > 0.0);
        assert!(report.base_risk > 0.0 && report.base_risk <= 1.0);
        assert!(report.residual_risk < report.base_risk);
        assert!(!report.countermeasures.is_empty());
    }

    #[test]
    fn portioning_splits_sw_and_hw() {
        let p = step2_portion(&scenarios::telerehab()).expect("valid");
        // camera, score, session-store are software; preproc & pose have
        // kernels.
        assert_eq!(p.sw_components.len(), 3);
        assert_eq!(p.hw_kernels.len(), 2);
        for (_, g) in &p.hw_kernels {
            g.validate().expect("fused kernels stay valid");
        }
    }

    #[test]
    fn unknown_kernel_is_reported() {
        let mut app = scenarios::telerehab();
        app.components[2].requirements.accel_cfg = Some(777);
        let err = step2_portion(&app).expect_err("unknown kernel");
        assert!(matches!(err, FlowError::UnknownKernel { accel_cfg: 777, .. }));
    }

    #[test]
    fn full_flow_emits_a_complete_package() {
        let result = run_flow(&scenarios::telerehab()).expect("valid");
        let spec = &result.spec;
        let kinds: Vec<ArtifactKind> = spec.artifacts.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&ArtifactKind::Executable));
        assert!(kinds.contains(&ArtifactKind::Bitstream));
        assert!(kinds.contains(&ArtifactKind::SwarmRules));
        assert!(kinds.contains(&ArtifactKind::Countermeasure));
        assert!(spec.estimated_latency_us > 0.0);
        assert_eq!(result.dse.len(), 2);
        for (name, dse) in &result.dse {
            assert!(!dse.front.is_empty(), "{name} has a Pareto front");
        }
        // Spec round-trips through the package format.
        let text = spec.to_package();
        let back = DeploymentSpec::from_package(&text).expect("parses");
        assert_eq!(&back, spec);
    }

    #[test]
    fn flow_handles_mobility_scenario_too() {
        let result = run_flow(&scenarios::smart_mobility()).expect("valid");
        assert_eq!(result.dse.len(), 2, "detect + fusion kernels");
        assert!(result.spec.artifacts.iter().any(|a| a.name == "detect.bit"));
    }

    #[test]
    fn invalid_topology_fails_step1() {
        let app = Application::new(
            "empty",
            myrtus_workload::arrival::ArrivalSpec::periodic(
                myrtus_continuum::time::SimDuration::from_millis(1),
                1,
            ),
        );
        assert!(matches!(step1_analyze(&app), Err(FlowError::Topology(_))));
    }
}
