//! Deployment specification packages (the `.csar` analog).
//!
//! The DPE "creates the deployment specification for the continuum,
//! including all the executables and configuration files", and "exports
//! meta-information with non-functional properties … to aid the MIRTO
//! Cognitive Engine in runtime decision-making" (paper Sect. V). A
//! [`DeploymentSpec`] bundles the TOSCA-lite profile, generated
//! artifacts (executables, bitstreams, swarm-rule files, countermeasure
//! snippets) and the operating-point metadata of refs \[29\]\[30\]; it
//! serializes to a single text "archive" with a validating parser.

use serde::{Deserialize, Serialize};

use myrtus_workload::opset::{AppOperatingPoint, AppPointSet};
use myrtus_workload::tosca::{Application, ParseProfileError};

/// Kind of a generated artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactKind {
    /// Host/CPU executable.
    Executable,
    /// FPGA (partial) bitstream.
    Bitstream,
    /// CGRA configuration stream.
    CgraConfig,
    /// Swarm-agent local-rule file.
    SwarmRules,
    /// Synthesized threat countermeasure snippet.
    Countermeasure,
}

impl ArtifactKind {
    fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::Executable => "executable",
            ArtifactKind::Bitstream => "bitstream",
            ArtifactKind::CgraConfig => "cgra-config",
            ArtifactKind::SwarmRules => "swarm-rules",
            ArtifactKind::Countermeasure => "countermeasure",
        }
    }

    fn parse(s: &str) -> Option<ArtifactKind> {
        match s {
            "executable" => Some(ArtifactKind::Executable),
            "bitstream" => Some(ArtifactKind::Bitstream),
            "cgra-config" => Some(ArtifactKind::CgraConfig),
            "swarm-rules" => Some(ArtifactKind::SwarmRules),
            "countermeasure" => Some(ArtifactKind::Countermeasure),
            _ => None,
        }
    }
}

/// One generated artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artifact {
    /// Artifact name (e.g. `pose.bit`).
    pub name: String,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Component the artifact implements.
    pub component: String,
    /// Estimated size in bytes.
    pub size_bytes: u64,
}

/// The full deployment specification handed from pillar 3 to pillar 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// The application topology.
    pub application: Application,
    /// Generated artifacts.
    pub artifacts: Vec<Artifact>,
    /// Operating points exported as runtime metadata.
    pub operating_points: AppPointSet,
    /// Model-based KPI estimate: end-to-end latency, microseconds.
    pub estimated_latency_us: f64,
    /// Residual threat risk after countermeasure synthesis, `[0, 1]`.
    pub residual_risk: f64,
}

/// Errors parsing a package.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsePackageError {
    /// Structural problem at a line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Embedded TOSCA profile failed to parse.
    Profile(ParseProfileError),
}

impl std::fmt::Display for ParsePackageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParsePackageError::Malformed { line, message } => {
                write!(f, "package line {line}: {message}")
            }
            ParsePackageError::Profile(e) => write!(f, "embedded profile: {e}"),
        }
    }
}

impl std::error::Error for ParsePackageError {}

impl DeploymentSpec {
    /// Serializes the spec to the textual package format.
    pub fn to_package(&self) -> String {
        let mut out = String::from("CSAR myrtus-lite 1\n");
        out.push_str(&format!(
            "meta estimated_latency_us={} residual_risk={}\n",
            self.estimated_latency_us, self.residual_risk
        ));
        for p in self.operating_points.iter() {
            out.push_str(&format!(
                "oppoint name={} work_scale={} bytes_scale={} quality={}\n",
                p.name, p.work_scale, p.bytes_scale, p.quality
            ));
        }
        for a in &self.artifacts {
            out.push_str(&format!(
                "artifact name={} kind={} component={} bytes={}\n",
                a.name,
                a.kind.as_str(),
                a.component,
                a.size_bytes
            ));
        }
        out.push_str("profile-begin\n");
        out.push_str(&self.application.to_profile());
        out.push_str("profile-end\n");
        out
    }

    /// Parses a textual package.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePackageError`] on malformed input.
    pub fn from_package(text: &str) -> Result<DeploymentSpec, ParsePackageError> {
        let mal = |line: usize, message: &str| ParsePackageError::Malformed {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| mal(1, "empty package"))?;
        if header != "CSAR myrtus-lite 1" {
            return Err(mal(1, "bad header"));
        }
        let mut latency = 0.0f64;
        let mut risk = 0.0f64;
        let mut points = Vec::new();
        let mut artifacts = Vec::new();
        let mut profile = String::new();
        let mut in_profile = false;
        let mut saw_profile = false;
        for (i, raw) in lines {
            let lineno = i + 1;
            if in_profile {
                if raw == "profile-end" {
                    in_profile = false;
                } else {
                    profile.push_str(raw);
                    profile.push('\n');
                }
                continue;
            }
            let mut toks = raw.split_whitespace();
            let kv = |tok: &str| -> Option<(String, String)> {
                tok.split_once('=').map(|(k, v)| (k.to_string(), v.to_string()))
            };
            match toks.next() {
                Some("meta") => {
                    for t in toks {
                        let (k, v) = kv(t).ok_or_else(|| mal(lineno, "bad meta token"))?;
                        match k.as_str() {
                            "estimated_latency_us" => {
                                latency = v.parse().map_err(|_| mal(lineno, "bad latency"))?;
                            }
                            "residual_risk" => {
                                risk = v.parse().map_err(|_| mal(lineno, "bad risk"))?;
                            }
                            _ => return Err(mal(lineno, "unknown meta key")),
                        }
                    }
                }
                Some("oppoint") => {
                    let mut name = None;
                    let mut ws = None;
                    let mut bs = None;
                    let mut q = None;
                    for t in toks {
                        let (k, v) = kv(t).ok_or_else(|| mal(lineno, "bad oppoint token"))?;
                        match k.as_str() {
                            "name" => name = Some(v),
                            "work_scale" => ws = v.parse().ok(),
                            "bytes_scale" => bs = v.parse().ok(),
                            "quality" => q = v.parse().ok(),
                            _ => return Err(mal(lineno, "unknown oppoint key")),
                        }
                    }
                    match (name, ws, bs, q) {
                        (Some(n), Some(w), Some(b), Some(q)) => {
                            points.push(AppOperatingPoint::new(n, w, b, q));
                        }
                        _ => return Err(mal(lineno, "incomplete oppoint")),
                    }
                }
                Some("artifact") => {
                    let mut name = None;
                    let mut kind = None;
                    let mut component = None;
                    let mut bytes = None;
                    for t in toks {
                        let (k, v) = kv(t).ok_or_else(|| mal(lineno, "bad artifact token"))?;
                        match k.as_str() {
                            "name" => name = Some(v),
                            "kind" => kind = ArtifactKind::parse(&v),
                            "component" => component = Some(v),
                            "bytes" => bytes = v.parse().ok(),
                            _ => return Err(mal(lineno, "unknown artifact key")),
                        }
                    }
                    match (name, kind, component, bytes) {
                        (Some(n), Some(k), Some(c), Some(b)) => artifacts.push(Artifact {
                            name: n,
                            kind: k,
                            component: c,
                            size_bytes: b,
                        }),
                        _ => return Err(mal(lineno, "incomplete artifact")),
                    }
                }
                Some("profile-begin") => {
                    in_profile = true;
                    saw_profile = true;
                }
                Some(other) => return Err(mal(lineno, &format!("unknown directive {other:?}"))),
                None => {}
            }
        }
        if in_profile || !saw_profile {
            return Err(mal(0, "missing or unterminated profile section"));
        }
        if points.is_empty() {
            return Err(mal(0, "package has no operating points"));
        }
        let application =
            Application::from_profile(&profile).map_err(ParsePackageError::Profile)?;
        Ok(DeploymentSpec {
            application,
            artifacts,
            operating_points: AppPointSet::new(points),
            estimated_latency_us: latency,
            residual_risk: risk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_workload::scenarios;

    fn spec() -> DeploymentSpec {
        DeploymentSpec {
            application: scenarios::telerehab(),
            artifacts: vec![
                Artifact {
                    name: "pose.bit".into(),
                    kind: ArtifactKind::Bitstream,
                    component: "pose".into(),
                    size_bytes: 2_200_000,
                },
                Artifact {
                    name: "score.elf".into(),
                    kind: ArtifactKind::Executable,
                    component: "score".into(),
                    size_bytes: 180_000,
                },
            ],
            operating_points: AppPointSet::standard_ladder(),
            estimated_latency_us: 42_000.0,
            residual_risk: 0.12,
        }
    }

    #[test]
    fn package_round_trips() {
        let s = spec();
        let text = s.to_package();
        let back = DeploymentSpec::from_package(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn bad_header_rejected() {
        let err = DeploymentSpec::from_package("ZIP whatever\n").expect_err("rejected");
        assert!(matches!(err, ParsePackageError::Malformed { line: 1, .. }));
    }

    #[test]
    fn missing_profile_rejected() {
        let text = "CSAR myrtus-lite 1\nmeta estimated_latency_us=1 residual_risk=0\noppoint name=full work_scale=1 bytes_scale=1 quality=1\n";
        assert!(DeploymentSpec::from_package(text).is_err());
    }

    #[test]
    fn unterminated_profile_rejected() {
        let mut text = spec().to_package();
        text.truncate(text.len() - "profile-end\n".len());
        assert!(DeploymentSpec::from_package(&text).is_err());
    }

    #[test]
    fn embedded_profile_errors_surface() {
        let text = "CSAR myrtus-lite 1\noppoint name=full work_scale=1 bytes_scale=1 quality=1\nprofile-begin\napp x\nwhatisthis\nprofile-end\n";
        let err = DeploymentSpec::from_package(text).expect_err("rejected");
        assert!(matches!(err, ParsePackageError::Profile(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn artifact_kinds_round_trip() {
        for k in [
            ArtifactKind::Executable,
            ArtifactKind::Bitstream,
            ArtifactKind::CgraConfig,
            ArtifactKind::SwarmRules,
            ArtifactKind::Countermeasure,
        ] {
            assert_eq!(ArtifactKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ArtifactKind::parse("nope"), None);
    }
}
