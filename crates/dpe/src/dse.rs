//! Design-space exploration over heterogeneous targets (the Mocasin
//! analog).
//!
//! Given a dataflow graph and a platform of processing elements — CPUs,
//! FPGA fabric, CGRA-extended RISC-V cores — the DSE maps every actor to
//! a PE and evaluates (latency, energy, area-feasibility) per iteration.
//! Small spaces are enumerated exhaustively; larger ones use seeded
//! random restarts with greedy polish. The result is the Pareto front
//! the designer (and MIRTO's deployment metadata) consumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::hls::{estimate_actor, Resources};
use crate::ir::{DataflowGraph, IrError};

/// One processing element of the target platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pe {
    /// Software core: `ops_per_cycle` sustained at `mhz`.
    Cpu {
        /// Clock in MHz.
        mhz: f64,
        /// Sustained operations per cycle.
        ops_per_cycle: f64,
        /// Active power, watts.
        active_w: f64,
    },
    /// FPGA fabric region: actors run at their HLS II under `clock_mhz`,
    /// within `budget` resources.
    Fpga {
        /// Fabric clock in MHz.
        clock_mhz: f64,
        /// Resource budget of the region.
        budget: Resources,
        /// Active power, watts.
        active_w: f64,
    },
    /// CGRA-extended RISC-V: software core with a spatial-datapath
    /// speedup for regular (Map/Stencil/Reduce) actors.
    RiscvCgra {
        /// Clock in MHz.
        mhz: f64,
        /// Speedup over plain software for regular actors.
        speedup: f64,
        /// Active power, watts.
        active_w: f64,
    },
}

use Pe::{Cpu, Fpga, RiscvCgra};

/// An actor→PE assignment.
pub type Mapping = Vec<usize>;

/// Evaluation of one mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingEval {
    /// Steady-state latency of one graph iteration, microseconds.
    pub latency_us: f64,
    /// Energy per iteration, millijoules.
    pub energy_mj: f64,
    /// Whether FPGA budgets are respected.
    pub feasible: bool,
}

/// Interconnect model: bytes per microsecond between distinct PEs.
const INTERCONNECT_BYTES_PER_US: f64 = 1_000.0;

/// Evaluates one mapping of `graph` onto `platform`.
///
/// # Errors
///
/// Propagates graph validation errors.
pub fn evaluate_mapping(
    graph: &DataflowGraph,
    platform: &[Pe],
    mapping: &Mapping,
) -> Result<MappingEval, IrError> {
    let reps = graph.repetition_vector()?;
    let mut pe_busy_us = vec![0.0f64; platform.len()];
    let mut pe_fpga_use = vec![Resources::default(); platform.len()];
    let mut feasible = mapping.len() == graph.actors().len();
    for (i, actor) in graph.actors().iter().enumerate() {
        let Some(&p) = mapping.get(i) else {
            feasible = false;
            continue;
        };
        if p >= platform.len() {
            feasible = false;
            continue;
        }
        let firings = reps[i] as f64;
        let est = estimate_actor(actor);
        match &platform[p] {
            Cpu { mhz, ops_per_cycle, .. } => {
                let cycles = actor.ops_per_firing as f64 / ops_per_cycle;
                pe_busy_us[p] += firings * cycles / mhz;
            }
            Fpga { clock_mhz, .. } => {
                pe_busy_us[p] += firings * est.ii as f64 / clock_mhz;
                pe_fpga_use[p] = pe_fpga_use[p].saturating_add(est.resources);
            }
            RiscvCgra { mhz, speedup, .. } => {
                let accel = match actor.kind {
                    crate::ir::ActorKind::Map
                    | crate::ir::ActorKind::Stencil
                    | crate::ir::ActorKind::Reduce => *speedup,
                    _ => 1.0,
                };
                pe_busy_us[p] += firings * actor.ops_per_firing as f64 / (mhz * accel);
            }
        }
    }
    for (p, pe) in platform.iter().enumerate() {
        if let Fpga { budget, .. } = pe {
            if pe_fpga_use[p].luts > budget.luts
                || pe_fpga_use[p].dsps > budget.dsps
                || pe_fpga_use[p].brams > budget.brams
            {
                feasible = false;
            }
        }
    }
    // Communication: channel bytes crossing PEs over the interconnect.
    let mut comm_us = 0.0;
    for c in graph.channels() {
        let (Some(&pf), Some(&pt)) = (mapping.get(c.from), mapping.get(c.to)) else { continue };
        if pf != pt {
            let bytes = reps[c.from] as f64 * c.produce as f64 * c.token_bytes as f64;
            comm_us += bytes / INTERCONNECT_BYTES_PER_US;
        }
    }
    let compute_us = pe_busy_us.iter().copied().fold(0.0, f64::max);
    let latency_us = compute_us + comm_us;
    let energy_mj: f64 = pe_busy_us
        .iter()
        .zip(platform)
        .map(|(us, pe)| {
            let w = match pe {
                Cpu { active_w, .. } | Fpga { active_w, .. } | RiscvCgra { active_w, .. } => {
                    *active_w
                }
            };
            us * w / 1_000.0
        })
        .sum();
    Ok(MappingEval { latency_us, energy_mj, feasible })
}

/// One explored design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The mapping.
    pub mapping: Mapping,
    /// Its evaluation.
    pub eval: MappingEval,
}

/// DSE result: explored feasible points and the Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// All evaluated feasible points (deduplicated).
    pub points: Vec<DesignPoint>,
    /// Indices into `points` forming the (latency, energy) Pareto front,
    /// sorted by latency.
    pub front: Vec<usize>,
}

impl DseResult {
    /// The front's design points, latency order.
    pub fn pareto_points(&self) -> Vec<&DesignPoint> {
        self.front.iter().map(|&i| &self.points[i]).collect()
    }

    /// The lowest-latency feasible point.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.front.first().map(|&i| &self.points[i])
    }

    /// The lowest-energy feasible point.
    pub fn most_efficient(&self) -> Option<&DesignPoint> {
        self.front.last().map(|&i| &self.points[i])
    }
}

fn pareto_front(points: &[DesignPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .eval
            .latency_us
            .partial_cmp(&points[b].eval.latency_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                points[a]
                    .eval
                    .energy_mj
                    .partial_cmp(&points[b].eval.energy_mj)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for i in idx {
        if points[i].eval.energy_mj < best_energy - 1e-12 {
            best_energy = points[i].eval.energy_mj;
            front.push(i);
        }
    }
    front
}

/// Greedy single-actor polish on latency; self-contained and RNG-free,
/// so samples can be polished concurrently without changing any result.
fn polish(
    graph: &DataflowGraph,
    platform: &[Pe],
    mut mapping: Mapping,
) -> Result<Mapping, IrError> {
    let n = mapping.len();
    let p = platform.len();
    let mut best = evaluate_mapping(graph, platform, &mapping)?;
    loop {
        let mut improved = false;
        for a in 0..n {
            let orig = mapping[a];
            for cand in 0..p {
                if cand == orig {
                    continue;
                }
                mapping[a] = cand;
                let e = evaluate_mapping(graph, platform, &mapping)?;
                if e.feasible && (!best.feasible || e.latency_us < best.latency_us) {
                    best = e;
                    improved = true;
                } else {
                    mapping[a] = orig;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(mapping)
}

/// Evaluates `work` through `f`, optionally fanning out across the rayon
/// pool; results always come back in input order.
fn map_maybe_parallel<T, R, F>(work: Vec<T>, parallel: bool, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if parallel {
        use rayon::prelude::*;
        work.into_par_iter().map(f).collect()
    } else {
        work.into_iter().map(f).collect()
    }
}

fn explore_impl(
    graph: &DataflowGraph,
    platform: &[Pe],
    seed: u64,
    samples: usize,
    parallel: bool,
) -> Result<DseResult, IrError> {
    graph.validate()?;
    let n = graph.actors().len();
    let p = platform.len();
    let space = (p as f64).powi(n as i32);
    let mut points: Vec<DesignPoint> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut push = |mapping: Mapping, points: &mut Vec<DesignPoint>| -> Result<(), IrError> {
        if seen.insert(mapping.clone()) {
            let eval = evaluate_mapping(graph, platform, &mapping)?;
            if eval.feasible {
                points.push(DesignPoint { mapping, eval });
            }
        }
        Ok(())
    };

    if space <= 20_000.0 {
        // Materialize the odometer enumeration, evaluate every mapping
        // in parallel, then fold serially in enumeration order — the
        // point list (and thus the front) is bit-identical to evaluating
        // one mapping at a time.
        let mut all: Vec<Mapping> = Vec::with_capacity(space.max(1.0) as usize);
        let mut counter = vec![0usize; n];
        'enumerate: loop {
            all.push(counter.clone());
            let mut d = 0;
            loop {
                if d == n {
                    break 'enumerate;
                }
                counter[d] += 1;
                if counter[d] < p {
                    break;
                }
                counter[d] = 0;
                d += 1;
            }
        }
        let evals =
            map_maybe_parallel(all, parallel, |m| (evaluate_mapping(graph, platform, &m), m));
        for (eval, mapping) in evals {
            let eval = eval?;
            if eval.feasible {
                points.push(DesignPoint { mapping, eval });
            }
        }
        let front = pareto_front(&points);
        return Ok(DseResult { points, front });
    }

    // Sampled path: draw every starting mapping up front (the polish
    // consumes no randomness), polish the samples in parallel, then
    // dedup + collect in sample order — identical to the serial loop.
    let mut rng = StdRng::seed_from_u64(seed);
    let initial: Vec<Mapping> =
        (0..samples.max(1)).map(|_| (0..n).map(|_| rng.gen_range(0..p)).collect()).collect();
    let polished = map_maybe_parallel(initial, parallel, |m| polish(graph, platform, m));
    for mapping in polished {
        push(mapping?, &mut points)?;
    }
    let front = pareto_front(&points);
    Ok(DseResult { points, front })
}

/// Explores mappings of `graph` onto `platform`.
///
/// Spaces up to 20 000 points are enumerated fully; larger spaces use
/// `samples` random mappings (seeded) each polished by greedy
/// single-actor moves. Mapping evaluations fan out across the rayon
/// pool; the result is bit-identical to [`explore_serial`] for the same
/// inputs.
///
/// # Errors
///
/// Propagates graph validation errors.
pub fn explore(
    graph: &DataflowGraph,
    platform: &[Pe],
    seed: u64,
    samples: usize,
) -> Result<DseResult, IrError> {
    explore_impl(graph, platform, seed, samples, true)
}

/// Single-threaded reference twin of [`explore`]: same algorithm, no
/// fan-out. Kept public so equivalence tests and benchmarks can compare
/// against it.
///
/// # Errors
///
/// Propagates graph validation errors.
pub fn explore_serial(
    graph: &DataflowGraph,
    platform: &[Pe],
    seed: u64,
    samples: usize,
) -> Result<DseResult, IrError> {
    explore_impl(graph, platform, seed, samples, false)
}

/// The standard MYRTUS edge platform: one CPU, one FPGA region, one
/// CGRA-extended RISC-V core.
pub fn standard_edge_platform() -> Vec<Pe> {
    vec![
        Cpu { mhz: 1_500.0, ops_per_cycle: 2.0, active_w: 3.0 },
        Fpga {
            clock_mhz: 250.0,
            budget: Resources { luts: 120_000, dsps: 360, brams: 240 },
            active_w: 5.0,
        },
        RiscvCgra { mhz: 600.0, speedup: 6.0, active_w: 0.9 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Actor, ActorKind};

    fn pipeline() -> DataflowGraph {
        let mut g = DataflowGraph::new("pose");
        let a = g.add_actor(Actor::new("cam", ActorKind::Source, 16));
        let b = g.add_actor(Actor::new("pre", ActorKind::Map, 2_000));
        let c = g.add_actor(Actor::new("conv", ActorKind::Stencil, 50_000));
        let d = g.add_actor(Actor::new("out", ActorKind::Sink, 16));
        g.connect(a, 1, b, 1, 1_024);
        g.connect(b, 1, c, 1, 512);
        g.connect(c, 1, d, 1, 64);
        g
    }

    #[test]
    fn exhaustive_front_is_pareto() {
        let res = explore(&pipeline(), &standard_edge_platform(), 1, 0).expect("valid");
        assert!(!res.front.is_empty());
        let pts = res.pareto_points();
        for w in pts.windows(2) {
            assert!(w[0].eval.latency_us <= w[1].eval.latency_us);
            assert!(w[0].eval.energy_mj >= w[1].eval.energy_mj, "front trades energy for speed");
        }
    }

    #[test]
    fn fpga_wins_latency_for_the_heavy_stencil() {
        let platform = standard_edge_platform();
        let res = explore(&pipeline(), &platform, 1, 0).expect("valid");
        let fastest = res.fastest().expect("non-empty");
        // The conv actor (index 2) should sit on the FPGA (PE 1).
        assert_eq!(fastest.mapping[2], 1, "fastest: {fastest:?}");
    }

    #[test]
    fn budget_violations_are_infeasible() {
        let tight = vec![
            Cpu { mhz: 1_500.0, ops_per_cycle: 2.0, active_w: 3.0 },
            Fpga {
                clock_mhz: 250.0,
                budget: Resources { luts: 10, dsps: 0, brams: 0 },
                active_w: 5.0,
            },
        ];
        let g = pipeline();
        let all_fpga = vec![1usize; g.actors().len()];
        let e = evaluate_mapping(&g, &tight, &all_fpga).expect("evaluates");
        assert!(!e.feasible);
        // DSE never returns infeasible points.
        let res = explore(&g, &tight, 1, 0).expect("valid");
        assert!(res.points.iter().all(|p| p.eval.feasible));
        assert!(res.points.iter().all(|p| p.mapping[2] != 1));
    }

    #[test]
    fn colocated_mapping_pays_no_communication() {
        let g = pipeline();
        let platform = standard_edge_platform();
        let all_cpu = vec![0usize; g.actors().len()];
        let mut split = all_cpu.clone();
        split[2] = 2;
        let a = evaluate_mapping(&g, &platform, &all_cpu).expect("ok");
        let b = evaluate_mapping(&g, &platform, &split).expect("ok");
        // The split mapping adds interconnect time (but may still win on
        // compute); verify communication is charged by reconstructing it.
        let comm = 512.0 / 1_000.0 + 64.0 / 1_000.0;
        assert!(b.latency_us + 1e-9 >= comm, "{b:?}");
        assert!(a.latency_us > 0.0);
    }

    #[test]
    fn sampled_exploration_handles_large_spaces() {
        // 12 actors × 3 PEs = 531k points → sampled path.
        let mut g = DataflowGraph::new("wide");
        let src = g.add_actor(Actor::new("src", ActorKind::Source, 8));
        let mut prev = src;
        for i in 0..10 {
            let a = g.add_actor(Actor::new(format!("f{i}"), ActorKind::Map, 1_000 + i * 100));
            g.connect(prev, 1, a, 1, 128);
            prev = a;
        }
        let sink = g.add_actor(Actor::new("sink", ActorKind::Sink, 8));
        g.connect(prev, 1, sink, 1, 64);
        let res = explore(&g, &standard_edge_platform(), 3, 8).expect("valid");
        assert!(!res.points.is_empty());
        assert!(!res.front.is_empty());
        // Determinism.
        let res2 = explore(&g, &standard_edge_platform(), 3, 8).expect("valid");
        assert_eq!(res.front.len(), res2.front.len());
    }

    #[test]
    fn cgra_is_most_energy_efficient_for_regular_work() {
        let g = pipeline();
        let platform = standard_edge_platform();
        let res = explore(&g, &platform, 1, 0).expect("valid");
        let eff = res.most_efficient().expect("non-empty");
        // The heavy regular actor lands on the low-power CGRA RISC-V.
        assert_eq!(eff.mapping[2], 2, "most efficient: {eff:?}");
    }
}
