//! High-Level-Synthesis estimation (the CIRCT-hls / Vitis-HLS stand-in).
//!
//! The DPE's node-level step produces "executables and bitstreams"; what
//! downstream tools (MDC, the DSE, MIRTO's deployment metadata) need
//! from HLS is the *performance/area estimate* of each actor and of the
//! pipelined graph. The model uses the standard HLS quantities:
//! initiation interval (II), iteration latency, and a resource vector
//! (LUT / DSP / BRAM), with per-[`ActorKind`] coefficients.

use serde::{Deserialize, Serialize};

use crate::ir::{ActorKind, DataflowGraph, IrError};

/// FPGA resource estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Lookup tables.
    pub luts: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAMs (18 kb units).
    pub brams: u64,
}

impl Resources {
    /// Component-wise sum.
    pub fn saturating_add(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts + other.luts,
            dsps: self.dsps + other.dsps,
            brams: self.brams + other.brams,
        }
    }

    /// Component-wise max (resource sharing between mutually exclusive
    /// datapaths).
    pub fn max(self, other: Resources) -> Resources {
        Resources {
            luts: self.luts.max(other.luts),
            dsps: self.dsps.max(other.dsps),
            brams: self.brams.max(other.brams),
        }
    }

    /// A scalar area proxy for comparisons (weighted resource mix).
    pub fn area_units(&self) -> u64 {
        self.luts + self.dsps * 64 + self.brams * 128
    }
}

/// HLS estimate for one actor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActorEstimate {
    /// Initiation interval in cycles (new firing accepted every II).
    pub ii: u64,
    /// Latency of one firing in cycles.
    pub latency_cycles: u64,
    /// Resource usage.
    pub resources: Resources,
}

/// HLS estimate for a whole pipelined graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphEstimate {
    /// Per-actor estimates, actor order.
    pub actors: Vec<ActorEstimate>,
    /// Steady-state cycles per graph iteration (bottleneck actor:
    /// max over actors of `reps × II`).
    pub cycles_per_iteration: u64,
    /// Fill latency of the pipeline (sum of stage latencies).
    pub fill_latency_cycles: u64,
    /// Total resources (no sharing).
    pub total_resources: Resources,
}

impl GraphEstimate {
    /// Iterations per second at `clock_mhz`.
    pub fn throughput_hz(&self, clock_mhz: f64) -> f64 {
        if self.cycles_per_iteration == 0 {
            0.0
        } else {
            clock_mhz * 1e6 / self.cycles_per_iteration as f64
        }
    }
}

/// Per-kind HLS coefficients: `(ops_per_cycle, lut_per_op, dsp_per_op,
/// fixed_luts)`.
fn kind_coefficients(kind: ActorKind) -> (f64, f64, f64, u64) {
    match kind {
        ActorKind::Source | ActorKind::Sink => (8.0, 0.05, 0.0, 50),
        ActorKind::Map => (4.0, 0.4, 0.02, 120),
        ActorKind::Stencil => (32.0, 0.8, 0.08, 400), // unrolled spatial kernel
        ActorKind::Reduce => (4.0, 0.3, 0.01, 150),
        ActorKind::Control => (1.0, 1.2, 0.0, 300),
    }
}

/// Estimates one actor.
///
/// Datapath area scales with the *parallelism* (operations issued per
/// cycle — the unroll factor the II implies), while control/wiring LUTs
/// grow slowly with the total operation count; DSPs are instantiated per
/// parallel lane, not per operation.
pub fn estimate_actor(actor: &crate::ir::Actor) -> ActorEstimate {
    let (ops_per_cycle, lut_per_op, dsp_per_op, fixed_luts) = kind_coefficients(actor.kind);
    let ii = ((actor.ops_per_firing as f64 / ops_per_cycle).ceil() as u64).max(1);
    let latency_cycles = ii + 4; // pipeline depth epsilon
    let parallelism = (actor.ops_per_firing as f64 / ii as f64).ceil().max(1.0);
    let resources = Resources {
        luts: fixed_luts
            + (parallelism * 30.0) as u64
            + (actor.ops_per_firing as f64 * lut_per_op * 0.1) as u64,
        dsps: (parallelism * dsp_per_op * 8.0).ceil() as u64,
        brams: actor.state_bytes / 2_048 + u64::from(actor.state_bytes > 0),
    };
    ActorEstimate { ii, latency_cycles, resources }
}

/// Estimates a whole graph under full pipelining.
///
/// # Errors
///
/// Propagates [`IrError`] for invalid graphs.
pub fn estimate_graph(graph: &DataflowGraph) -> Result<GraphEstimate, IrError> {
    graph.validate()?;
    let reps = graph.repetition_vector()?;
    let actors: Vec<ActorEstimate> = graph.actors().iter().map(estimate_actor).collect();
    let cycles_per_iteration = actors.iter().zip(&reps).map(|(e, &r)| e.ii * r).max().unwrap_or(0);
    let fill_latency_cycles = actors.iter().map(|e| e.latency_cycles).sum();
    let total_resources =
        actors.iter().map(|e| e.resources).fold(Resources::default(), Resources::saturating_add);
    Ok(GraphEstimate { actors, cycles_per_iteration, fill_latency_cycles, total_resources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Actor, ActorKind};

    fn graph() -> DataflowGraph {
        let mut g = DataflowGraph::new("g");
        let a = g.add_actor(Actor::new("src", ActorKind::Source, 8));
        let b = g.add_actor(Actor::new("conv", ActorKind::Stencil, 4_096).with_state_bytes(8_192));
        let c = g.add_actor(Actor::new("sink", ActorKind::Sink, 8));
        g.connect(a, 1, b, 1, 64);
        g.connect(b, 1, c, 1, 16);
        g
    }

    #[test]
    fn stencil_dominates_the_pipeline() {
        let est = estimate_graph(&graph()).expect("valid");
        // conv: 4096 ops at 32 ops/cycle → II = 128.
        assert_eq!(est.cycles_per_iteration, 128);
        assert!(est.fill_latency_cycles > est.cycles_per_iteration / 2);
    }

    #[test]
    fn resources_accumulate_and_scale_with_ops() {
        let small = estimate_actor(&Actor::new("a", ActorKind::Map, 100));
        let big = estimate_actor(&Actor::new("b", ActorKind::Map, 10_000));
        assert!(big.resources.luts > small.resources.luts);
        assert!(big.ii > small.ii);
        let est = estimate_graph(&graph()).expect("valid");
        assert!(est.total_resources.luts > 0);
        assert!(est.total_resources.brams >= 4, "8 KiB state ⇒ ≥4 BRAM");
    }

    #[test]
    fn throughput_scales_with_clock() {
        let est = estimate_graph(&graph()).expect("valid");
        let slow = est.throughput_hz(100.0);
        let fast = est.throughput_hz(300.0);
        assert!((fast / slow - 3.0).abs() < 1e-9);
    }

    #[test]
    fn min_ii_is_one() {
        let e = estimate_actor(&Actor::new("tiny", ActorKind::Source, 1));
        assert_eq!(e.ii, 1);
    }

    #[test]
    fn resource_ops_max_and_area() {
        let a = Resources { luts: 100, dsps: 2, brams: 1 };
        let b = Resources { luts: 50, dsps: 5, brams: 0 };
        let sum = a.saturating_add(b);
        assert_eq!(sum.luts, 150);
        let m = a.max(b);
        assert_eq!(m, Resources { luts: 100, dsps: 5, brams: 1 });
        assert!(sum.area_units() > m.area_units());
    }

    #[test]
    fn invalid_graph_errors() {
        let g = DataflowGraph::new("empty");
        assert!(estimate_graph(&g).is_err());
    }
}
