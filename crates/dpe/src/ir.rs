//! Dataflow intermediate representation (the `dfg-mlir` analog).
//!
//! The DPE's node-level step compiles applications through a dataflow
//! abstraction (paper Sect. V: dfg-mlir, CGRA abstractions, MDC). This
//! IR models synchronous dataflow (SDF): actors fire consuming/producing
//! fixed token rates on typed channels. [`DataflowGraph::repetition_vector`]
//! solves the SDF balance equations — the consistency check every
//! downstream transformation relies on.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Index of an actor within a graph.
pub type ActorId = usize;

/// The computational class of an actor (drives HLS estimation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActorKind {
    /// Produces tokens from the environment.
    Source,
    /// Consumes tokens into the environment.
    Sink,
    /// Element-wise arithmetic (map).
    Map,
    /// Sliding-window / stencil computation (convolutions).
    Stencil,
    /// Reduction to a smaller rate.
    Reduce,
    /// Table lookup / control-heavy logic.
    Control,
}

/// One dataflow actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Unique actor name within the graph.
    pub name: String,
    /// Computational class.
    pub kind: ActorKind,
    /// Arithmetic operations per firing (drives latency/area estimates).
    pub ops_per_firing: u64,
    /// Internal state bytes (drives BRAM estimates).
    pub state_bytes: u64,
}

impl Actor {
    /// Creates an actor.
    pub fn new(name: impl Into<String>, kind: ActorKind, ops_per_firing: u64) -> Self {
        Actor { name: name.into(), kind, ops_per_firing, state_bytes: 0 }
    }

    /// Sets the internal state size.
    pub fn with_state_bytes(mut self, bytes: u64) -> Self {
        self.state_bytes = bytes;
        self
    }
}

/// A channel between two actors with SDF rates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Producing actor.
    pub from: ActorId,
    /// Tokens produced per firing of `from`.
    pub produce: u64,
    /// Consuming actor.
    pub to: ActorId,
    /// Tokens consumed per firing of `to`.
    pub consume: u64,
    /// Bytes per token.
    pub token_bytes: u64,
}

/// Errors validating a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An actor id in a channel is out of range.
    BadActor(ActorId),
    /// Two actors share a name.
    DuplicateActor(String),
    /// A channel has a zero rate.
    ZeroRate {
        /// The offending channel index.
        channel: usize,
    },
    /// The SDF balance equations have no consistent solution.
    InconsistentRates,
    /// The graph has a cycle (only acyclic graphs are supported).
    Cyclic,
    /// The graph has no actors.
    Empty,
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadActor(a) => write!(f, "channel references unknown actor {a}"),
            IrError::DuplicateActor(n) => write!(f, "duplicate actor name {n:?}"),
            IrError::ZeroRate { channel } => write!(f, "channel {channel} has a zero rate"),
            IrError::InconsistentRates => f.write_str("SDF balance equations are inconsistent"),
            IrError::Cyclic => f.write_str("dataflow graph has a cycle"),
            IrError::Empty => f.write_str("dataflow graph has no actors"),
        }
    }
}

impl std::error::Error for IrError {}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// A synchronous dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// Graph name.
    pub name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
}

impl DataflowGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        DataflowGraph { name: name.into(), actors: Vec::new(), channels: Vec::new() }
    }

    /// Adds an actor; returns its id.
    pub fn add_actor(&mut self, actor: Actor) -> ActorId {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Adds a channel.
    pub fn connect(
        &mut self,
        from: ActorId,
        produce: u64,
        to: ActorId,
        consume: u64,
        token_bytes: u64,
    ) {
        self.channels.push(Channel { from, produce, to, consume, token_bytes });
    }

    /// The actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Looks an actor up by name.
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.iter().position(|a| a.name == name)
    }

    /// Validates structure and SDF consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.actors.is_empty() {
            return Err(IrError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for a in &self.actors {
            if !names.insert(a.name.as_str()) {
                return Err(IrError::DuplicateActor(a.name.clone()));
            }
        }
        for (i, c) in self.channels.iter().enumerate() {
            if c.from >= self.actors.len() {
                return Err(IrError::BadActor(c.from));
            }
            if c.to >= self.actors.len() {
                return Err(IrError::BadActor(c.to));
            }
            if c.produce == 0 || c.consume == 0 {
                return Err(IrError::ZeroRate { channel: i });
            }
        }
        self.topo_order()?;
        self.repetition_vector()?;
        Ok(())
    }

    /// Topological order of the actors.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Cyclic`] for cyclic graphs.
    pub fn topo_order(&self) -> Result<Vec<ActorId>, IrError> {
        let n = self.actors.len();
        let mut indeg = vec![0usize; n];
        for c in &self.channels {
            if c.to < n {
                indeg[c.to] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for c in self.channels.iter().filter(|c| c.from == i) {
                indeg[c.to] -= 1;
                if indeg[c.to] == 0 {
                    ready.push(c.to);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(IrError::Cyclic)
        }
    }

    /// Solves the SDF balance equations, returning the smallest positive
    /// integer firing counts per actor for one graph iteration.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InconsistentRates`] when rates conflict.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, IrError> {
        let n = self.actors.len();
        if n == 0 {
            return Err(IrError::Empty);
        }
        // Rational firing rates: rate[i] = num[i] / den[i], propagated
        // over the (assumed weakly-connected) components.
        let mut num = vec![0u64; n];
        let mut den = vec![1u64; n];
        for start in 0..n {
            if num[start] != 0 {
                continue;
            }
            num[start] = 1;
            let mut stack = vec![start];
            while let Some(i) = stack.pop() {
                for c in &self.channels {
                    let (a, b, pa, pb) = if c.from == i {
                        (c.from, c.to, c.produce, c.consume)
                    } else if c.to == i {
                        (c.to, c.from, c.consume, c.produce)
                    } else {
                        continue;
                    };
                    // rate[b] = rate[a] * pa / pb
                    let nb = num[a] * pa;
                    let db = den[a] * pb;
                    let g = gcd(nb, db);
                    let (nb, db) = (nb / g, db / g);
                    if num[b] == 0 {
                        num[b] = nb;
                        den[b] = db;
                        stack.push(b);
                    } else if num[b] * db != nb * den[b] {
                        return Err(IrError::InconsistentRates);
                    }
                }
            }
        }
        let l = den.iter().fold(1u64, |acc, &d| lcm(acc, d));
        let mut reps: Vec<u64> = num.iter().zip(&den).map(|(n, d)| n * (l / d)).collect();
        let g = reps.iter().fold(0u64, |acc, &r| gcd(acc, r));
        if g > 1 {
            for r in &mut reps {
                *r /= g;
            }
        }
        Ok(reps)
    }

    /// Total operations of one graph iteration.
    pub fn ops_per_iteration(&self) -> Result<u64, IrError> {
        let reps = self.repetition_vector()?;
        Ok(self.actors.iter().zip(&reps).map(|(a, &r)| a.ops_per_firing * r).sum())
    }

    /// Bytes moved over channels in one iteration.
    pub fn bytes_per_iteration(&self) -> Result<u64, IrError> {
        let reps = self.repetition_vector()?;
        Ok(self.channels.iter().map(|c| reps[c.from] * c.produce * c.token_bytes).sum())
    }

    /// Per-kind actor counts (for area-sharing reports).
    pub fn kind_histogram(&self) -> BTreeMap<ActorKind, usize> {
        let mut h = BTreeMap::new();
        for a in &self.actors {
            *h.entry(a.kind).or_insert(0) += 1;
        }
        h
    }
}

impl PartialOrd for ActorKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ActorKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as usize).cmp(&(*other as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// camera →(1:1) resize →(4:1) conv →(1:1) sink, multirate.
    fn pipeline() -> DataflowGraph {
        let mut g = DataflowGraph::new("pose");
        let cam = g.add_actor(Actor::new("camera", ActorKind::Source, 1));
        let resize = g.add_actor(Actor::new("resize", ActorKind::Map, 100));
        let conv = g.add_actor(Actor::new("conv", ActorKind::Stencil, 5_000));
        let sink = g.add_actor(Actor::new("sink", ActorKind::Sink, 1));
        g.connect(cam, 1, resize, 1, 1024);
        g.connect(resize, 4, conv, 1, 256);
        g.connect(conv, 1, sink, 1, 64);
        g
    }

    #[test]
    fn valid_pipeline_passes() {
        pipeline().validate().expect("valid");
    }

    #[test]
    fn repetition_vector_balances_rates() {
        let g = pipeline();
        let reps = g.repetition_vector().expect("consistent");
        // camera fires 1, resize 1 (produces 4), conv 4, sink 4.
        assert_eq!(reps, vec![1, 1, 4, 4]);
    }

    #[test]
    fn uniform_rates_fire_once() {
        let mut g = DataflowGraph::new("chain");
        let a = g.add_actor(Actor::new("a", ActorKind::Source, 1));
        let b = g.add_actor(Actor::new("b", ActorKind::Map, 1));
        g.connect(a, 1, b, 1, 8);
        assert_eq!(g.repetition_vector().expect("consistent"), vec![1, 1]);
    }

    #[test]
    fn inconsistent_rates_are_detected() {
        // Diamond with conflicting rates: a→b→d and a→c→d where the two
        // paths demand different firing ratios for d.
        let mut g = DataflowGraph::new("bad");
        let a = g.add_actor(Actor::new("a", ActorKind::Source, 1));
        let b = g.add_actor(Actor::new("b", ActorKind::Map, 1));
        let c = g.add_actor(Actor::new("c", ActorKind::Map, 1));
        let d = g.add_actor(Actor::new("d", ActorKind::Sink, 1));
        g.connect(a, 1, b, 1, 8);
        g.connect(a, 1, c, 1, 8);
        g.connect(b, 1, d, 1, 8);
        g.connect(c, 2, d, 1, 8); // conflict
        assert_eq!(g.repetition_vector(), Err(IrError::InconsistentRates));
        assert_eq!(g.validate(), Err(IrError::InconsistentRates));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = DataflowGraph::new("loop");
        let a = g.add_actor(Actor::new("a", ActorKind::Map, 1));
        let b = g.add_actor(Actor::new("b", ActorKind::Map, 1));
        g.connect(a, 1, b, 1, 8);
        g.connect(b, 1, a, 1, 8);
        assert_eq!(g.validate(), Err(IrError::Cyclic));
    }

    #[test]
    fn structural_errors_are_reported() {
        let mut g = DataflowGraph::new("bad");
        let a = g.add_actor(Actor::new("a", ActorKind::Source, 1));
        g.connect(a, 1, 9, 1, 8);
        assert_eq!(g.validate(), Err(IrError::BadActor(9)));

        let mut g2 = DataflowGraph::new("dup");
        g2.add_actor(Actor::new("x", ActorKind::Map, 1));
        g2.add_actor(Actor::new("x", ActorKind::Map, 1));
        assert_eq!(g2.validate(), Err(IrError::DuplicateActor("x".into())));

        let mut g3 = DataflowGraph::new("zero");
        let p = g3.add_actor(Actor::new("p", ActorKind::Source, 1));
        let q = g3.add_actor(Actor::new("q", ActorKind::Sink, 1));
        g3.connect(p, 0, q, 1, 8);
        assert_eq!(g3.validate(), Err(IrError::ZeroRate { channel: 0 }));

        assert_eq!(DataflowGraph::new("empty").validate(), Err(IrError::Empty));
    }

    #[test]
    fn iteration_totals() {
        let g = pipeline();
        // ops: 1*1 + 1*100 + 4*5000 + 4*1 = 20105
        assert_eq!(g.ops_per_iteration().expect("consistent"), 20_105);
        // bytes: 1*1*1024 + 1*4*256 + 4*1*64 = 2304
        assert_eq!(g.bytes_per_iteration().expect("consistent"), 2_304);
    }

    #[test]
    fn topo_order_is_valid() {
        let g = pipeline();
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (rank, &i) in order.iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for c in g.channels() {
            assert!(pos[c.from] < pos[c.to]);
        }
    }

    #[test]
    fn lookup_and_histogram() {
        let g = pipeline();
        assert_eq!(g.actor_by_name("conv"), Some(2));
        assert_eq!(g.actor_by_name("nope"), None);
        let h = g.kind_histogram();
        assert_eq!(h.get(&ActorKind::Stencil), Some(&1));
        assert_eq!(h.len(), 4);
    }
}
