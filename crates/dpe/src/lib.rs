//! # myrtus-dpe
//!
//! The MYRTUS Design and Programming Environment (paper Fig. 4, technical
//! pillar 3): a synchronous-dataflow IR with validation and SDF balance
//! analysis (the dfg-mlir analog), fusion and partitioning passes,
//! HLS-style latency/area estimation (CIRCT-hls / Vitis-HLS stand-in),
//! the Multi-Dataflow Composer merging kernels into reconfigurable
//! datapaths, a design-space explorer over heterogeneous CPU / FPGA /
//! CGRA-RISC-V targets (the Mocasin analog), Attack-Defence-Tree driven
//! countermeasure synthesis, and CSAR-like deployment-specification
//! packages with operating-point metadata for the MIRTO engine.
//!
//! ## Quick start
//!
//! ```
//! use myrtus_dpe::flow::run_flow;
//! use myrtus_workload::scenarios;
//!
//! let result = run_flow(&scenarios::telerehab())?;
//! assert!(!result.spec.artifacts.is_empty());
//! assert!(result.spec.residual_risk < 1.0);
//! # Ok::<(), myrtus_dpe::flow::FlowError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cgra;
pub mod codegen;
pub mod deploy;
pub mod dse;
pub mod flow;
pub mod hls;
pub mod ir;
pub mod kernels;
pub mod mdc;
pub mod nn;
pub mod transform;

pub use cgra::{map_graph, CgraFabric, CgraMapping};
pub use deploy::{Artifact, ArtifactKind, DeploymentSpec};
pub use dse::{explore, standard_edge_platform, DseResult, Pe};
pub use flow::{run_flow, AnalysisReport, FlowError, PortionedApp};
pub use hls::{estimate_graph, GraphEstimate, Resources};
pub use ir::{Actor, ActorKind, DataflowGraph};
pub use mdc::{compose, Composition};
pub use nn::{Layer, NnModel, Shape};
