//! Coarse-Grain Reconfigurable Array mapping (the `cgra-mlir` analog).
//!
//! The paper extends RISC-V datapaths "with multi-grain reconfigurable
//! overlays" (ref \[4\]) and plans "abstractions for CGRAs (cgra-mlir)"
//! with "our recent flow from ONNX to CGRAs" (ref \[26\]). This module
//! models a 2-D CGRA of word-level processing elements and maps dataflow
//! actors onto it: operations are tiled over the array, the achievable
//! initiation interval follows from the tile count, and a configuration
//! stream (the "bitstream" of a CGRA) is sized from the used PEs.

use serde::{Deserialize, Serialize};

use crate::ir::{ActorKind, DataflowGraph, IrError};

/// A rectangular CGRA fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CgraFabric {
    /// Rows of processing elements.
    pub rows: u32,
    /// Columns of processing elements.
    pub cols: u32,
    /// Clock in MHz.
    pub clock_mhz: u32,
    /// Configuration bits per PE (loaded on context switch).
    pub config_bits_per_pe: u32,
}

impl CgraFabric {
    /// A typical 4×4 overlay on an adaptive RISC-V core.
    pub fn overlay_4x4() -> Self {
        CgraFabric { rows: 4, cols: 4, clock_mhz: 600, config_bits_per_pe: 64 }
    }

    /// An 8×8 standalone fabric.
    pub fn standalone_8x8() -> Self {
        CgraFabric { rows: 8, cols: 8, clock_mhz: 400, config_bits_per_pe: 96 }
    }

    /// Total PEs.
    pub fn pes(&self) -> u32 {
        self.rows * self.cols
    }
}

/// Mapping of one actor onto the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorMapping {
    /// Actor name.
    pub actor: String,
    /// PEs used by this actor's spatial kernel.
    pub pes_used: u32,
    /// Initiation interval in cycles at the mapped parallelism.
    pub ii_cycles: u64,
    /// Whether the actor is CGRA-mappable at all (regular dataflow).
    pub mapped: bool,
}

/// Mapping of a whole graph: per-actor results plus a time-multiplexed
/// schedule when the graph needs more PEs than the fabric has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgraMapping {
    /// The fabric mapped onto.
    pub fabric: CgraFabric,
    /// Per-actor mappings.
    pub actors: Vec<ActorMapping>,
    /// Contexts (time-multiplexed configurations) needed.
    pub contexts: u32,
    /// Total configuration-stream size in bytes.
    pub config_bytes: u64,
    /// Steady-state cycles per graph iteration.
    pub cycles_per_iteration: u64,
}

impl CgraMapping {
    /// Iterations per second.
    pub fn throughput_hz(&self) -> f64 {
        if self.cycles_per_iteration == 0 {
            0.0
        } else {
            self.fabric.clock_mhz as f64 * 1e6 / self.cycles_per_iteration as f64
        }
    }

    /// Fraction of actors that could be spatially mapped.
    pub fn coverage(&self) -> f64 {
        if self.actors.is_empty() {
            return 0.0;
        }
        self.actors.iter().filter(|a| a.mapped).count() as f64 / self.actors.len() as f64
    }
}

/// Errors mapping onto a CGRA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgraError {
    /// The graph failed IR validation.
    Ir(IrError),
    /// The fabric has no PEs.
    EmptyFabric,
}

impl std::fmt::Display for CgraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CgraError::Ir(e) => write!(f, "graph invalid: {e}"),
            CgraError::EmptyFabric => f.write_str("fabric has no processing elements"),
        }
    }
}

impl std::error::Error for CgraError {}

impl From<IrError> for CgraError {
    fn from(e: IrError) -> Self {
        CgraError::Ir(e)
    }
}

/// Whether an actor kind lends itself to spatial CGRA mapping.
fn cgra_mappable(kind: ActorKind) -> bool {
    matches!(kind, ActorKind::Map | ActorKind::Stencil | ActorKind::Reduce)
}

/// Maps `graph` onto `fabric`.
///
/// Regular actors get a spatial tile sized by their parallelism demand
/// (ops per firing, up to the fabric); irregular actors fall back to the
/// host core (unmapped, but accounted in the schedule with a scalar II).
/// When the mapped actors together need more PEs than available, the
/// fabric is time-multiplexed into contexts and every context switch
/// costs one configuration load.
///
/// # Errors
///
/// Returns [`CgraError`] for invalid graphs or empty fabrics.
pub fn map_graph(graph: &DataflowGraph, fabric: CgraFabric) -> Result<CgraMapping, CgraError> {
    graph.validate()?;
    if fabric.pes() == 0 {
        return Err(CgraError::EmptyFabric);
    }
    let reps = graph.repetition_vector()?;
    let mut actors = Vec::with_capacity(graph.actors().len());
    let mut total_pes = 0u32;
    for a in graph.actors() {
        if cgra_mappable(a.kind) {
            // Tile: one PE sustains ~1 op/cycle; allot PEs proportional
            // to the square root of the firing ops, clamped to a quarter
            // of the fabric so several actors co-reside.
            let want = (a.ops_per_firing as f64).sqrt().ceil() as u32;
            let pes = want.clamp(1, (fabric.pes() / 4).max(1));
            let ii = (a.ops_per_firing as f64 / pes as f64).ceil() as u64;
            total_pes += pes;
            actors.push(ActorMapping {
                actor: a.name.clone(),
                pes_used: pes,
                ii_cycles: ii.max(1),
                mapped: true,
            });
        } else {
            actors.push(ActorMapping {
                actor: a.name.clone(),
                pes_used: 0,
                // Host fallback: scalar issue.
                ii_cycles: a.ops_per_firing.max(1),
                mapped: false,
            });
        }
    }
    let contexts = total_pes.div_ceil(fabric.pes()).max(1);
    let config_bytes = total_pes as u64 * fabric.config_bits_per_pe as u64 / 8 * contexts as u64
        / contexts as u64
        + contexts as u64 * 16; // per-context descriptor
                                // Steady state: bottleneck actor (reps × II); time multiplexing
                                // serializes contexts, adding a reconfiguration bubble per extra
                                // context per iteration.
    let bottleneck = actors.iter().zip(&reps).map(|(m, &r)| m.ii_cycles * r).max().unwrap_or(0);
    let reconfig_bubble = (contexts as u64 - 1) * (fabric.config_bits_per_pe as u64 / 2);
    let cycles_per_iteration = bottleneck + reconfig_bubble;
    Ok(CgraMapping { fabric, actors, contexts, config_bytes, cycles_per_iteration })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Actor;

    fn regular_pipeline(ops: u64) -> DataflowGraph {
        let mut g = DataflowGraph::new("k");
        let s = g.add_actor(Actor::new("src", ActorKind::Source, 4));
        let m = g.add_actor(Actor::new("map", ActorKind::Map, ops));
        let k = g.add_actor(Actor::new("sink", ActorKind::Sink, 4));
        g.connect(s, 1, m, 1, 64);
        g.connect(m, 1, k, 1, 64);
        g
    }

    #[test]
    fn regular_actors_map_spatially() {
        let m = map_graph(&regular_pipeline(1_000), CgraFabric::overlay_4x4()).expect("maps");
        let map_actor = m.actors.iter().find(|a| a.actor == "map").expect("exists");
        assert!(map_actor.mapped);
        assert!(map_actor.pes_used >= 1);
        assert!(map_actor.ii_cycles < 1_000, "parallelism beats scalar issue");
        assert!(m.coverage() < 1.0, "source/sink stay on the host");
    }

    #[test]
    fn bigger_fabric_is_faster() {
        let g = regular_pipeline(10_000);
        let small = map_graph(&g, CgraFabric::overlay_4x4()).expect("maps");
        let big = map_graph(&g, CgraFabric::standalone_8x8()).expect("maps");
        assert!(big.cycles_per_iteration < small.cycles_per_iteration);
    }

    #[test]
    fn oversubscription_multiplexes_contexts() {
        // Many heavy actors on a tiny fabric.
        let mut g = DataflowGraph::new("wide");
        let s = g.add_actor(Actor::new("src", ActorKind::Source, 1));
        let mut prev = s;
        for i in 0..10 {
            let a = g.add_actor(Actor::new(format!("m{i}"), ActorKind::Map, 5_000));
            g.connect(prev, 1, a, 1, 16);
            prev = a;
        }
        let tiny = CgraFabric { rows: 2, cols: 2, clock_mhz: 600, config_bits_per_pe: 64 };
        let m = map_graph(&g, tiny).expect("maps");
        assert!(m.contexts > 1, "needs time multiplexing: {}", m.contexts);
        assert!(m.config_bytes > 0);
    }

    #[test]
    fn control_actors_fall_back_to_host() {
        let mut g = DataflowGraph::new("ctl");
        let s = g.add_actor(Actor::new("src", ActorKind::Source, 1));
        let c = g.add_actor(Actor::new("branchy", ActorKind::Control, 500));
        g.connect(s, 1, c, 1, 8);
        let m = map_graph(&g, CgraFabric::overlay_4x4()).expect("maps");
        let ctl = m.actors.iter().find(|a| a.actor == "branchy").expect("exists");
        assert!(!ctl.mapped);
        assert_eq!(ctl.ii_cycles, 500, "scalar issue on the host");
    }

    #[test]
    fn nn_backbone_maps_end_to_end() {
        let g = crate::nn::pose_backbone().lower().expect("lowers");
        let m = map_graph(&g, CgraFabric::standalone_8x8()).expect("maps");
        assert!(m.throughput_hz() > 0.0);
        assert!(m.coverage() > 0.5, "most NN layers are regular: {}", m.coverage());
    }

    #[test]
    fn error_paths() {
        let bad = DataflowGraph::new("empty");
        assert!(matches!(map_graph(&bad, CgraFabric::overlay_4x4()), Err(CgraError::Ir(_))));
        let no_pes = CgraFabric { rows: 0, cols: 4, clock_mhz: 100, config_bits_per_pe: 8 };
        assert_eq!(map_graph(&regular_pipeline(10), no_pes), Err(CgraError::EmptyFabric));
    }
}
