//! Dataflow transformations (the MLIR-pass analog).
//!
//! Two passes the Fig. 4 flow applies between modeling and code
//! generation: **fusion** of linear single-rate actor chains (reduces
//! channel traffic and per-actor overhead before software compilation)
//! and **partitioning** of a graph by a target assignment (the
//! "portioned app" split into host code and accelerator kernels).

use crate::ir::{Actor, ActorKind, DataflowGraph, IrError};

/// Fuses maximal linear chains of 1:1-rate compute actors (Map / Reduce /
/// Control with single fan-in and fan-out) into one actor whose ops and
/// state are the sums. Sources, sinks and stencils stay unfused (they
/// anchor I/O and sliding-window semantics).
///
/// # Errors
///
/// Propagates validation errors of the input.
pub fn fuse_linear_chains(graph: &DataflowGraph) -> Result<DataflowGraph, IrError> {
    graph.validate()?;
    let n = graph.actors().len();
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    for c in graph.channels() {
        out_deg[c.from] += 1;
        in_deg[c.to] += 1;
    }
    let fusable = |i: usize| {
        matches!(graph.actors()[i].kind, ActorKind::Map | ActorKind::Reduce | ActorKind::Control)
            && in_deg[i] <= 1
            && out_deg[i] <= 1
    };
    // Union chains: follow 1:1 channels between fusable actors.
    let mut group = (0..n).collect::<Vec<usize>>();
    fn find(group: &mut Vec<usize>, i: usize) -> usize {
        if group[i] == i {
            i
        } else {
            let r = find(group, group[i]);
            group[i] = r;
            r
        }
    }
    for c in graph.channels() {
        if c.produce == 1 && c.consume == 1 && fusable(c.from) && fusable(c.to) {
            let a = find(&mut group, c.from);
            let b = find(&mut group, c.to);
            group[a] = b;
        }
    }
    // Build fused graph: one actor per group, in topological order of
    // representatives.
    let order = graph.topo_order()?;
    let mut rep_of = vec![usize::MAX; n];
    let mut fused = DataflowGraph::new(format!("{}-fused", graph.name));
    let mut group_actor: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &i in &order {
        let g = find(&mut group, i);
        let id = *group_actor.entry(g).or_insert_with(|| {
            fused.add_actor(Actor::new(graph.actors()[i].name.clone(), graph.actors()[i].kind, 0))
        });
        rep_of[i] = id;
    }
    // Accumulate ops/state per fused actor.
    let mut ops = vec![0u64; fused.actors().len()];
    let mut state = vec![0u64; fused.actors().len()];
    for (i, a) in graph.actors().iter().enumerate() {
        ops[rep_of[i]] += a.ops_per_firing;
        state[rep_of[i]] += a.state_bytes;
    }
    let mut rebuilt = DataflowGraph::new(fused.name.clone());
    for (i, a) in fused.actors().iter().enumerate() {
        rebuilt.add_actor(Actor::new(a.name.clone(), a.kind, ops[i]).with_state_bytes(state[i]));
    }
    // Keep only inter-group channels.
    for c in graph.channels() {
        let (f, t) = (rep_of[c.from], rep_of[c.to]);
        if f != t {
            rebuilt.connect(f, c.produce, t, c.consume, c.token_bytes);
        }
    }
    rebuilt.validate()?;
    Ok(rebuilt)
}

/// One side of a partitioned graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPiece {
    /// The subgraph.
    pub graph: DataflowGraph,
    /// Original actor indices, subgraph order.
    pub original_actors: Vec<usize>,
}

/// Result of partitioning by a target assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// One piece per target (index = target id).
    pub pieces: Vec<PartitionPiece>,
    /// Bytes per iteration crossing between targets.
    pub cut_bytes: u64,
}

/// Splits `graph` into per-target subgraphs according to `assignment`
/// (one target id per actor).
///
/// # Errors
///
/// Returns [`IrError::BadActor`] when the assignment length mismatches.
pub fn partition(graph: &DataflowGraph, assignment: &[usize]) -> Result<Partition, IrError> {
    if assignment.len() != graph.actors().len() {
        return Err(IrError::BadActor(assignment.len()));
    }
    let reps = graph.repetition_vector()?;
    let targets = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut pieces: Vec<PartitionPiece> = (0..targets)
        .map(|t| PartitionPiece {
            graph: DataflowGraph::new(format!("{}-part{}", graph.name, t)),
            original_actors: Vec::new(),
        })
        .collect();
    let mut local_id = vec![usize::MAX; graph.actors().len()];
    for (i, a) in graph.actors().iter().enumerate() {
        let t = assignment[i];
        local_id[i] = pieces[t].graph.add_actor(a.clone());
        pieces[t].original_actors.push(i);
    }
    let mut cut_bytes = 0u64;
    for c in graph.channels() {
        if assignment[c.from] == assignment[c.to] {
            let t = assignment[c.from];
            pieces[t].graph.connect(
                local_id[c.from],
                c.produce,
                local_id[c.to],
                c.consume,
                c.token_bytes,
            );
        } else {
            cut_bytes += reps[c.from] * c.produce * c.token_bytes;
        }
    }
    Ok(Partition { pieces, cut_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DataflowGraph {
        let mut g = DataflowGraph::new("c");
        let s = g.add_actor(Actor::new("src", ActorKind::Source, 1));
        let a = g.add_actor(Actor::new("f1", ActorKind::Map, 100).with_state_bytes(4));
        let b = g.add_actor(Actor::new("f2", ActorKind::Map, 200).with_state_bytes(8));
        let c = g.add_actor(Actor::new("conv", ActorKind::Stencil, 5_000));
        let d = g.add_actor(Actor::new("f3", ActorKind::Reduce, 50));
        let k = g.add_actor(Actor::new("sink", ActorKind::Sink, 1));
        g.connect(s, 1, a, 1, 64);
        g.connect(a, 1, b, 1, 64);
        g.connect(b, 1, c, 1, 64);
        g.connect(c, 1, d, 1, 32);
        g.connect(d, 1, k, 1, 16);
        g
    }

    #[test]
    fn fusion_merges_adjacent_maps_only() {
        let fused = fuse_linear_chains(&chain()).expect("valid");
        // f1+f2 merge; src, conv, f3, sink stay → 5 actors.
        assert_eq!(fused.actors().len(), 5);
        let merged =
            fused.actors().iter().find(|a| a.ops_per_firing == 300).expect("fused actor sums ops");
        assert_eq!(merged.state_bytes, 12);
        assert!(fused.actor_by_name("conv").is_some(), "stencil never fuses");
    }

    #[test]
    fn fusion_preserves_iteration_ops() {
        let g = chain();
        let fused = fuse_linear_chains(&g).expect("valid");
        assert_eq!(g.ops_per_iteration().expect("ok"), fused.ops_per_iteration().expect("ok"));
    }

    #[test]
    fn fusion_skips_multirate_boundaries() {
        let mut g = DataflowGraph::new("mr");
        let a = g.add_actor(Actor::new("a", ActorKind::Map, 10));
        let b = g.add_actor(Actor::new("b", ActorKind::Map, 10));
        g.connect(a, 2, b, 1, 8); // 2:1 — not fusable
        let fused = fuse_linear_chains(&g).expect("valid");
        assert_eq!(fused.actors().len(), 2);
    }

    #[test]
    fn fusion_skips_fanout_nodes() {
        let mut g = DataflowGraph::new("fan");
        let a = g.add_actor(Actor::new("a", ActorKind::Map, 10));
        let b = g.add_actor(Actor::new("b", ActorKind::Map, 10));
        let c = g.add_actor(Actor::new("c", ActorKind::Map, 10));
        g.connect(a, 1, b, 1, 8);
        g.connect(a, 1, c, 1, 8);
        let fused = fuse_linear_chains(&g).expect("valid");
        assert_eq!(fused.actors().len(), 3, "fan-out anchor stays");
    }

    #[test]
    fn partition_splits_and_counts_cut() {
        let g = chain();
        // src,f1,f2 on target 0; conv on 1; f3,sink on 0.
        let assignment = vec![0, 0, 0, 1, 0, 0];
        let p = partition(&g, &assignment).expect("valid");
        assert_eq!(p.pieces.len(), 2);
        assert_eq!(p.pieces[0].graph.actors().len(), 5);
        assert_eq!(p.pieces[1].graph.actors().len(), 1);
        // Cut: b→conv (64) + conv→f3 (32).
        assert_eq!(p.cut_bytes, 96);
        assert_eq!(p.pieces[1].original_actors, vec![3]);
    }

    #[test]
    fn partition_rejects_wrong_length() {
        let g = chain();
        assert!(partition(&g, &[0, 1]).is_err());
    }

    #[test]
    fn single_target_partition_is_the_whole_graph() {
        let g = chain();
        let p = partition(&g, &vec![0; g.actors().len()]).expect("valid");
        assert_eq!(p.cut_bytes, 0);
        assert_eq!(p.pieces[0].graph.channels().len(), g.channels().len());
    }
}
