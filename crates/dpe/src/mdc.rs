//! Multi-Dataflow Composer (the MDC tool analog).
//!
//! MDC generates *runtime-reconfigurable* accelerators by merging several
//! dataflow networks into one datapath in which functionally identical
//! actors are instantiated once and shared across configurations through
//! switching logic. [`compose`] performs that merge and
//! [`Composition::area_report`] quantifies the headline benefit: shared
//! area vs. the sum of dedicated datapaths.

use serde::{Deserialize, Serialize};

use crate::hls::{estimate_actor, Resources};
use crate::ir::{Actor, Channel, DataflowGraph, IrError};

/// One actor of the composed datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedActor {
    /// The actor definition.
    pub actor: Actor,
    /// Configurations (input-graph indices) that use this actor.
    pub used_by: Vec<usize>,
}

/// One channel of the composed datapath, tagged with its configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedChannel {
    /// The channel (actor ids refer to the composed actor list).
    pub channel: Channel,
    /// Owning configuration.
    pub config: usize,
}

/// Per-shared-actor multiplexer overhead on LUTs, per extra
/// configuration (the "sbox" switching logic MDC inserts).
const MUX_LUT_OVERHEAD: u64 = 24;

/// A composed multi-dataflow datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Composition {
    /// Composed (shared) actors.
    pub actors: Vec<SharedActor>,
    /// All channels, tagged per configuration.
    pub channels: Vec<TaggedChannel>,
    /// Number of input configurations.
    pub configs: usize,
    /// Names of the input graphs, configuration order.
    pub config_names: Vec<String>,
}

/// Area comparison of the composed datapath vs. dedicated ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Sum of the dedicated datapaths' resources.
    pub dedicated: Resources,
    /// Composed datapath resources (shared actors once + mux overhead).
    pub composed: Resources,
    /// Actors shared by at least two configurations.
    pub shared_actors: usize,
}

impl AreaReport {
    /// Fraction of dedicated area saved by composition.
    pub fn savings(&self) -> f64 {
        let d = self.dedicated.area_units() as f64;
        if d == 0.0 {
            0.0
        } else {
            1.0 - self.composed.area_units() as f64 / d
        }
    }
}

/// Merges the given dataflow graphs into one reconfigurable datapath.
/// Actors are shared when name, kind, ops and state match.
///
/// # Errors
///
/// Propagates validation errors of any input graph; an empty input list
/// yields [`IrError::Empty`].
pub fn compose(graphs: &[DataflowGraph]) -> Result<Composition, IrError> {
    if graphs.is_empty() {
        return Err(IrError::Empty);
    }
    for g in graphs {
        g.validate()?;
    }
    let mut actors: Vec<SharedActor> = Vec::new();
    let mut channels = Vec::new();
    for (cfg, g) in graphs.iter().enumerate() {
        // Map this graph's actor ids onto composed ids.
        let mut remap = Vec::with_capacity(g.actors().len());
        for a in g.actors() {
            let existing = actors.iter().position(|s| s.actor == *a);
            let id = match existing {
                Some(i) => {
                    if !actors[i].used_by.contains(&cfg) {
                        actors[i].used_by.push(cfg);
                    }
                    i
                }
                None => {
                    actors.push(SharedActor { actor: a.clone(), used_by: vec![cfg] });
                    actors.len() - 1
                }
            };
            remap.push(id);
        }
        for c in g.channels() {
            channels.push(TaggedChannel {
                channel: Channel {
                    from: remap[c.from],
                    produce: c.produce,
                    to: remap[c.to],
                    consume: c.consume,
                    token_bytes: c.token_bytes,
                },
                config: cfg,
            });
        }
    }
    Ok(Composition {
        actors,
        channels,
        configs: graphs.len(),
        config_names: graphs.iter().map(|g| g.name.clone()).collect(),
    })
}

impl Composition {
    /// Extracts one configuration back as a standalone graph (the
    /// behaviour loaded when that config is selected at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn configuration(&self, config: usize) -> DataflowGraph {
        assert!(config < self.configs, "config out of range");
        let mut g = DataflowGraph::new(self.config_names[config].clone());
        let mut remap = vec![usize::MAX; self.actors.len()];
        for (i, s) in self.actors.iter().enumerate() {
            if s.used_by.contains(&config) {
                remap[i] = g.add_actor(s.actor.clone());
            }
        }
        for t in self.channels.iter().filter(|t| t.config == config) {
            g.connect(
                remap[t.channel.from],
                t.channel.produce,
                remap[t.channel.to],
                t.channel.consume,
                t.channel.token_bytes,
            );
        }
        g
    }

    /// Computes the dedicated-vs-composed area comparison.
    pub fn area_report(&self) -> AreaReport {
        let mut dedicated = Resources::default();
        let mut composed = Resources::default();
        let mut shared_actors = 0;
        for s in &self.actors {
            let r = estimate_actor(&s.actor).resources;
            // Dedicated: one instance per using configuration.
            for _ in &s.used_by {
                dedicated = dedicated.saturating_add(r);
            }
            // Composed: one instance + mux overhead per extra config.
            let mut shared = r;
            if s.used_by.len() > 1 {
                shared_actors += 1;
                shared.luts += MUX_LUT_OVERHEAD * (s.used_by.len() as u64 - 1);
            }
            composed = composed.saturating_add(shared);
        }
        AreaReport { dedicated, composed, shared_actors }
    }

    /// Actors shared by at least two configurations.
    pub fn shared_actor_names(&self) -> Vec<&str> {
        self.actors.iter().filter(|s| s.used_by.len() > 1).map(|s| s.actor.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ActorKind;

    fn graph(name: &str, mid_name: &str, mid_ops: u64) -> DataflowGraph {
        let mut g = DataflowGraph::new(name);
        let a = g.add_actor(Actor::new("reader", ActorKind::Source, 8));
        let b = g.add_actor(Actor::new(mid_name, ActorKind::Stencil, mid_ops));
        let c = g.add_actor(Actor::new("writer", ActorKind::Sink, 8));
        g.connect(a, 1, b, 1, 64);
        g.connect(b, 1, c, 1, 64);
        g
    }

    #[test]
    fn identical_boundary_actors_are_shared() {
        let g1 = graph("sobel", "sobel-k", 1_000);
        let g2 = graph("blur", "blur-k", 2_000);
        let comp = compose(&[g1, g2]).expect("valid");
        // reader + writer shared; two distinct kernels.
        assert_eq!(comp.actors.len(), 4);
        assert_eq!(comp.shared_actor_names(), vec!["reader", "writer"]);
        assert_eq!(comp.configs, 2);
    }

    #[test]
    fn area_savings_grow_with_sharing() {
        let g1 = graph("a", "k", 1_000);
        let g2 = graph("b", "k", 1_000); // identical kernel too
        let comp = compose(&[g1.clone(), g2]).expect("valid");
        let report = comp.area_report();
        assert!(report.savings() > 0.4, "fully shared: {}", report.savings());
        // Distinct kernels share only the boundary actors.
        let comp2 = compose(&[g1, graph("c", "other", 4_000)]).expect("valid");
        let report2 = comp2.area_report();
        assert!(report2.savings() > 0.0);
        assert!(report2.savings() < report.savings());
    }

    #[test]
    fn extracted_configuration_round_trips() {
        let g1 = graph("sobel", "sobel-k", 1_000);
        let g2 = graph("blur", "blur-k", 2_000);
        let comp = compose(&[g1.clone(), g2.clone()]).expect("valid");
        let back0 = comp.configuration(0);
        let back1 = comp.configuration(1);
        back0.validate().expect("valid");
        back1.validate().expect("valid");
        assert_eq!(back0.actors().len(), g1.actors().len());
        assert!(back1.actor_by_name("blur-k").is_some());
        assert_eq!(back0.channels().len(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(compose(&[]).err(), Some(IrError::Empty));
    }

    #[test]
    fn single_graph_composition_is_lossless() {
        let g = graph("only", "k", 500);
        let comp = compose(std::slice::from_ref(&g)).expect("valid");
        assert_eq!(comp.area_report().shared_actors, 0);
        assert!((comp.area_report().savings()).abs() < 1e-9);
        assert_eq!(comp.configuration(0).actors().len(), g.actors().len());
    }

    #[test]
    fn invalid_member_graph_rejected() {
        let bad = DataflowGraph::new("bad");
        assert!(compose(&[bad]).is_err());
    }
}
