//! Kernel library: dataflow graphs for the use-case accelerator
//! configurations.
//!
//! The workload scenarios request acceleration by configuration id
//! (`myrtus_workload::scenarios::accel_cfg`); this library provides the
//! matching dataflow networks the DPE synthesizes bitstreams from, and
//! that MDC merges into one reconfigurable datapath for the HMPSoC.

use crate::ir::{Actor, ActorKind, DataflowGraph};

/// Pose-estimation CNN backbone (telerehabilitation).
pub fn pose_cnn() -> DataflowGraph {
    let mut g = DataflowGraph::new("pose-cnn");
    let src = g.add_actor(Actor::new("frame-reader", ActorKind::Source, 32));
    let norm = g.add_actor(Actor::new("normalize", ActorKind::Map, 3_000));
    let conv1 =
        g.add_actor(Actor::new("conv3x3", ActorKind::Stencil, 60_000).with_state_bytes(9 * 1024));
    let pool = g.add_actor(Actor::new("maxpool", ActorKind::Reduce, 4_000));
    let conv2 =
        g.add_actor(Actor::new("conv1x1", ActorKind::Stencil, 20_000).with_state_bytes(4 * 1024));
    let head = g.add_actor(Actor::new("keypoint-head", ActorKind::Control, 6_000));
    let sink = g.add_actor(Actor::new("result-writer", ActorKind::Sink, 32));
    g.connect(src, 1, norm, 1, 4_096);
    g.connect(norm, 1, conv1, 1, 4_096);
    g.connect(conv1, 4, pool, 4, 1_024);
    g.connect(pool, 1, conv2, 1, 1_024);
    g.connect(conv2, 1, head, 1, 512);
    g.connect(head, 1, sink, 1, 128);
    g
}

/// Object-detection CNN (smart mobility).
pub fn detect_cnn() -> DataflowGraph {
    let mut g = DataflowGraph::new("detect-cnn");
    let src = g.add_actor(Actor::new("frame-reader", ActorKind::Source, 32));
    let norm = g.add_actor(Actor::new("normalize", ActorKind::Map, 3_000));
    let conv1 =
        g.add_actor(Actor::new("conv3x3", ActorKind::Stencil, 60_000).with_state_bytes(9 * 1024));
    let conv2 =
        g.add_actor(Actor::new("conv5x5", ActorKind::Stencil, 90_000).with_state_bytes(25 * 1024));
    let nms = g.add_actor(Actor::new("nms", ActorKind::Control, 8_000));
    let sink = g.add_actor(Actor::new("result-writer", ActorKind::Sink, 32));
    g.connect(src, 1, norm, 1, 4_096);
    g.connect(norm, 1, conv1, 1, 4_096);
    g.connect(conv1, 1, conv2, 1, 2_048);
    g.connect(conv2, 1, nms, 1, 1_024);
    g.connect(nms, 1, sink, 1, 256);
    g
}

/// Video pre-processing: resize + colour conversion.
pub fn preproc() -> DataflowGraph {
    let mut g = DataflowGraph::new("preproc");
    let src = g.add_actor(Actor::new("frame-reader", ActorKind::Source, 32));
    let resize = g.add_actor(Actor::new("resize", ActorKind::Stencil, 12_000));
    let csc = g.add_actor(Actor::new("colour-convert", ActorKind::Map, 5_000));
    let sink = g.add_actor(Actor::new("result-writer", ActorKind::Sink, 32));
    g.connect(src, 1, resize, 1, 8_192);
    g.connect(resize, 1, csc, 1, 2_048);
    g.connect(csc, 1, sink, 1, 2_048);
    g
}

/// Kalman-style multi-sensor fusion.
pub fn fusion() -> DataflowGraph {
    let mut g = DataflowGraph::new("fusion");
    let imu = g.add_actor(Actor::new("imu-reader", ActorKind::Source, 16));
    let gps = g.add_actor(Actor::new("gps-reader", ActorKind::Source, 16));
    let predict =
        g.add_actor(Actor::new("kf-predict", ActorKind::Map, 2_500).with_state_bytes(512));
    let update = g.add_actor(Actor::new("kf-update", ActorKind::Map, 3_500).with_state_bytes(512));
    let sink = g.add_actor(Actor::new("result-writer", ActorKind::Sink, 16));
    g.connect(imu, 1, predict, 1, 64);
    g.connect(gps, 1, update, 1, 32);
    g.connect(predict, 1, update, 1, 128);
    g.connect(update, 1, sink, 1, 64);
    g
}

/// Resolves a scenario accelerator-configuration id to its kernel graph.
pub fn kernel_for(accel_cfg: u32) -> Option<DataflowGraph> {
    use myrtus_workload::scenarios::accel_cfg as ids;
    match accel_cfg {
        ids::POSE_CNN => Some(pose_cnn()),
        ids::DETECT_CNN => Some(detect_cnn()),
        ids::PREPROC => Some(preproc()),
        ids::FUSION => Some(fusion()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate() {
        for g in [pose_cnn(), detect_cnn(), preproc(), fusion()] {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
        }
    }

    #[test]
    fn ids_resolve() {
        use myrtus_workload::scenarios::accel_cfg as ids;
        assert_eq!(kernel_for(ids::POSE_CNN).map(|g| g.name), Some("pose-cnn".into()));
        assert_eq!(kernel_for(ids::FUSION).map(|g| g.name), Some("fusion".into()));
        assert!(kernel_for(999).is_none());
    }

    #[test]
    fn cnn_kernels_share_frontend_actors() {
        let comp = crate::mdc::compose(&[pose_cnn(), detect_cnn()]).expect("valid");
        let shared = comp.shared_actor_names();
        assert!(shared.contains(&"frame-reader"));
        assert!(shared.contains(&"normalize"));
        assert!(shared.contains(&"conv3x3"));
        assert!(comp.area_report().savings() > 0.2, "{}", comp.area_report().savings());
    }

    #[test]
    fn fusion_has_two_sources() {
        let g = fusion();
        let sources = g.actors().iter().filter(|a| a.kind == ActorKind::Source).count();
        assert_eq!(sources, 2);
        let reps = g.repetition_vector().expect("consistent");
        assert!(reps.iter().all(|&r| r == 1));
    }
}
