//! Causal task spans reconstructed from the structured trace.
//!
//! The simulator emits flat `task_dispatch` → `task_arrive` →
//! `task_start` → `task_complete`/`task_lost`/`task_cancelled` events;
//! [`reconstruct`] folds that stream into one [`TaskSpan`] per task
//! with a transfer / queue-wait / compute breakdown, and
//! [`causal_chain`] extracts the measured critical path through a
//! stage DAG (the chain of binding dependencies that actually
//! determined the end-to-end latency).
//!
//! Retried tasks keep their task id across attempts, so a re-dispatch
//! after a loss or cancellation folds into the *same* logical span:
//! the failed attempt is archived in [`TaskSpan::attempts`] and the
//! top-level timestamps track the latest attempt, keeping the
//! `transfer + wait + compute = total` identity valid per attempt.

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TraceKind};

/// Terminal state of a task span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The task completed (with or without meeting its deadline).
    Completed {
        /// Whether the deadline was met.
        deadline_met: bool,
    },
    /// The task was lost to a node failure (and, if retries were
    /// enabled, never subsequently re-dispatched — a terminal loss).
    Lost,
    /// The task's last attempt was cancelled (attempt timeout or
    /// replica dedup) and never re-dispatched.
    Cancelled,
    /// The task was shed by admission control before it ever ran
    /// (schema v4). Terminal: shed tasks are not retried.
    Shed,
    /// The task was still queued/running when the trace ended.
    InFlight,
}

/// One archived (failed) attempt of a retried task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptSpan {
    /// Node this attempt targeted.
    pub node: u32,
    /// Dispatch instant (µs) of this attempt.
    pub dispatched_at_us: Option<u64>,
    /// Arrival instant (µs) of this attempt.
    pub arrived_at_us: Option<u64>,
    /// Service start instant (µs) of this attempt.
    pub started_at_us: Option<u64>,
    /// Loss/cancellation instant (µs) of this attempt.
    pub ended_at_us: Option<u64>,
    /// Whether the attempt ended in a loss (`true`) or a cancellation
    /// (`false`).
    pub lost: bool,
}

/// One task's reconstructed lifetime. Timestamps describe the *latest*
/// attempt; earlier failed attempts live in [`TaskSpan::attempts`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Task id (raw).
    pub task: u64,
    /// Node the task last targeted (arrival/start/completion node).
    pub node: u32,
    /// Dispatch instant (µs), if the dispatch event is in the trace.
    pub dispatched_at_us: Option<u64>,
    /// Arrival instant at the executing node (µs).
    pub arrived_at_us: Option<u64>,
    /// Service start instant (µs).
    pub started_at_us: Option<u64>,
    /// Completion or loss instant (µs).
    pub ended_at_us: Option<u64>,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Earlier attempts that were lost or cancelled before the final
    /// (top-level) attempt, oldest first.
    pub attempts: Vec<AttemptSpan>,
    /// Dispatch instant of the *first* attempt (equals
    /// `dispatched_at_us` for never-retried tasks).
    pub first_dispatched_at_us: Option<u64>,
}

impl TaskSpan {
    /// Network transfer time: dispatch → arrival (0 for local submits).
    /// Latest attempt only.
    pub fn transfer_us(&self) -> Option<u64> {
        Some(self.arrived_at_us?.saturating_sub(self.dispatched_at_us?))
    }

    /// Queue wait: arrival → service start. Latest attempt only.
    pub fn queue_wait_us(&self) -> Option<u64> {
        Some(self.started_at_us?.saturating_sub(self.arrived_at_us?))
    }

    /// Compute (service) time: start → completion. Latest attempt only.
    pub fn compute_us(&self) -> Option<u64> {
        match self.outcome {
            SpanOutcome::Completed { .. } => {
                Some(self.ended_at_us?.saturating_sub(self.started_at_us?))
            }
            _ => None,
        }
    }

    /// Whole latest attempt: dispatch → terminal event.
    pub fn total_us(&self) -> Option<u64> {
        Some(self.ended_at_us?.saturating_sub(self.dispatched_at_us?))
    }

    /// Whole logical task including every retry: first dispatch →
    /// terminal event of the final attempt.
    pub fn logical_total_us(&self) -> Option<u64> {
        Some(self.ended_at_us?.saturating_sub(self.first_dispatched_at_us?))
    }

    /// Number of attempts seen in the trace (archived failures plus
    /// the current/final one).
    pub fn attempt_count(&self) -> u32 {
        self.attempts.len() as u32 + 1
    }
}

/// Every span of a trace plus the conservation tallies over them.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Spans sorted by task id.
    pub spans: Vec<TaskSpan>,
    /// Spans with a dispatch event.
    pub dispatched: u64,
    /// Spans that completed.
    pub completed: u64,
    /// Spans whose final attempt was lost.
    pub lost: u64,
    /// Spans whose final attempt was cancelled.
    pub cancelled: u64,
    /// Spans shed by admission control (schema v4; 0 for older traces).
    pub shed: u64,
    /// Spans still in flight at the end of the trace.
    pub in_flight: u64,
    /// Total archived (failed-then-retried) attempts across all spans.
    pub retried_attempts: u64,
}

impl SpanSet {
    /// The conservation law every complete trace must satisfy:
    /// `dispatched = completed + lost + cancelled + shed + in_flight`
    /// — every task ends in exactly one final state. Traces predating
    /// schema v4 have `shed == 0`, so the old five-term law is the
    /// same check.
    pub fn is_conserved(&self) -> bool {
        self.dispatched == self.completed + self.lost + self.cancelled + self.shed + self.in_flight
    }

    /// Spans sorted by total duration, longest first (ties by task id);
    /// spans without a measurable total sort last.
    pub fn slowest(&self, k: usize) -> Vec<TaskSpan> {
        let mut v = self.spans.clone();
        v.sort_by(|a, b| {
            b.total_us().unwrap_or(0).cmp(&a.total_us().unwrap_or(0)).then(a.task.cmp(&b.task))
        });
        v.truncate(k);
        v
    }
}

/// Folds a trace into per-task spans.
///
/// Tasks whose dispatch was evicted from the ring still get a span
/// (with `dispatched_at_us: None`), so the function is total over
/// truncated traces; conservation should only be asserted when the
/// ring dropped nothing. A re-dispatch of a task whose previous
/// attempt ended in `task_lost`/`task_cancelled` archives that attempt
/// and restarts the top-level timestamps.
pub fn reconstruct(events: &[TraceEvent]) -> SpanSet {
    let mut map: BTreeMap<u64, TaskSpan> = BTreeMap::new();
    let blank = |task: u64, node: u32| TaskSpan {
        task,
        node,
        dispatched_at_us: None,
        arrived_at_us: None,
        started_at_us: None,
        ended_at_us: None,
        outcome: SpanOutcome::InFlight,
        attempts: Vec::new(),
        first_dispatched_at_us: None,
    };
    for e in events {
        match e.kind {
            TraceKind::TaskDispatch { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                match s.outcome {
                    SpanOutcome::Lost | SpanOutcome::Cancelled => {
                        s.attempts.push(AttemptSpan {
                            node: s.node,
                            dispatched_at_us: s.dispatched_at_us,
                            arrived_at_us: s.arrived_at_us,
                            started_at_us: s.started_at_us,
                            ended_at_us: s.ended_at_us,
                            lost: s.outcome == SpanOutcome::Lost,
                        });
                        s.arrived_at_us = None;
                        s.started_at_us = None;
                        s.ended_at_us = None;
                        s.outcome = SpanOutcome::InFlight;
                    }
                    _ => {}
                }
                s.dispatched_at_us = Some(e.at_us);
                if s.first_dispatched_at_us.is_none() {
                    s.first_dispatched_at_us = Some(e.at_us);
                }
                s.node = node;
            }
            TraceKind::TaskArrive { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.arrived_at_us = Some(e.at_us);
                s.node = node;
            }
            TraceKind::TaskStart { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.started_at_us = Some(e.at_us);
                s.node = node;
            }
            TraceKind::TaskComplete { node, task, deadline_met } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Completed { deadline_met };
            }
            TraceKind::TaskLost { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Lost;
            }
            TraceKind::TaskCancelled { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Cancelled;
            }
            TraceKind::TaskShed { node, task, .. } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Shed;
            }
            TraceKind::TaskCheckpoint { node, task, .. } => {
                // A live migration leaves the source: archive the
                // source attempt (not lost — its execution state rides
                // the checkpoint) and let the follow-up dispatch /
                // arrive / resume events refill the top-level
                // timestamps. The logical span stays one task.
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.attempts.push(AttemptSpan {
                    node: s.node,
                    dispatched_at_us: s.dispatched_at_us,
                    arrived_at_us: s.arrived_at_us,
                    started_at_us: s.started_at_us,
                    ended_at_us: Some(e.at_us),
                    lost: false,
                });
                s.arrived_at_us = None;
                s.started_at_us = None;
                s.ended_at_us = None;
                s.outcome = SpanOutcome::InFlight;
            }
            _ => {}
        }
    }
    let mut set = SpanSet::default();
    for s in map.into_values() {
        if s.dispatched_at_us.is_some() {
            set.dispatched += 1;
        }
        match s.outcome {
            SpanOutcome::Completed { .. } => set.completed += 1,
            SpanOutcome::Lost => set.lost += 1,
            SpanOutcome::Cancelled => set.cancelled += 1,
            SpanOutcome::Shed => set.shed += 1,
            SpanOutcome::InFlight => set.in_flight += 1,
        }
        set.retried_attempts += s.attempts.len() as u64;
        set.spans.push(s);
    }
    set
}

/// Extracts the measured critical path through a stage DAG.
///
/// `preds[i]` lists the predecessors of stage `i` and `finish_us[i]`
/// its measured finish instant (`None` for stages that never ran).
/// Starting from the finished stage with the latest finish, the walk
/// repeatedly steps to the predecessor that finished *last* — the
/// binding dependency — until it reaches a stage with no finished
/// predecessor. Ties break toward the lower stage index. Returns the
/// chain in execution order (source first); empty when nothing
/// finished.
pub fn causal_chain(preds: &[Vec<usize>], finish_us: &[Option<u64>]) -> Vec<usize> {
    debug_assert_eq!(preds.len(), finish_us.len());
    let mut cur = match finish_us
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.map(|v| (i, v)))
        // max_by_key returns the *last* max; scan manually for first-wins.
        .fold(None::<(usize, u64)>, |best, (i, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        }) {
        Some((i, _)) => i,
        None => return Vec::new(),
    };
    let mut chain = vec![cur];
    loop {
        let binding = preds[cur].iter().filter_map(|&p| finish_us[p].map(|v| (p, v))).fold(
            None::<(usize, u64)>,
            |best, (p, v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((p, v)),
            },
        );
        match binding {
            Some((p, _)) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at_us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { seq, at_us, kind }
    }

    #[test]
    fn full_lifecycle_breaks_down() {
        let events = [
            ev(0, 100, TraceKind::TaskDispatch { node: 1, task: 7 }),
            ev(1, 250, TraceKind::TaskArrive { node: 1, task: 7 }),
            ev(2, 400, TraceKind::TaskStart { node: 1, task: 7 }),
            ev(3, 900, TraceKind::TaskComplete { node: 1, task: 7, deadline_met: true }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        let s = &set.spans[0];
        assert_eq!(s.transfer_us(), Some(150));
        assert_eq!(s.queue_wait_us(), Some(150));
        assert_eq!(s.compute_us(), Some(500));
        assert_eq!(s.total_us(), Some(800));
        assert_eq!(s.logical_total_us(), Some(800));
        assert_eq!(s.attempt_count(), 1);
        assert_eq!(s.outcome, SpanOutcome::Completed { deadline_met: true });
        assert!(set.is_conserved());
    }

    #[test]
    fn conservation_counts_every_fate() {
        let events = [
            ev(0, 0, TraceKind::TaskDispatch { node: 0, task: 1 }),
            ev(1, 0, TraceKind::TaskArrive { node: 0, task: 1 }),
            ev(2, 0, TraceKind::TaskStart { node: 0, task: 1 }),
            ev(3, 50, TraceKind::TaskComplete { node: 0, task: 1, deadline_met: false }),
            ev(4, 10, TraceKind::TaskDispatch { node: 2, task: 2 }),
            ev(5, 60, TraceKind::TaskLost { node: 2, task: 2 }),
            ev(6, 70, TraceKind::TaskDispatch { node: 3, task: 3 }),
            ev(7, 80, TraceKind::TaskDispatch { node: 4, task: 4 }),
            ev(8, 95, TraceKind::TaskCancelled { node: 4, task: 4 }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.dispatched, 4);
        assert_eq!(set.completed, 1);
        assert_eq!(set.lost, 1);
        assert_eq!(set.cancelled, 1);
        assert_eq!(set.in_flight, 1);
        assert!(set.is_conserved());
    }

    #[test]
    fn retried_task_folds_into_one_span_with_attempt_breakdown() {
        let events = [
            // Attempt 1: dispatched to node 2, lost in a crash.
            ev(0, 100, TraceKind::TaskDispatch { node: 2, task: 7 }),
            ev(1, 150, TraceKind::TaskArrive { node: 2, task: 7 }),
            ev(2, 200, TraceKind::TaskStart { node: 2, task: 7 }),
            ev(3, 300, TraceKind::TaskLost { node: 2, task: 7 }),
            ev(4, 320, TraceKind::TaskRetry { node: 2, task: 7, attempt: 1 }),
            // Attempt 2: re-placed on node 5, completes.
            ev(5, 320, TraceKind::TaskDispatch { node: 5, task: 7 }),
            ev(6, 360, TraceKind::TaskArrive { node: 5, task: 7 }),
            ev(7, 380, TraceKind::TaskStart { node: 5, task: 7 }),
            ev(8, 500, TraceKind::TaskComplete { node: 5, task: 7, deadline_met: true }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        let s = &set.spans[0];
        assert_eq!(s.attempt_count(), 2);
        assert_eq!(s.outcome, SpanOutcome::Completed { deadline_met: true });
        // Top-level timestamps describe the final attempt…
        assert_eq!(s.node, 5);
        assert_eq!(s.transfer_us(), Some(40));
        assert_eq!(s.queue_wait_us(), Some(20));
        assert_eq!(s.compute_us(), Some(120));
        assert_eq!(s.total_us(), Some(180));
        // …the archived attempt keeps its own breakdown…
        let a = s.attempts[0];
        assert_eq!(a.node, 2);
        assert_eq!(a.dispatched_at_us, Some(100));
        assert_eq!(a.ended_at_us, Some(300));
        assert!(a.lost);
        // …and the logical span covers first dispatch → final end.
        assert_eq!(s.logical_total_us(), Some(400));
        // One dispatched task, one completion: losses folded away.
        assert_eq!(set.dispatched, 1);
        assert_eq!(set.completed, 1);
        assert_eq!(set.lost, 0);
        assert_eq!(set.retried_attempts, 1);
        assert!(set.is_conserved());
    }

    #[test]
    fn cancelled_then_retried_attempt_is_archived_as_not_lost() {
        let events = [
            ev(0, 0, TraceKind::TaskDispatch { node: 1, task: 3 }),
            ev(1, 10, TraceKind::TaskArrive { node: 1, task: 3 }),
            ev(2, 90, TraceKind::TaskTimeout { node: 1, task: 3 }),
            ev(3, 90, TraceKind::TaskCancelled { node: 1, task: 3 }),
            ev(4, 120, TraceKind::TaskDispatch { node: 2, task: 3 }),
        ];
        let set = reconstruct(&events);
        let s = &set.spans[0];
        assert_eq!(s.outcome, SpanOutcome::InFlight);
        assert_eq!(s.attempts.len(), 1);
        assert!(!s.attempts[0].lost);
        assert_eq!(s.attempts[0].ended_at_us, Some(90));
        assert_eq!(set.cancelled, 0);
        assert_eq!(set.in_flight, 1);
    }

    #[test]
    fn shed_tasks_extend_conservation_to_six_terms() {
        let events = [
            // One completed task…
            ev(0, 0, TraceKind::TaskDispatch { node: 0, task: 1 }),
            ev(1, 0, TraceKind::TaskArrive { node: 0, task: 1 }),
            ev(2, 0, TraceKind::TaskStart { node: 0, task: 1 }),
            ev(3, 40, TraceKind::TaskComplete { node: 0, task: 1, deadline_met: true }),
            // …and one shed at admission: dispatch is recorded, then
            // the terminal shed event, with no arrival or start.
            ev(4, 10, TraceKind::TaskDispatch { node: 0, task: 2 }),
            ev(5, 10, TraceKind::TaskShed { node: 0, task: 2, reason: "queue_full" }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.dispatched, 2);
        assert_eq!(set.completed, 1);
        assert_eq!(set.shed, 1);
        assert_eq!(set.in_flight, 0);
        assert!(set.is_conserved());
        let s = set.spans.iter().find(|s| s.task == 2).unwrap();
        assert_eq!(s.outcome, SpanOutcome::Shed);
        assert!(s.started_at_us.is_none());
        assert_eq!(s.ended_at_us, Some(10));
    }

    #[test]
    fn live_migration_folds_into_one_span() {
        let events = [
            // Runs on node 1, checkpointed mid-flight…
            ev(0, 0, TraceKind::TaskDispatch { node: 1, task: 7 }),
            ev(1, 10, TraceKind::TaskArrive { node: 1, task: 7 }),
            ev(2, 20, TraceKind::TaskStart { node: 1, task: 7 }),
            ev(3, 50, TraceKind::TaskCheckpoint { node: 1, task: 7, bytes: 146 }),
            // …migrates to node 2 and resumes there.
            ev(4, 50, TraceKind::TaskDispatch { node: 2, task: 7 }),
            ev(5, 80, TraceKind::TaskArrive { node: 2, task: 7 }),
            ev(6, 80, TraceKind::TaskResume { node: 2, task: 7 }),
            ev(7, 85, TraceKind::TaskStart { node: 2, task: 7 }),
            ev(8, 120, TraceKind::TaskComplete { node: 2, task: 7, deadline_met: true }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        let s = &set.spans[0];
        // One logical task: the migration archived the source attempt
        // without marking it lost, and conservation still holds.
        assert_eq!(s.outcome, SpanOutcome::Completed { deadline_met: true });
        assert_eq!(s.node, 2);
        assert_eq!(s.attempt_count(), 2);
        assert!(!s.attempts[0].lost);
        assert_eq!(s.attempts[0].node, 1);
        assert_eq!(s.attempts[0].ended_at_us, Some(50));
        assert_eq!(s.logical_total_us(), Some(120));
        assert_eq!(set.dispatched, 1);
        assert_eq!(set.completed, 1);
        assert!(set.is_conserved());
    }

    #[test]
    fn truncated_trace_is_handled() {
        // The dispatch was evicted from the ring; the span survives
        // without a dispatch instant and conservation does not hold.
        let events = [ev(0, 5, TraceKind::TaskComplete { node: 0, task: 9, deadline_met: true })];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        assert_eq!(set.dispatched, 0);
        assert_eq!(set.completed, 1);
        assert!(set.spans[0].total_us().is_none());
        assert!(!set.is_conserved());
    }

    #[test]
    fn slowest_ranks_by_total() {
        let mut events = Vec::new();
        for (task, dur) in [(1u64, 100u64), (2, 300), (3, 200)] {
            events.push(ev(0, 0, TraceKind::TaskDispatch { node: 0, task }));
            events.push(ev(0, dur, TraceKind::TaskComplete { node: 0, task, deadline_met: true }));
        }
        let top = reconstruct(&events).slowest(2);
        assert_eq!(top.iter().map(|s| s.task).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn causal_chain_follows_binding_dependency() {
        // Diamond: 0 → {1, 2} → 3; stage 2 finished later, so the
        // critical path is 0 → 2 → 3.
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let finish = vec![Some(10), Some(20), Some(50), Some(60)];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 2, 3]);
    }

    #[test]
    fn causal_chain_handles_missing_stages() {
        let preds = vec![vec![], vec![0], vec![1]];
        // The sink never finished: the chain ends at the last finished
        // stage.
        let finish = vec![Some(10), Some(30), None];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 1]);
        assert_eq!(causal_chain(&preds, &[None, None, None]), Vec::<usize>::new());
        assert_eq!(causal_chain(&[], &[]), Vec::<usize>::new());
    }

    #[test]
    fn causal_chain_ties_break_low() {
        let preds = vec![vec![], vec![], vec![0, 1]];
        let finish = vec![Some(10), Some(10), Some(20)];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 2]);
    }
}
