//! Causal task spans reconstructed from the structured trace.
//!
//! The simulator emits flat `task_dispatch` → `task_arrive` →
//! `task_start` → `task_complete`/`task_lost` events; [`reconstruct`]
//! folds that stream into one [`TaskSpan`] per task with a
//! transfer / queue-wait / compute breakdown, and [`causal_chain`]
//! extracts the measured critical path through a stage DAG (the chain
//! of binding dependencies that actually determined the end-to-end
//! latency).

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TraceKind};

/// Terminal state of a task span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The task completed (with or without meeting its deadline).
    Completed {
        /// Whether the deadline was met.
        deadline_met: bool,
    },
    /// The task was lost to a node failure.
    Lost,
    /// The task was still queued/running when the trace ended.
    InFlight,
}

/// One task's reconstructed lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Task id (raw).
    pub task: u64,
    /// Node the task last targeted (arrival/start/completion node).
    pub node: u32,
    /// Dispatch instant (µs), if the dispatch event is in the trace.
    pub dispatched_at_us: Option<u64>,
    /// Arrival instant at the executing node (µs).
    pub arrived_at_us: Option<u64>,
    /// Service start instant (µs).
    pub started_at_us: Option<u64>,
    /// Completion or loss instant (µs).
    pub ended_at_us: Option<u64>,
    /// How the span ended.
    pub outcome: SpanOutcome,
}

impl TaskSpan {
    /// Network transfer time: dispatch → arrival (0 for local submits).
    pub fn transfer_us(&self) -> Option<u64> {
        Some(self.arrived_at_us?.saturating_sub(self.dispatched_at_us?))
    }

    /// Queue wait: arrival → service start.
    pub fn queue_wait_us(&self) -> Option<u64> {
        Some(self.started_at_us?.saturating_sub(self.arrived_at_us?))
    }

    /// Compute (service) time: start → completion.
    pub fn compute_us(&self) -> Option<u64> {
        match self.outcome {
            SpanOutcome::Completed { .. } => {
                Some(self.ended_at_us?.saturating_sub(self.started_at_us?))
            }
            _ => None,
        }
    }

    /// Whole span: dispatch → terminal event.
    pub fn total_us(&self) -> Option<u64> {
        Some(self.ended_at_us?.saturating_sub(self.dispatched_at_us?))
    }
}

/// Every span of a trace plus the conservation tallies over them.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Spans sorted by task id.
    pub spans: Vec<TaskSpan>,
    /// Spans with a dispatch event.
    pub dispatched: u64,
    /// Spans that completed.
    pub completed: u64,
    /// Spans that were lost.
    pub lost: u64,
    /// Spans still in flight at the end of the trace.
    pub in_flight: u64,
}

impl SpanSet {
    /// The conservation law every complete trace must satisfy:
    /// `dispatched = completed + lost + in_flight`.
    pub fn is_conserved(&self) -> bool {
        self.dispatched == self.completed + self.lost + self.in_flight
    }

    /// Spans sorted by total duration, longest first (ties by task id);
    /// spans without a measurable total sort last.
    pub fn slowest(&self, k: usize) -> Vec<TaskSpan> {
        let mut v = self.spans.clone();
        v.sort_by(|a, b| {
            b.total_us().unwrap_or(0).cmp(&a.total_us().unwrap_or(0)).then(a.task.cmp(&b.task))
        });
        v.truncate(k);
        v
    }
}

/// Folds a trace into per-task spans.
///
/// Tasks whose dispatch was evicted from the ring still get a span
/// (with `dispatched_at_us: None`), so the function is total over
/// truncated traces; conservation should only be asserted when the
/// ring dropped nothing.
pub fn reconstruct(events: &[TraceEvent]) -> SpanSet {
    let mut map: BTreeMap<u64, TaskSpan> = BTreeMap::new();
    let blank = |task: u64, node: u32| TaskSpan {
        task,
        node,
        dispatched_at_us: None,
        arrived_at_us: None,
        started_at_us: None,
        ended_at_us: None,
        outcome: SpanOutcome::InFlight,
    };
    for e in events {
        match e.kind {
            TraceKind::TaskDispatch { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.dispatched_at_us = Some(e.at_us);
                s.node = node;
            }
            TraceKind::TaskArrive { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.arrived_at_us = Some(e.at_us);
                s.node = node;
            }
            TraceKind::TaskStart { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.started_at_us = Some(e.at_us);
                s.node = node;
            }
            TraceKind::TaskComplete { node, task, deadline_met } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Completed { deadline_met };
            }
            TraceKind::TaskLost { node, task } => {
                let s = map.entry(task).or_insert_with(|| blank(task, node));
                s.ended_at_us = Some(e.at_us);
                s.node = node;
                s.outcome = SpanOutcome::Lost;
            }
            _ => {}
        }
    }
    let mut set = SpanSet::default();
    for s in map.into_values() {
        if s.dispatched_at_us.is_some() {
            set.dispatched += 1;
        }
        match s.outcome {
            SpanOutcome::Completed { .. } => set.completed += 1,
            SpanOutcome::Lost => set.lost += 1,
            SpanOutcome::InFlight => set.in_flight += 1,
        }
        set.spans.push(s);
    }
    set
}

/// Extracts the measured critical path through a stage DAG.
///
/// `preds[i]` lists the predecessors of stage `i` and `finish_us[i]`
/// its measured finish instant (`None` for stages that never ran).
/// Starting from the finished stage with the latest finish, the walk
/// repeatedly steps to the predecessor that finished *last* — the
/// binding dependency — until it reaches a stage with no finished
/// predecessor. Ties break toward the lower stage index. Returns the
/// chain in execution order (source first); empty when nothing
/// finished.
pub fn causal_chain(preds: &[Vec<usize>], finish_us: &[Option<u64>]) -> Vec<usize> {
    debug_assert_eq!(preds.len(), finish_us.len());
    let mut cur = match finish_us
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.map(|v| (i, v)))
        // max_by_key returns the *last* max; scan manually for first-wins.
        .fold(None::<(usize, u64)>, |best, (i, v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        }) {
        Some((i, _)) => i,
        None => return Vec::new(),
    };
    let mut chain = vec![cur];
    loop {
        let binding = preds[cur].iter().filter_map(|&p| finish_us[p].map(|v| (p, v))).fold(
            None::<(usize, u64)>,
            |best, (p, v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((p, v)),
            },
        );
        match binding {
            Some((p, _)) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at_us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { seq, at_us, kind }
    }

    #[test]
    fn full_lifecycle_breaks_down() {
        let events = [
            ev(0, 100, TraceKind::TaskDispatch { node: 1, task: 7 }),
            ev(1, 250, TraceKind::TaskArrive { node: 1, task: 7 }),
            ev(2, 400, TraceKind::TaskStart { node: 1, task: 7 }),
            ev(3, 900, TraceKind::TaskComplete { node: 1, task: 7, deadline_met: true }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        let s = set.spans[0];
        assert_eq!(s.transfer_us(), Some(150));
        assert_eq!(s.queue_wait_us(), Some(150));
        assert_eq!(s.compute_us(), Some(500));
        assert_eq!(s.total_us(), Some(800));
        assert_eq!(s.outcome, SpanOutcome::Completed { deadline_met: true });
        assert!(set.is_conserved());
    }

    #[test]
    fn conservation_counts_every_fate() {
        let events = [
            ev(0, 0, TraceKind::TaskDispatch { node: 0, task: 1 }),
            ev(1, 0, TraceKind::TaskArrive { node: 0, task: 1 }),
            ev(2, 0, TraceKind::TaskStart { node: 0, task: 1 }),
            ev(3, 50, TraceKind::TaskComplete { node: 0, task: 1, deadline_met: false }),
            ev(4, 10, TraceKind::TaskDispatch { node: 2, task: 2 }),
            ev(5, 60, TraceKind::TaskLost { node: 2, task: 2 }),
            ev(6, 70, TraceKind::TaskDispatch { node: 3, task: 3 }),
        ];
        let set = reconstruct(&events);
        assert_eq!(set.dispatched, 3);
        assert_eq!(set.completed, 1);
        assert_eq!(set.lost, 1);
        assert_eq!(set.in_flight, 1);
        assert!(set.is_conserved());
    }

    #[test]
    fn truncated_trace_is_handled() {
        // The dispatch was evicted from the ring; the span survives
        // without a dispatch instant and conservation does not hold.
        let events = [ev(0, 5, TraceKind::TaskComplete { node: 0, task: 9, deadline_met: true })];
        let set = reconstruct(&events);
        assert_eq!(set.spans.len(), 1);
        assert_eq!(set.dispatched, 0);
        assert_eq!(set.completed, 1);
        assert!(set.spans[0].total_us().is_none());
        assert!(!set.is_conserved());
    }

    #[test]
    fn slowest_ranks_by_total() {
        let mut events = Vec::new();
        for (task, dur) in [(1u64, 100u64), (2, 300), (3, 200)] {
            events.push(ev(0, 0, TraceKind::TaskDispatch { node: 0, task }));
            events.push(ev(0, dur, TraceKind::TaskComplete { node: 0, task, deadline_met: true }));
        }
        let top = reconstruct(&events).slowest(2);
        assert_eq!(top.iter().map(|s| s.task).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn causal_chain_follows_binding_dependency() {
        // Diamond: 0 → {1, 2} → 3; stage 2 finished later, so the
        // critical path is 0 → 2 → 3.
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let finish = vec![Some(10), Some(20), Some(50), Some(60)];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 2, 3]);
    }

    #[test]
    fn causal_chain_handles_missing_stages() {
        let preds = vec![vec![], vec![0], vec![1]];
        // The sink never finished: the chain ends at the last finished
        // stage.
        let finish = vec![Some(10), Some(30), None];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 1]);
        assert_eq!(causal_chain(&preds, &[None, None, None]), Vec::<usize>::new());
        assert_eq!(causal_chain(&[], &[]), Vec::<usize>::new());
    }

    #[test]
    fn causal_chain_ties_break_low() {
        let preds = vec![vec![], vec![], vec![0, 1]];
        let finish = vec![Some(10), Some(10), Some(20)];
        assert_eq!(causal_chain(&preds, &finish), vec![0, 2]);
    }
}
