//! # myrtus-obs
//!
//! Deterministic observability substrate for the MYRTUS continuum
//! reproduction: a [`MetricsRegistry`] of monotonic counters, gauges and
//! fixed-bucket histograms, plus a bounded [`TraceBuffer`] of structured,
//! sim-time-stamped [`TraceEvent`]s — all behind a cheap, clonable
//! [`Obs`] handle that is a no-op when disabled.
//!
//! Design rules (see DESIGN.md § Observability):
//!
//! * **No wall-clock.** Every event is stamped with *simulated* time in
//!   microseconds (`at_us`); exports never contain host timestamps, so
//!   two runs with the same seed export byte-identical artifacts.
//! * **Static names.** Metrics are keyed by `&'static str` names and
//!   labels and stored in `BTreeMap`s, so export order is the sorted
//!   key order — never `HashMap` iteration order.
//! * **Zero overhead when disabled.** [`Obs`] wraps an
//!   `Option<Arc<..>>`; the disabled handle is `None` and every
//!   recording call is a single branch on it.
//! * **Serial-context traces only.** Trace events must be emitted from
//!   deterministic (serial) code paths; parallel scoring paths record
//!   only order-independent counter totals.
//!
//! ```
//! use myrtus_obs::{Obs, ObsConfig, TraceKind};
//!
//! let obs = Obs::new(ObsConfig::on());
//! obs.counter_inc("sim_tasks_dispatched", "");
//! obs.trace(1_000, TraceKind::TaskDispatch { node: 0, task: 7 });
//! assert_eq!(obs.counter_value("sim_tasks_dispatched", ""), 1);
//! assert!(obs.export_trace_jsonl().contains("\"type\":\"task_dispatch\""));
//!
//! let off = Obs::disabled();
//! off.counter_inc("sim_tasks_dispatched", "");
//! assert_eq!(off.counter_value("sim_tasks_dispatched", ""), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod metrics;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanOutcome, SpanSet, TaskSpan};
pub use timeseries::{TimeSeriesStore, TsSample};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};

use std::sync::{Arc, Mutex};

/// Configuration for the observability layer.
///
/// `Copy` so it can live inside other `Copy` config structs (e.g.
/// `mirto::engine::EngineConfig`). Off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When `false`, [`Obs::new`] returns the same
    /// no-op handle as [`Obs::disabled`].
    pub enabled: bool,
    /// Ring capacity of the trace buffer: older events are evicted
    /// (and counted as dropped) once this many are retained.
    pub trace_capacity: usize,
    /// Simulated-time interval between periodic telemetry scrapes, in
    /// microseconds. `0` disables the scrape timer (no time series are
    /// recorded). The simulator arms a repeating sim-time timer at this
    /// interval and samples node/link/rate series into the
    /// [`TimeSeriesStore`].
    pub scrape_interval_us: u64,
}

impl ObsConfig {
    /// Default trace ring capacity (events retained).
    pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

    /// Default scrape interval: 100 ms of simulated time.
    pub const DEFAULT_SCRAPE_INTERVAL_US: u64 = 100_000;

    /// Observability off (the default).
    pub const fn off() -> Self {
        ObsConfig {
            enabled: false,
            trace_capacity: Self::DEFAULT_TRACE_CAPACITY,
            scrape_interval_us: 0,
        }
    }

    /// Observability on with the default trace capacity and scrape
    /// interval.
    pub const fn on() -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: Self::DEFAULT_TRACE_CAPACITY,
            scrape_interval_us: Self::DEFAULT_SCRAPE_INTERVAL_US,
        }
    }

    /// The same config with a different scrape interval (0 disables
    /// the periodic scrape).
    pub const fn with_scrape_interval_us(mut self, scrape_interval_us: u64) -> Self {
        self.scrape_interval_us = scrape_interval_us;
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

struct Inner {
    metrics: MetricsRegistry,
    traces: Mutex<TraceBuffer>,
    timeseries: TimeSeriesStore,
    scrape_interval_us: u64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").finish_non_exhaustive()
    }
}

/// Cheap, clonable observability handle.
///
/// A disabled handle holds no allocation at all; every recording call
/// first branches on `self.0.is_none()` and returns immediately, which
/// keeps the instrumented hot paths within noise of the uninstrumented
/// ones. Clones share the same registry and trace buffer, so a single
/// handle can be installed into the simulator, the plan cache and the
/// deployment proxy and observed from the final report.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<Inner>>);

impl Obs {
    /// Builds a handle from a config; disabled configs yield a no-op
    /// handle indistinguishable from [`Obs::disabled`].
    pub fn new(cfg: ObsConfig) -> Self {
        if !cfg.enabled {
            return Obs(None);
        }
        Obs(Some(Arc::new(Inner {
            metrics: MetricsRegistry::new(),
            traces: Mutex::new(TraceBuffer::new(cfg.trace_capacity)),
            timeseries: TimeSeriesStore::new(),
            scrape_interval_us: cfg.scrape_interval_us,
        })))
    }

    /// The no-op handle.
    pub const fn disabled() -> Self {
        Obs(None)
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `delta` to the monotonic counter `name{label}`.
    pub fn counter_add(&self, name: &'static str, label: &'static str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.metrics.counter_add(name, label, delta);
        }
    }

    /// Increments the monotonic counter `name{label}` by one.
    pub fn counter_inc(&self, name: &'static str, label: &'static str) {
        self.counter_add(name, label, 1);
    }

    /// Sets the gauge `name{label}` to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, label: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.metrics.gauge_set(name, label, value);
        }
    }

    /// Records `value` into the fixed-bucket histogram `name{label}`
    /// with the given static upper bounds (an implicit `+inf` bucket is
    /// always appended). The bounds of a series' *first* observation
    /// win; later observations reuse them.
    pub fn observe(
        &self,
        name: &'static str,
        label: &'static str,
        bounds: &'static [f64],
        value: f64,
    ) {
        if let Some(inner) = &self.0 {
            inner.metrics.observe(name, label, bounds, value);
        }
    }

    /// Appends a trace event stamped with simulated time `at_us`.
    ///
    /// Must only be called from serial (deterministic) contexts — see
    /// the crate-level determinism rules.
    pub fn trace(&self, at_us: u64, kind: TraceKind) {
        if let Some(inner) = &self.0 {
            inner.traces.lock().expect("trace lock").push(at_us, kind);
        }
    }

    /// Current value of counter `name{label}` (0 when disabled/absent).
    pub fn counter_value(&self, name: &'static str, label: &'static str) -> u64 {
        self.0.as_ref().map_or(0, |i| i.metrics.counter_value(name, label))
    }

    /// Sum of counter `name` across all labels (0 when disabled).
    pub fn counter_sum(&self, name: &'static str) -> u64 {
        self.0.as_ref().map_or(0, |i| i.metrics.counter_sum(name))
    }

    /// A deterministic, sorted snapshot of every metric. The trace
    /// ring's eviction tally is injected as the `trace_events_dropped`
    /// counter (present even at 0), so ring overflow is visible in
    /// every export.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.0.as_ref().map_or_else(MetricsSnapshot::default, |i| {
            let mut snap = i.metrics.snapshot();
            let dropped = i.traces.lock().expect("trace lock").dropped();
            snap.counters.push((("trace_events_dropped", ""), dropped));
            snap.counters.sort_by_key(|(k, _)| *k);
            snap
        })
    }

    /// The configured scrape interval in simulated microseconds (0 when
    /// disabled or when the handle itself is disabled).
    pub fn scrape_interval_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.scrape_interval_us)
    }

    /// Appends a time-series sample to `name{label}` at simulated time
    /// `at_us`. Like traces, series must only be recorded from serial
    /// contexts (the scrape timer and the MAPE monitoring round).
    pub fn ts_record(&self, name: &'static str, label: &str, at_us: u64, value: f64) {
        if let Some(inner) = &self.0 {
            inner.timeseries.record(name, label, at_us, value);
        }
    }

    /// All samples of time series `name{label}`, oldest first.
    pub fn ts_series(&self, name: &'static str, label: &str) -> Vec<TsSample> {
        self.0.as_ref().map_or_else(Vec::new, |i| i.timeseries.series(name, label))
    }

    /// The last `n` samples of time series `name{label}`, oldest first.
    pub fn ts_last_n(&self, name: &'static str, label: &str, n: usize) -> Vec<TsSample> {
        self.0.as_ref().map_or_else(Vec::new, |i| i.timeseries.last_n(name, label, n))
    }

    /// Total number of time-series samples recorded so far.
    pub fn ts_sample_count(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.timeseries.sample_count())
    }

    /// All time series as deterministic CSV (`series,label,at_us,value`
    /// rows in sorted series order; empty string when disabled or when
    /// nothing was scraped).
    pub fn export_timeseries_csv(&self) -> String {
        self.0.as_ref().map_or_else(String::new, |i| i.timeseries.export_csv())
    }

    /// All time series as deterministic JSON Lines.
    pub fn export_timeseries_jsonl(&self) -> String {
        self.0.as_ref().map_or_else(String::new, |i| i.timeseries.export_jsonl())
    }

    /// A copy of the retained trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |i| i.traces.lock().expect("trace lock").events())
    }

    /// Number of retained trace events.
    pub fn trace_len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.traces.lock().expect("trace lock").len())
    }

    /// Number of trace events evicted from the ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.traces.lock().expect("trace lock").dropped())
    }

    /// The retained trace as deterministic JSON Lines (one event per
    /// line, oldest first; empty string when disabled).
    pub fn export_trace_jsonl(&self) -> String {
        export::trace_jsonl(&self.trace_events())
    }

    /// All metrics as deterministic JSON Lines, sorted by kind then
    /// name then label.
    pub fn export_metrics_jsonl(&self) -> String {
        export::metrics_jsonl(&self.metrics_snapshot())
    }

    /// All metrics as a fixed-width, human-readable table.
    pub fn export_metrics_table(&self) -> String {
        export::metrics_table(&self.metrics_snapshot())
    }
}

/// Maps a small index to a static label (`"0"` … `"15"`, saturating at
/// `"16+"`). Counter and gauge labels must be `&'static str`; this
/// table lets per-application or per-round series be labelled without
/// leaking memory for unbounded dynamic strings.
pub fn index_label(i: usize) -> &'static str {
    const LABELS: &[&str] =
        &["0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15"];
    LABELS.get(i).copied().unwrap_or("16+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::new(ObsConfig::default());
        assert!(!obs.enabled());
        obs.counter_add("c", "l", 5);
        obs.gauge_set("g", "", 1.0);
        obs.observe("h", "", &[1.0], 0.5);
        obs.trace(0, TraceKind::MapePhase { phase: "monitor" });
        obs.ts_record("util", "edge", 0, 0.5);
        assert_eq!(obs.counter_value("c", "l"), 0);
        assert_eq!(obs.trace_len(), 0);
        assert_eq!(obs.ts_sample_count(), 0);
        assert_eq!(obs.scrape_interval_us(), 0);
        assert!(obs.export_trace_jsonl().is_empty());
        assert!(obs.export_metrics_jsonl().is_empty());
        assert!(obs.export_timeseries_csv().is_empty());
        assert!(obs.metrics_snapshot().is_empty());
    }

    #[test]
    fn enabled_snapshot_always_reports_dropped_counter() {
        let obs = Obs::new(ObsConfig::on());
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters, vec![(("trace_events_dropped", ""), 0)]);
        assert!(obs.export_metrics_jsonl().contains(
            "{\"kind\":\"counter\",\"metric\":\"trace_events_dropped\",\"label\":\"\",\"value\":0}"
        ));
    }

    #[test]
    fn overflowing_ring_surfaces_in_the_snapshot() {
        let obs = Obs::new(ObsConfig { trace_capacity: 2, ..ObsConfig::on() });
        for i in 0..5 {
            obs.trace(i, TraceKind::NodeCrash { node: i as u32 });
        }
        assert_eq!(obs.trace_dropped(), 3);
        let snap = obs.metrics_snapshot();
        assert!(snap.counters.contains(&(("trace_events_dropped", ""), 3)));
        // Sort order holds even with other counters interleaved.
        obs.counter_inc("zz_late", "");
        obs.counter_inc("aa_early", "");
        let keys: Vec<_> = obs.metrics_snapshot().counters.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![("aa_early", ""), ("trace_events_dropped", ""), ("zz_late", "")]);
    }

    #[test]
    fn timeseries_flow_through_the_handle() {
        let obs = Obs::new(ObsConfig::on());
        assert_eq!(obs.scrape_interval_us(), ObsConfig::DEFAULT_SCRAPE_INTERVAL_US);
        obs.ts_record("util", "edge", 0, 0.25);
        obs.ts_record("util", "edge", 100, 0.5);
        assert_eq!(obs.ts_series("util", "edge").len(), 2);
        assert_eq!(obs.ts_last_n("util", "edge", 1)[0].value, 0.5);
        assert_eq!(obs.ts_sample_count(), 2);
        assert!(obs.export_timeseries_csv().starts_with("series,label,at_us,value\n"));
        assert!(obs.export_timeseries_jsonl().contains("\"series\":\"util\""));
    }

    #[test]
    fn index_labels_saturate() {
        assert_eq!(index_label(0), "0");
        assert_eq!(index_label(15), "15");
        assert_eq!(index_label(16), "16+");
        assert_eq!(index_label(999), "16+");
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig::on());
        let twin = obs.clone();
        twin.counter_inc("c", "");
        obs.counter_inc("c", "");
        assert_eq!(obs.counter_value("c", ""), 2);
        twin.trace(3, TraceKind::NodeCrash { node: 1 });
        assert_eq!(obs.trace_len(), 1);
        assert_eq!(obs.trace_events()[0].at_us, 3);
    }

    #[test]
    fn counter_sum_spans_labels() {
        let obs = Obs::new(ObsConfig::on());
        obs.counter_add("placement_rejected", "arity_mismatch", 2);
        obs.counter_add("placement_rejected", "unreachable_hop", 3);
        obs.counter_inc("other", "");
        assert_eq!(obs.counter_sum("placement_rejected"), 5);
        assert_eq!(obs.counter_sum("missing"), 0);
    }

    #[test]
    fn config_defaults_are_off() {
        assert_eq!(ObsConfig::default(), ObsConfig::off());
        assert!(ObsConfig::on().enabled);
        assert_eq!(ObsConfig::on().trace_capacity, ObsConfig::DEFAULT_TRACE_CAPACITY);
    }
}
