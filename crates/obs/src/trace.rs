//! Structured trace spans: sim-time-stamped events with typed payloads,
//! retained in a bounded ring so long runs cannot exhaust memory.
//!
//! Events use raw ids (`u32` nodes/links, `u64` tasks) rather than the
//! continuum's newtypes so this crate stays a dependency-free leaf.

use std::collections::VecDeque;

/// Typed payload of a trace event. Each variant maps to one `"type"`
/// tag in the JSONL export — see [`TraceKind::type_name`] and the
/// catalogue in DESIGN.md § Observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A task was submitted towards a node (locally or via the network).
    TaskDispatch {
        /// Destination node (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A task arrived at its destination node (after any network
    /// transfer); `dispatch → arrive` measures transfer time and
    /// `arrive → start` queue wait.
    TaskArrive {
        /// Destination node (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A task started executing on a node.
    TaskStart {
        /// Executing node (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A task ran to completion.
    TaskComplete {
        /// Executing node (raw id).
        node: u32,
        /// Task id.
        task: u64,
        /// Whether the task met its deadline (always `true` for
        /// deadline-free tasks).
        deadline_met: bool,
    },
    /// A task was lost (crash of its host, or arrival at a down node).
    /// Emitted once per task so span reconstruction can attribute every
    /// loss.
    TaskLost {
        /// Node that lost it (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A previously lost or timed-out task was re-offered for another
    /// attempt after its backoff elapsed.
    TaskRetry {
        /// Node the failed attempt targeted (raw id).
        node: u32,
        /// Task id.
        task: u64,
        /// Retry number (1-based: the first retry is attempt 1).
        attempt: u32,
    },
    /// An attempt exceeded its per-attempt timeout and was cancelled.
    TaskTimeout {
        /// Node the attempt was running or queued on (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A task was cancelled (straggler timeout or replica dedup); the
    /// span ends without completing, but the task is not lost work —
    /// another attempt or replica carries it.
    TaskCancelled {
        /// Node the cancelled attempt targeted (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A node went down (fault injection or scheduled outage).
    NodeCrash {
        /// The crashed node (raw id).
        node: u32,
    },
    /// A node came back up.
    NodeRecover {
        /// The recovered node (raw id).
        node: u32,
    },
    /// A link went down.
    LinkDown {
        /// The cut link (raw id).
        link: u32,
    },
    /// A link came back up.
    LinkUp {
        /// The restored link (raw id).
        link: u32,
    },
    /// A MAPE loop phase boundary (monitor → analyze → plan → execute).
    MapePhase {
        /// One of `"monitor"`, `"analyze"`, `"plan"`, `"execute"`.
        phase: &'static str,
    },
    /// A manager took an adaptation action.
    ManagerAction {
        /// Which manager: `"node"`, `"network"`, `"wl"`, `"app"`.
        manager: &'static str,
        /// What it did (e.g. `"op_switch"`, `"detour"`, `"reallocate"`).
        action: &'static str,
        /// The acted-on entity (raw node id, component index, …).
        subject: u64,
    },
    /// A component was bound to a node at deployment time.
    Deploy {
        /// Application id.
        app: u16,
        /// Component index within the app.
        component: u32,
        /// Host node (raw id).
        node: u32,
    },
    /// A deployed component was migrated between nodes.
    Migrate {
        /// Application id.
        app: u16,
        /// Component index within the app.
        component: u32,
        /// Previous host (raw id).
        from: u32,
        /// New host (raw id).
        to: u32,
    },
    /// A task passed admission control (schema v4; only emitted when an
    /// admission policy is installed).
    TaskAdmitted {
        /// Destination node (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
    /// A task was shed by admission control instead of dispatched
    /// (schema v4). Shed tasks are terminal: no arrival, no retry.
    TaskShed {
        /// Destination node (raw id).
        node: u32,
        /// Task id.
        task: u64,
        /// Why: `"queue_full"`, `"rate_limit"`, or `"slo_hopeless"`.
        reason: &'static str,
    },
    /// A running task body was checkpointed at its source node for a
    /// live migration (schema v5). The execution state travels with
    /// the checkpoint, so span reconstruction archives the source
    /// attempt without counting it as lost work: checkpoint →
    /// re-dispatch → resume is one logical span.
    TaskCheckpoint {
        /// Source node being vacated (raw id).
        node: u32,
        /// Task id.
        task: u64,
        /// Canonical checkpoint size in bytes (the payload that
        /// crosses the network instead of the task's input).
        bytes: u64,
    },
    /// A checkpointed task body resumed execution at its destination
    /// node (schema v5); paired with the preceding `task_checkpoint`.
    TaskResume {
        /// Destination node (raw id).
        node: u32,
        /// Task id.
        task: u64,
    },
}

impl TraceKind {
    /// Every `"type"` tag that can appear in a JSONL export, in the
    /// order of the DESIGN.md catalogue. Tests iterate this to assert
    /// scenario coverage.
    pub const ALL_TYPES: &'static [&'static str] = &[
        "task_dispatch",
        "task_arrive",
        "task_start",
        "task_complete",
        "task_lost",
        "task_retry",
        "task_timeout",
        "task_cancelled",
        "node_crash",
        "node_recover",
        "link_down",
        "link_up",
        "mape_phase",
        "manager_action",
        "deploy",
        "migrate",
    ];

    /// Schema-v4 extension tags (elastic serving). Kept out of
    /// [`Self::ALL_TYPES`] so the v3 golden-coverage test — which runs
    /// an admission-free scenario — stays meaningful; the full
    /// catalogue is `ALL_TYPES ∪ ELASTIC_TYPES`.
    pub const ELASTIC_TYPES: &'static [&'static str] = &["task_admitted", "task_shed"];

    /// Schema-v5 extension tags (portable task bodies). A live
    /// migration emits `task_checkpoint` at the source and
    /// `task_resume` at the destination; both are absent from
    /// VM-free traces, so older golden-coverage tests stay valid. The
    /// full catalogue is `ALL_TYPES ∪ ELASTIC_TYPES ∪ VM_TYPES`.
    pub const VM_TYPES: &'static [&'static str] = &["task_checkpoint", "task_resume"];

    /// The `"type"` tag this payload serializes under.
    pub const fn type_name(&self) -> &'static str {
        match self {
            TraceKind::TaskDispatch { .. } => "task_dispatch",
            TraceKind::TaskArrive { .. } => "task_arrive",
            TraceKind::TaskStart { .. } => "task_start",
            TraceKind::TaskComplete { .. } => "task_complete",
            TraceKind::TaskLost { .. } => "task_lost",
            TraceKind::TaskRetry { .. } => "task_retry",
            TraceKind::TaskTimeout { .. } => "task_timeout",
            TraceKind::TaskCancelled { .. } => "task_cancelled",
            TraceKind::NodeCrash { .. } => "node_crash",
            TraceKind::NodeRecover { .. } => "node_recover",
            TraceKind::LinkDown { .. } => "link_down",
            TraceKind::LinkUp { .. } => "link_up",
            TraceKind::MapePhase { .. } => "mape_phase",
            TraceKind::ManagerAction { .. } => "manager_action",
            TraceKind::Deploy { .. } => "deploy",
            TraceKind::Migrate { .. } => "migrate",
            TraceKind::TaskAdmitted { .. } => "task_admitted",
            TraceKind::TaskShed { .. } => "task_shed",
            TraceKind::TaskCheckpoint { .. } => "task_checkpoint",
            TraceKind::TaskResume { .. } => "task_resume",
        }
    }
}

/// One recorded span: a payload stamped with simulated time and a
/// buffer-global sequence number (monotonic even across ring eviction,
/// so gaps reveal dropped events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Simulated time of the event, in microseconds.
    pub at_us: u64,
    /// The typed payload.
    pub kind: TraceKind,
}

/// Bounded ring of [`TraceEvent`]s: pushing beyond capacity evicts the
/// oldest event and counts it as dropped.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// A ring retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, at_us: u64, kind: TraceKind) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent { seq: self.next_seq, at_us, kind });
        self.next_seq += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq_monotonic() {
        let mut buf = TraceBuffer::new(2);
        buf.push(0, TraceKind::NodeCrash { node: 0 });
        buf.push(1, TraceKind::NodeCrash { node: 1 });
        buf.push(2, TraceKind::NodeCrash { node: 2 });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let seqs: Vec<u64> = buf.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut buf = TraceBuffer::new(0);
        buf.push(0, TraceKind::LinkDown { link: 3 });
        assert_eq!(buf.len(), 1);
        buf.push(1, TraceKind::LinkUp { link: 3 });
        assert_eq!(buf.events()[0].kind, TraceKind::LinkUp { link: 3 });
    }

    #[test]
    fn type_names_cover_every_variant() {
        let samples = [
            TraceKind::TaskDispatch { node: 0, task: 0 },
            TraceKind::TaskArrive { node: 0, task: 0 },
            TraceKind::TaskStart { node: 0, task: 0 },
            TraceKind::TaskComplete { node: 0, task: 0, deadline_met: true },
            TraceKind::TaskLost { node: 0, task: 0 },
            TraceKind::TaskRetry { node: 0, task: 0, attempt: 1 },
            TraceKind::TaskTimeout { node: 0, task: 0 },
            TraceKind::TaskCancelled { node: 0, task: 0 },
            TraceKind::NodeCrash { node: 0 },
            TraceKind::NodeRecover { node: 0 },
            TraceKind::LinkDown { link: 0 },
            TraceKind::LinkUp { link: 0 },
            TraceKind::MapePhase { phase: "monitor" },
            TraceKind::ManagerAction { manager: "node", action: "op_switch", subject: 0 },
            TraceKind::Deploy { app: 0, component: 0, node: 0 },
            TraceKind::Migrate { app: 0, component: 0, from: 0, to: 1 },
            TraceKind::TaskAdmitted { node: 0, task: 0 },
            TraceKind::TaskShed { node: 0, task: 0, reason: "queue_full" },
            TraceKind::TaskCheckpoint { node: 0, task: 0, bytes: 64 },
            TraceKind::TaskResume { node: 1, task: 0 },
        ];
        let names: Vec<&str> = samples.iter().map(|k| k.type_name()).collect();
        let catalogue: Vec<&str> = TraceKind::ALL_TYPES
            .iter()
            .chain(TraceKind::ELASTIC_TYPES)
            .chain(TraceKind::VM_TYPES)
            .copied()
            .collect();
        assert_eq!(names, catalogue);
    }
}
