//! Deterministic exporters: JSON Lines and fixed-width tables.
//!
//! JSON is emitted by hand (the workspace's vendored `serde` stub has
//! no serializer backend) with a fixed key order per record type, so a
//! byte-for-byte comparison of two exports is a valid determinism
//! check. Floats use Rust's shortest round-trip `Display`, which is
//! itself deterministic.

use crate::metrics::MetricsSnapshot;
use crate::trace::{TraceEvent, TraceKind};

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one trace event as a single JSON object (no newline).
/// Key order is fixed: `seq`, `at_us`, `type`, then payload fields in
/// declaration order.
pub fn trace_event_json(e: &TraceEvent) -> String {
    let head =
        format!("{{\"seq\":{},\"at_us\":{},\"type\":\"{}\"", e.seq, e.at_us, e.kind.type_name());
    let tail = match e.kind {
        TraceKind::TaskDispatch { node, task }
        | TraceKind::TaskArrive { node, task }
        | TraceKind::TaskStart { node, task }
        | TraceKind::TaskLost { node, task }
        | TraceKind::TaskTimeout { node, task }
        | TraceKind::TaskCancelled { node, task }
        | TraceKind::TaskAdmitted { node, task }
        | TraceKind::TaskResume { node, task } => {
            format!(",\"node\":{node},\"task\":{task}}}")
        }
        TraceKind::TaskCheckpoint { node, task, bytes } => {
            format!(",\"node\":{node},\"task\":{task},\"bytes\":{bytes}}}")
        }
        TraceKind::TaskShed { node, task, reason } => {
            format!(",\"node\":{node},\"task\":{task},\"reason\":\"{}\"}}", esc(reason))
        }
        TraceKind::TaskRetry { node, task, attempt } => {
            format!(",\"node\":{node},\"task\":{task},\"attempt\":{attempt}}}")
        }
        TraceKind::TaskComplete { node, task, deadline_met } => {
            format!(",\"node\":{node},\"task\":{task},\"deadline_met\":{deadline_met}}}")
        }
        TraceKind::NodeCrash { node } | TraceKind::NodeRecover { node } => {
            format!(",\"node\":{node}}}")
        }
        TraceKind::LinkDown { link } | TraceKind::LinkUp { link } => format!(",\"link\":{link}}}"),
        TraceKind::MapePhase { phase } => format!(",\"phase\":\"{}\"}}", esc(phase)),
        TraceKind::ManagerAction { manager, action, subject } => {
            format!(
                ",\"manager\":\"{}\",\"action\":\"{}\",\"subject\":{subject}}}",
                esc(manager),
                esc(action)
            )
        }
        TraceKind::Deploy { app, component, node } => {
            format!(",\"app\":{app},\"component\":{component},\"node\":{node}}}")
        }
        TraceKind::Migrate { app, component, from, to } => {
            format!(",\"app\":{app},\"component\":{component},\"from\":{from},\"to\":{to}}}")
        }
    };
    head + &tail
}

/// The whole trace as JSON Lines, oldest event first. Empty input
/// yields the empty string.
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&trace_event_json(e));
        out.push('\n');
    }
    out
}

/// A metrics snapshot as JSON Lines: counters, then gauges, then
/// histograms, each sorted by key (the snapshot is already sorted).
pub fn metrics_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for ((name, label), value) in &snap.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"metric\":\"{}\",\"label\":\"{}\",\"value\":{value}}}\n",
            esc(name),
            esc(label)
        ));
    }
    for ((name, label), value) in &snap.gauges {
        out.push_str(&format!(
            "{{\"kind\":\"gauge\",\"metric\":\"{}\",\"label\":\"{}\",\"value\":{value}}}\n",
            esc(name),
            esc(label)
        ));
    }
    for ((name, label), h) in &snap.histograms {
        let mut buckets = String::from("[");
        for (i, count) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let bound =
                h.bounds.get(i).map_or_else(|| "\"+inf\"".to_owned(), |b| format!("\"{b}\""));
            buckets.push_str(&format!("[{bound},{count}]"));
        }
        buckets.push(']');
        out.push_str(&format!(
            "{{\"kind\":\"histogram\",\"metric\":\"{}\",\"label\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":{buckets}}}\n",
            esc(name),
            esc(label),
            h.count,
            h.sum
        ));
    }
    out
}

/// A metrics snapshot as a fixed-width, human-readable table (sorted,
/// so also deterministic).
pub fn metrics_table(snap: &MetricsSnapshot) -> String {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for ((name, label), value) in &snap.counters {
        rows.push(("counter".into(), series_name(name, label), value.to_string()));
    }
    for ((name, label), value) in &snap.gauges {
        rows.push(("gauge".into(), series_name(name, label), value.to_string()));
    }
    for ((name, label), h) in &snap.histograms {
        let series = series_name(name, label);
        rows.push(("histogram".into(), format!("{series}.count"), h.count.to_string()));
        rows.push(("histogram".into(), format!("{series}.sum"), h.sum.to_string()));
        for (i, count) in h.buckets.iter().enumerate() {
            let bound = h.bounds.get(i).map_or_else(|| "+inf".to_owned(), |b| b.to_string());
            rows.push(("histogram".into(), format!("{series}.le.{bound}"), count.to_string()));
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    let kind_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max("KIND".len());
    let name_w = rows.iter().map(|r| r.1.len()).max().unwrap_or(0).max("METRIC".len());
    let mut out = format!("{:<kind_w$}  {:<name_w$}  VALUE\n", "KIND", "METRIC");
    for (kind, name, value) in rows {
        out.push_str(&format!("{kind:<kind_w$}  {name:<name_w$}  {value}\n"));
    }
    out
}

fn series_name(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{label}}}")
    }
}

// ---------------------------------------------------------------------------
// Artifact parsers — the read side of the exporters above, used by the
// offline `myrtus-report` pipeline. Both are total: malformed lines are
// skipped, never panicked on.

/// Extracts the raw value text after `"key":` on one exported line.
/// Relies on the fixed serialization above (no whitespace, no nesting
/// before the scalar fields), which is all these parsers ever read.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}', ']']).next()
    }
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_field(line, key)?.parse().ok()
}

fn json_u32(line: &str, key: &str) -> Option<u32> {
    json_field(line, key)?.parse().ok()
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_field(line, key)?.parse().ok()
}

/// Maps a parsed identifier back to a static string. Known identifiers
/// (MAPE phases, manager names, documented actions) come from a static
/// table; anything else is leaked once — acceptable for the one-shot
/// offline report tooling this parser serves, and it keeps round-trips
/// lossless.
fn intern(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "monitor",
        "analyze",
        "plan",
        "execute",
        "node",
        "network",
        "wl",
        "app",
        "op_switch",
        "op_restore",
        "detour",
        "reallocate",
        "degrade",
        "degrade_trend",
        "recover",
        "queue_full",
        "rate_limit",
        "slo_hopeless",
        "elasticity",
        "scale_up",
        "scale_down",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        k
    } else {
        Box::leak(s.to_owned().into_boxed_str())
    }
}

/// Parses a JSONL trace produced by [`trace_jsonl`] back into events.
/// Lines whose `type` is unknown or whose fields are missing are
/// skipped.
pub fn parse_trace_jsonl(s: &str) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for line in s.lines() {
        let (Some(seq), Some(at_us), Some(ty)) =
            (json_u64(line, "seq"), json_u64(line, "at_us"), json_field(line, "type"))
        else {
            continue;
        };
        let node = || json_u32(line, "node");
        let task = || json_u64(line, "task");
        let kind = (|| -> Option<TraceKind> {
            Some(match ty {
                "task_dispatch" => TraceKind::TaskDispatch { node: node()?, task: task()? },
                "task_arrive" => TraceKind::TaskArrive { node: node()?, task: task()? },
                "task_start" => TraceKind::TaskStart { node: node()?, task: task()? },
                "task_complete" => TraceKind::TaskComplete {
                    node: node()?,
                    task: task()?,
                    deadline_met: json_field(line, "deadline_met")? == "true",
                },
                "task_lost" => TraceKind::TaskLost { node: node()?, task: task()? },
                "task_retry" => TraceKind::TaskRetry {
                    node: node()?,
                    task: task()?,
                    attempt: json_u32(line, "attempt")?,
                },
                "task_timeout" => TraceKind::TaskTimeout { node: node()?, task: task()? },
                "task_cancelled" => TraceKind::TaskCancelled { node: node()?, task: task()? },
                "node_crash" => TraceKind::NodeCrash { node: node()? },
                "node_recover" => TraceKind::NodeRecover { node: node()? },
                "link_down" => TraceKind::LinkDown { link: json_u32(line, "link")? },
                "link_up" => TraceKind::LinkUp { link: json_u32(line, "link")? },
                "mape_phase" => TraceKind::MapePhase { phase: intern(json_field(line, "phase")?) },
                "manager_action" => TraceKind::ManagerAction {
                    manager: intern(json_field(line, "manager")?),
                    action: intern(json_field(line, "action")?),
                    subject: json_u64(line, "subject")?,
                },
                "deploy" => TraceKind::Deploy {
                    app: json_field(line, "app")?.parse().ok()?,
                    component: json_u32(line, "component")?,
                    node: node()?,
                },
                "migrate" => TraceKind::Migrate {
                    app: json_field(line, "app")?.parse().ok()?,
                    component: json_u32(line, "component")?,
                    from: json_u32(line, "from")?,
                    to: json_u32(line, "to")?,
                },
                "task_admitted" => TraceKind::TaskAdmitted { node: node()?, task: task()? },
                "task_checkpoint" => TraceKind::TaskCheckpoint {
                    node: node()?,
                    task: task()?,
                    bytes: json_u64(line, "bytes")?,
                },
                "task_resume" => TraceKind::TaskResume { node: node()?, task: task()? },
                "task_shed" => TraceKind::TaskShed {
                    node: node()?,
                    task: task()?,
                    reason: intern(json_field(line, "reason")?),
                },
                _ => return None,
            })
        })();
        let Some(kind) = kind else { continue };
        out.push(TraceEvent { seq, at_us, kind });
    }
    out
}

/// One metric record parsed back from a [`metrics_jsonl`] export, with
/// owned names so the parser does not depend on static interning.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedMetric {
    /// A monotonic counter.
    Counter {
        /// Metric name.
        metric: String,
        /// Series label (`""` for unlabelled).
        label: String,
        /// Counter value.
        value: u64,
    },
    /// A gauge.
    Gauge {
        /// Metric name.
        metric: String,
        /// Series label.
        label: String,
        /// Last written value.
        value: f64,
    },
    /// A histogram.
    Histogram {
        /// Metric name.
        metric: String,
        /// Series label.
        label: String,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// `(upper_bound, count)` pairs; the last bound is `"+inf"`.
        buckets: Vec<(String, u64)>,
    },
}

/// Parses a metrics JSONL export back into records, skipping malformed
/// lines.
pub fn parse_metrics_jsonl(s: &str) -> Vec<ParsedMetric> {
    let mut out = Vec::new();
    for line in s.lines() {
        let (Some(kind), Some(metric), Some(label)) =
            (json_field(line, "kind"), json_field(line, "metric"), json_field(line, "label"))
        else {
            continue;
        };
        let metric = metric.to_owned();
        let label = label.to_owned();
        match kind {
            "counter" => {
                let Some(value) = json_u64(line, "value") else { continue };
                out.push(ParsedMetric::Counter { metric, label, value });
            }
            "gauge" => {
                let Some(value) = json_f64(line, "value") else { continue };
                out.push(ParsedMetric::Gauge { metric, label, value });
            }
            "histogram" => {
                let (Some(count), Some(sum)) = (json_u64(line, "count"), json_f64(line, "sum"))
                else {
                    continue;
                };
                let mut buckets = Vec::new();
                if let Some(start) = line.find("\"buckets\":[") {
                    let body = &line[start + "\"buckets\":[".len()..];
                    for pair in body.split("[\"").skip(1) {
                        let Some((bound, rest)) = pair.split_once('"') else { continue };
                        let Some(count) = rest
                            .strip_prefix(',')
                            .and_then(|r| r.split(']').next())
                            .and_then(|c| c.parse().ok())
                        else {
                            continue;
                        };
                        buckets.push((bound.to_owned(), count));
                    }
                }
                out.push(ParsedMetric::Histogram { metric, label, count, sum, buckets });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::TraceBuffer;

    #[test]
    fn trace_jsonl_is_one_valid_object_per_line() {
        let mut buf = TraceBuffer::new(16);
        buf.push(10, TraceKind::TaskDispatch { node: 1, task: 2 });
        buf.push(20, TraceKind::TaskComplete { node: 1, task: 2, deadline_met: false });
        buf.push(30, TraceKind::MapePhase { phase: "plan" });
        let out = trace_jsonl(&buf.events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"at_us\":10,\"type\":\"task_dispatch\",\"node\":1,\"task\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"at_us\":20,\"type\":\"task_complete\",\"node\":1,\"task\":2,\"deadline_met\":false}"
        );
        assert_eq!(lines[2], "{\"seq\":2,\"at_us\":30,\"type\":\"mape_phase\",\"phase\":\"plan\"}");
    }

    #[test]
    fn metrics_jsonl_orders_counters_gauges_histograms() {
        static BOUNDS: &[f64] = &[1.0];
        let r = MetricsRegistry::new();
        r.observe("lat", "", BOUNDS, 0.5);
        r.gauge_set("util", "node-0", 0.25);
        r.counter_add("done", "", 3);
        let out = metrics_jsonl(&r.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"metric\":\"done\",\"label\":\"\",\"value\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"gauge\",\"metric\":\"util\",\"label\":\"node-0\",\"value\":0.25}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"histogram\",\"metric\":\"lat\",\"label\":\"\",\"count\":1,\"sum\":0.5,\"buckets\":[[\"1\",1],[\"+inf\",0]]}"
        );
    }

    #[test]
    fn trace_jsonl_roundtrips() {
        let mut buf = TraceBuffer::new(32);
        buf.push(10, TraceKind::TaskDispatch { node: 1, task: 2 });
        buf.push(15, TraceKind::TaskArrive { node: 1, task: 2 });
        buf.push(20, TraceKind::TaskStart { node: 1, task: 2 });
        buf.push(30, TraceKind::TaskComplete { node: 1, task: 2, deadline_met: true });
        buf.push(40, TraceKind::TaskLost { node: 3, task: 9 });
        buf.push(42, TraceKind::TaskRetry { node: 3, task: 9, attempt: 1 });
        buf.push(44, TraceKind::TaskTimeout { node: 3, task: 9 });
        buf.push(46, TraceKind::TaskCancelled { node: 3, task: 9 });
        buf.push(50, TraceKind::NodeCrash { node: 3 });
        buf.push(60, TraceKind::NodeRecover { node: 3 });
        buf.push(70, TraceKind::LinkDown { link: 5 });
        buf.push(80, TraceKind::LinkUp { link: 5 });
        buf.push(90, TraceKind::MapePhase { phase: "analyze" });
        buf.push(95, TraceKind::ManagerAction { manager: "app", action: "degrade", subject: 4 });
        buf.push(100, TraceKind::Deploy { app: 1, component: 2, node: 3 });
        buf.push(110, TraceKind::Migrate { app: 1, component: 2, from: 3, to: 4 });
        buf.push(120, TraceKind::TaskAdmitted { node: 1, task: 11 });
        buf.push(125, TraceKind::TaskShed { node: 1, task: 12, reason: "rate_limit" });
        buf.push(130, TraceKind::TaskCheckpoint { node: 3, task: 13, bytes: 146 });
        buf.push(140, TraceKind::TaskResume { node: 4, task: 13 });
        let events = buf.events();
        let parsed = parse_trace_jsonl(&trace_jsonl(&events));
        assert_eq!(parsed, events);
        // And the round-trip re-serializes identically.
        assert_eq!(trace_jsonl(&parsed), trace_jsonl(&events));
    }

    #[test]
    fn metrics_jsonl_roundtrips() {
        static BOUNDS: &[f64] = &[1.0, 10.0];
        let r = MetricsRegistry::new();
        r.counter_add("done", "", 3);
        r.gauge_set("util", "edge", 0.25);
        r.observe("lat", "fog", BOUNDS, 2.0);
        let parsed = parse_metrics_jsonl(&metrics_jsonl(&r.snapshot()));
        assert_eq!(parsed.len(), 3);
        assert_eq!(
            parsed[0],
            ParsedMetric::Counter { metric: "done".into(), label: "".into(), value: 3 }
        );
        assert_eq!(
            parsed[1],
            ParsedMetric::Gauge { metric: "util".into(), label: "edge".into(), value: 0.25 }
        );
        assert_eq!(
            parsed[2],
            ParsedMetric::Histogram {
                metric: "lat".into(),
                label: "fog".into(),
                count: 1,
                sum: 2.0,
                buckets: vec![("1".into(), 0), ("10".into(), 1), ("+inf".into(), 0)],
            }
        );
    }

    #[test]
    fn parsers_skip_malformed_lines() {
        assert!(parse_trace_jsonl("not json\n{\"seq\":1}\n").is_empty());
        assert!(parse_metrics_jsonl("{\"kind\":\"counter\"}\ngarbage\n").is_empty());
        let partial = "{\"seq\":0,\"at_us\":5,\"type\":\"mystery\",\"x\":1}\n\
                       {\"seq\":1,\"at_us\":6,\"type\":\"node_crash\",\"node\":2}\n";
        let parsed = parse_trace_jsonl(partial);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, TraceKind::NodeCrash { node: 2 });
    }

    #[test]
    fn exports_are_reproducible() {
        let build = || {
            let r = MetricsRegistry::new();
            r.counter_add("b", "y", 2);
            r.counter_add("a", "x", 1);
            r.gauge_set("g", "", 7.5);
            metrics_jsonl(&r.snapshot()) + &metrics_table(&r.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn table_is_empty_for_empty_snapshot() {
        assert!(metrics_table(&MetricsSnapshot::default()).is_empty());
        assert!(metrics_jsonl(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
