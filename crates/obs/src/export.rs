//! Deterministic exporters: JSON Lines and fixed-width tables.
//!
//! JSON is emitted by hand (the workspace's vendored `serde` stub has
//! no serializer backend) with a fixed key order per record type, so a
//! byte-for-byte comparison of two exports is a valid determinism
//! check. Floats use Rust's shortest round-trip `Display`, which is
//! itself deterministic.

use crate::metrics::MetricsSnapshot;
use crate::trace::{TraceEvent, TraceKind};

/// Escapes a string for embedding inside a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one trace event as a single JSON object (no newline).
/// Key order is fixed: `seq`, `at_us`, `type`, then payload fields in
/// declaration order.
pub fn trace_event_json(e: &TraceEvent) -> String {
    let head =
        format!("{{\"seq\":{},\"at_us\":{},\"type\":\"{}\"", e.seq, e.at_us, e.kind.type_name());
    let tail = match e.kind {
        TraceKind::TaskDispatch { node, task } | TraceKind::TaskStart { node, task } => {
            format!(",\"node\":{node},\"task\":{task}}}")
        }
        TraceKind::TaskComplete { node, task, deadline_met } => {
            format!(",\"node\":{node},\"task\":{task},\"deadline_met\":{deadline_met}}}")
        }
        TraceKind::TasksLost { node, count } => format!(",\"node\":{node},\"count\":{count}}}"),
        TraceKind::NodeCrash { node } | TraceKind::NodeRecover { node } => {
            format!(",\"node\":{node}}}")
        }
        TraceKind::LinkDown { link } | TraceKind::LinkUp { link } => format!(",\"link\":{link}}}"),
        TraceKind::MapePhase { phase } => format!(",\"phase\":\"{}\"}}", esc(phase)),
        TraceKind::ManagerAction { manager, action, subject } => {
            format!(
                ",\"manager\":\"{}\",\"action\":\"{}\",\"subject\":{subject}}}",
                esc(manager),
                esc(action)
            )
        }
        TraceKind::Deploy { app, component, node } => {
            format!(",\"app\":{app},\"component\":{component},\"node\":{node}}}")
        }
        TraceKind::Migrate { app, component, from, to } => {
            format!(",\"app\":{app},\"component\":{component},\"from\":{from},\"to\":{to}}}")
        }
    };
    head + &tail
}

/// The whole trace as JSON Lines, oldest event first. Empty input
/// yields the empty string.
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&trace_event_json(e));
        out.push('\n');
    }
    out
}

/// A metrics snapshot as JSON Lines: counters, then gauges, then
/// histograms, each sorted by key (the snapshot is already sorted).
pub fn metrics_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for ((name, label), value) in &snap.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"metric\":\"{}\",\"label\":\"{}\",\"value\":{value}}}\n",
            esc(name),
            esc(label)
        ));
    }
    for ((name, label), value) in &snap.gauges {
        out.push_str(&format!(
            "{{\"kind\":\"gauge\",\"metric\":\"{}\",\"label\":\"{}\",\"value\":{value}}}\n",
            esc(name),
            esc(label)
        ));
    }
    for (name, h) in &snap.histograms {
        let mut buckets = String::from("[");
        for (i, count) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let bound =
                h.bounds.get(i).map_or_else(|| "\"+inf\"".to_owned(), |b| format!("\"{b}\""));
            buckets.push_str(&format!("[{bound},{count}]"));
        }
        buckets.push(']');
        out.push_str(&format!(
            "{{\"kind\":\"histogram\",\"metric\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":{buckets}}}\n",
            esc(name),
            h.count,
            h.sum
        ));
    }
    out
}

/// A metrics snapshot as a fixed-width, human-readable table (sorted,
/// so also deterministic).
pub fn metrics_table(snap: &MetricsSnapshot) -> String {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for ((name, label), value) in &snap.counters {
        rows.push(("counter".into(), series_name(name, label), value.to_string()));
    }
    for ((name, label), value) in &snap.gauges {
        rows.push(("gauge".into(), series_name(name, label), value.to_string()));
    }
    for (name, h) in &snap.histograms {
        rows.push(("histogram".into(), format!("{name}.count"), h.count.to_string()));
        rows.push(("histogram".into(), format!("{name}.sum"), h.sum.to_string()));
        for (i, count) in h.buckets.iter().enumerate() {
            let bound = h.bounds.get(i).map_or_else(|| "+inf".to_owned(), |b| b.to_string());
            rows.push(("histogram".into(), format!("{name}.le.{bound}"), count.to_string()));
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    let kind_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max("KIND".len());
    let name_w = rows.iter().map(|r| r.1.len()).max().unwrap_or(0).max("METRIC".len());
    let mut out = format!("{:<kind_w$}  {:<name_w$}  VALUE\n", "KIND", "METRIC");
    for (kind, name, value) in rows {
        out.push_str(&format!("{kind:<kind_w$}  {name:<name_w$}  {value}\n"));
    }
    out
}

fn series_name(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{label}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::TraceBuffer;

    #[test]
    fn trace_jsonl_is_one_valid_object_per_line() {
        let mut buf = TraceBuffer::new(16);
        buf.push(10, TraceKind::TaskDispatch { node: 1, task: 2 });
        buf.push(20, TraceKind::TaskComplete { node: 1, task: 2, deadline_met: false });
        buf.push(30, TraceKind::MapePhase { phase: "plan" });
        let out = trace_jsonl(&buf.events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"at_us\":10,\"type\":\"task_dispatch\",\"node\":1,\"task\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"at_us\":20,\"type\":\"task_complete\",\"node\":1,\"task\":2,\"deadline_met\":false}"
        );
        assert_eq!(lines[2], "{\"seq\":2,\"at_us\":30,\"type\":\"mape_phase\",\"phase\":\"plan\"}");
    }

    #[test]
    fn metrics_jsonl_orders_counters_gauges_histograms() {
        static BOUNDS: &[f64] = &[1.0];
        let r = MetricsRegistry::new();
        r.observe("lat", BOUNDS, 0.5);
        r.gauge_set("util", "node-0", 0.25);
        r.counter_add("done", "", 3);
        let out = metrics_jsonl(&r.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"metric\":\"done\",\"label\":\"\",\"value\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"gauge\",\"metric\":\"util\",\"label\":\"node-0\",\"value\":0.25}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"histogram\",\"metric\":\"lat\",\"count\":1,\"sum\":0.5,\"buckets\":[[\"1\",1],[\"+inf\",0]]}"
        );
    }

    #[test]
    fn exports_are_reproducible() {
        let build = || {
            let r = MetricsRegistry::new();
            r.counter_add("b", "y", 2);
            r.counter_add("a", "x", 1);
            r.gauge_set("g", "", 7.5);
            metrics_jsonl(&r.snapshot()) + &metrics_table(&r.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn table_is_empty_for_empty_snapshot() {
        assert!(metrics_table(&MetricsSnapshot::default()).is_empty());
        assert!(metrics_jsonl(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
