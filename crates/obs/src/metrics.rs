//! Deterministic metrics registry: monotonic counters, gauges and
//! fixed-bucket histograms keyed by static names, stored in `BTreeMap`s
//! so every snapshot and export is in sorted key order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Key of a metric series: `(name, label)`. The label discriminates
/// series under one name (e.g. `placement_rejected{reason}`); use `""`
/// for unlabelled series.
pub type SeriesKey = (&'static str, &'static str);

/// A fixed-bucket histogram: cumulative-style buckets with static upper
/// bounds plus an implicit `+inf` bucket, a total count and a sum.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Static upper bounds of the finite buckets (ascending).
    pub bounds: &'static [f64],
    /// Per-bucket observation counts; `buckets.len() == bounds.len() + 1`
    /// (the last entry is the `+inf` bucket).
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram { bounds, buckets: vec![0; bounds.len() + 1], count: 0, sum: 0.0 }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }
}

#[derive(Default)]
struct Store {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// A sorted, point-in-time copy of every metric — the only way data
/// leaves the registry, so exports cannot observe torn state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by `(name, label)`.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauges (last write wins), sorted by `(name, label)`.
    pub gauges: Vec<(SeriesKey, f64)>,
    /// Histograms, sorted by `(name, label)`.
    pub histograms: Vec<(SeriesKey, Histogram)>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no series at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Thread-safe registry of counters, gauges and histograms.
///
/// A single mutex guards all three maps: recording is far off any
/// per-event hot path (the simulator records a handful of counters per
/// dispatched task) and one lock keeps snapshots consistent.
pub struct MetricsRegistry {
    store: Mutex<Store>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry { store: Mutex::new(Store::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().expect("metrics lock")
    }

    /// Adds `delta` to counter `name{label}`, creating it at 0 first.
    pub fn counter_add(&self, name: &'static str, label: &'static str, delta: u64) {
        *self.lock().counters.entry((name, label)).or_insert(0) += delta;
    }

    /// Current value of counter `name{label}` (0 when absent).
    pub fn counter_value(&self, name: &'static str, label: &'static str) -> u64 {
        self.lock().counters.get(&(name, label)).copied().unwrap_or(0)
    }

    /// Sum of counter `name` across all labels.
    pub fn counter_sum(&self, name: &'static str) -> u64 {
        self.lock().counters.iter().filter(|((n, _), _)| *n == name).map(|(_, v)| v).sum()
    }

    /// Sets gauge `name{label}` to `value`.
    pub fn gauge_set(&self, name: &'static str, label: &'static str, value: f64) {
        self.lock().gauges.insert((name, label), value);
    }

    /// Records `value` into histogram `name{label}`; the first
    /// observation of a series fixes its bucket bounds.
    pub fn observe(
        &self,
        name: &'static str,
        label: &'static str,
        bounds: &'static [f64],
        value: f64,
    ) {
        self.lock()
            .histograms
            .entry((name, label))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Sorted snapshot of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let s = self.lock();
        MetricsSnapshot {
            counters: s.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: s.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: s.histograms.iter().map(|(k, v)| (*k, v.clone())).collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_labelled() {
        let r = MetricsRegistry::new();
        r.counter_add("a", "x", 2);
        r.counter_add("a", "x", 3);
        r.counter_add("a", "y", 1);
        assert_eq!(r.counter_value("a", "x"), 5);
        assert_eq!(r.counter_value("a", "y"), 1);
        assert_eq!(r.counter_sum("a"), 6);
        assert_eq!(r.counter_value("a", "z"), 0);
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", "", 1.5);
        r.gauge_set("g", "", -2.0);
        assert_eq!(r.snapshot().gauges, vec![(("g", ""), -2.0)]);
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        static BOUNDS: &[f64] = &[1.0, 10.0];
        let r = MetricsRegistry::new();
        for v in [0.5, 1.0, 2.0, 100.0] {
            r.observe("h", "", BOUNDS, v);
        }
        let snap = r.snapshot();
        let (key, h) = &snap.histograms[0];
        assert_eq!(*key, ("h", ""));
        // 0.5 and 1.0 land in <=1.0; 2.0 in <=10.0; 100.0 in +inf.
        assert_eq!(h.buckets, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 103.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_labels_are_independent_series() {
        static BOUNDS: &[f64] = &[1.0];
        let r = MetricsRegistry::new();
        r.observe("wait", "edge", BOUNDS, 0.5);
        r.observe("wait", "edge", BOUNDS, 2.0);
        r.observe("wait", "cloud", BOUNDS, 0.1);
        let snap = r.snapshot();
        let keys: Vec<SeriesKey> = snap.histograms.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![("wait", "cloud"), ("wait", "edge")]);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.histograms[1].1.count, 2);
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let r = MetricsRegistry::new();
        r.counter_add("zeta", "", 1);
        r.counter_add("alpha", "b", 1);
        r.counter_add("alpha", "a", 1);
        let keys: Vec<SeriesKey> = r.snapshot().counters.into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![("alpha", "a"), ("alpha", "b"), ("zeta", "")]);
    }
}
