//! Deterministic time series: append-only sample streams keyed by
//! `(series, label)`, fed by the simulator's periodic scrape timer.
//!
//! Unlike the counter/gauge registry in [`crate::metrics`], series
//! labels are *owned* strings, so one series per node/link/application
//! can be recorded without a static label table. Samples are stamped
//! with simulated time only and retained in insertion order, so the CSV
//! and JSONL exports are byte-reproducible across identical-seed runs.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One sample of a time series: a value at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsSample {
    /// Simulated time of the sample, microseconds.
    pub at_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// One label's sample stream within a series family.
#[derive(Debug)]
struct LabeledSeries {
    label: String,
    samples: Vec<TsSample>,
}

/// Append-only store of time series: a `BTreeMap` per series name, each
/// holding its labels as a label-sorted vector. Exports therefore still
/// walk `(series, label)` in sorted order, but the hot `record` path
/// finds an existing label by binary search **without allocating** — a
/// label `String` is only built the first time a series appears. With
/// tens of thousands of nodes sampled every scrape tick, that removes
/// one allocation per node per sample.
#[derive(Debug, Default)]
pub struct TimeSeriesStore {
    series: Mutex<BTreeMap<&'static str, Vec<LabeledSeries>>>,
}

impl TimeSeriesStore {
    /// An empty store.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Vec<LabeledSeries>>> {
        self.series.lock().expect("timeseries lock")
    }

    /// Appends a sample to `name{label}`.
    ///
    /// Samples are expected (but not required) to arrive in
    /// non-decreasing `at_us` order — the scrape timer guarantees that.
    pub fn record(&self, name: &'static str, label: &str, at_us: u64, value: f64) {
        let mut map = self.lock();
        let labels = map.entry(name).or_default();
        let sample = TsSample { at_us, value };
        match labels.binary_search_by(|ls| ls.label.as_str().cmp(label)) {
            Ok(i) => labels[i].samples.push(sample),
            Err(i) => {
                labels.insert(i, LabeledSeries { label: label.to_owned(), samples: vec![sample] })
            }
        }
    }

    /// All samples of `name{label}`, oldest first (empty when absent).
    pub fn series(&self, name: &'static str, label: &str) -> Vec<TsSample> {
        let map = self.lock();
        let Some(labels) = map.get(name) else { return Vec::new() };
        match labels.binary_search_by(|ls| ls.label.as_str().cmp(label)) {
            Ok(i) => labels[i].samples.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// The last `n` samples of `name{label}`, oldest first.
    pub fn last_n(&self, name: &'static str, label: &str, n: usize) -> Vec<TsSample> {
        let s = self.series(name, label);
        let skip = s.len().saturating_sub(n);
        s[skip..].to_vec()
    }

    /// Sorted `(series, label)` keys present in the store.
    pub fn keys(&self) -> Vec<(&'static str, String)> {
        self.lock()
            .iter()
            .flat_map(|(name, labels)| labels.iter().map(|ls| (*name, ls.label.clone())))
            .collect()
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.lock().values().flat_map(|labels| labels.iter().map(|ls| ls.samples.len())).sum()
    }

    /// The whole store as CSV: `series,label,at_us,value`, sorted by
    /// series then label then sample order. An empty store yields the
    /// empty string (no header), so "no time series" is
    /// distinguishable from "an empty table".
    pub fn export_csv(&self) -> String {
        let s = self.lock();
        if s.is_empty() {
            return String::new();
        }
        let mut out = String::from("series,label,at_us,value\n");
        for (name, labels) in s.iter() {
            for ls in labels {
                for smp in &ls.samples {
                    out.push_str(&format!("{name},{},{},{}\n", ls.label, smp.at_us, smp.value));
                }
            }
        }
        out
    }

    /// The whole store as JSON Lines, one sample per line.
    pub fn export_jsonl(&self) -> String {
        let s = self.lock();
        let mut out = String::new();
        for (name, labels) in s.iter() {
            for ls in labels {
                for smp in &ls.samples {
                    out.push_str(&format!(
                        "{{\"series\":\"{}\",\"label\":\"{}\",\"at_us\":{},\"value\":{}}}\n",
                        crate::export::esc(name),
                        crate::export::esc(&ls.label),
                        smp.at_us,
                        smp.value
                    ));
                }
            }
        }
        out
    }
}

/// Parses a CSV produced by [`TimeSeriesStore::export_csv`] back into
/// `(series, label, samples)` triples in file order. Lines that do not
/// have exactly four comma-separated fields (including the header) are
/// skipped, so the parser is total.
pub fn parse_timeseries_csv(csv: &str) -> Vec<(String, String, Vec<TsSample>)> {
    let mut out: Vec<(String, String, Vec<TsSample>)> = Vec::new();
    for line in csv.lines() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 || fields[0] == "series" {
            continue;
        }
        let (Ok(at_us), Ok(value)) = (fields[2].parse::<u64>(), fields[3].parse::<f64>()) else {
            continue;
        };
        let sample = TsSample { at_us, value };
        match out.last_mut() {
            Some((n, l, samples)) if n == fields[0] && l == fields[1] => samples.push(sample),
            _ => out.push((fields[0].to_owned(), fields[1].to_owned(), vec![sample])),
        }
    }
    out
}

/// Whether a window of samples shows a (weakly) rising trend: at least
/// two samples, non-decreasing throughout, and strictly higher at the
/// end than at the start. The MAPE Analyze phase uses this over rolling
/// windows to react to *degradation trends* rather than single
/// snapshots.
pub fn trend_rising(samples: &[TsSample]) -> bool {
    samples.len() >= 2
        && samples.windows(2).all(|w| w[1].value >= w[0].value)
        && samples.last().map(|s| s.value).unwrap_or(0.0)
            > samples.first().map(|s| s.value).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let ts = TimeSeriesStore::new();
        ts.record("util", "edge", 0, 0.5);
        ts.record("util", "edge", 100, 0.75);
        ts.record("util", "fog", 0, 0.25);
        assert_eq!(ts.series("util", "edge").len(), 2);
        assert_eq!(ts.series("util", "edge")[1].value, 0.75);
        assert_eq!(ts.series("util", "cloud"), vec![]);
        assert_eq!(ts.sample_count(), 3);
        assert_eq!(ts.keys(), vec![("util", "edge".to_owned()), ("util", "fog".to_owned())]);
    }

    #[test]
    fn last_n_takes_the_tail() {
        let ts = TimeSeriesStore::new();
        for i in 0..5 {
            ts.record("x", "", i * 10, i as f64);
        }
        let tail = ts.last_n("x", "", 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].value, 3.0);
        assert_eq!(tail[1].value, 4.0);
        assert_eq!(ts.last_n("x", "", 99).len(), 5);
    }

    #[test]
    fn csv_roundtrips() {
        let ts = TimeSeriesStore::new();
        ts.record("b", "y", 10, 1.5);
        ts.record("a", "x", 0, 0.25);
        ts.record("a", "x", 100, 0.5);
        let csv = ts.export_csv();
        assert!(csv.starts_with("series,label,at_us,value\n"));
        let parsed = parse_timeseries_csv(&csv);
        // BTreeMap order: a before b.
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "a");
        assert_eq!(
            parsed[0].2,
            vec![TsSample { at_us: 0, value: 0.25 }, TsSample { at_us: 100, value: 0.5 }]
        );
        assert_eq!(parsed[1].1, "y");
    }

    #[test]
    fn empty_store_exports_nothing() {
        let ts = TimeSeriesStore::new();
        assert!(ts.export_csv().is_empty());
        assert!(ts.export_jsonl().is_empty());
        assert!(parse_timeseries_csv("").is_empty());
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let ts = TimeSeriesStore::new();
            ts.record("z", "", 5, 1.0);
            ts.record("m", "q", 1, 2.0);
            ts.export_csv() + &ts.export_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn trend_detection() {
        let s = |vals: &[f64]| -> Vec<TsSample> {
            vals.iter().enumerate().map(|(i, &v)| TsSample { at_us: i as u64, value: v }).collect()
        };
        assert!(trend_rising(&s(&[0.1, 0.2, 0.3])));
        assert!(trend_rising(&s(&[0.1, 0.1, 0.3])));
        assert!(!trend_rising(&s(&[0.3, 0.2, 0.1])));
        assert!(!trend_rising(&s(&[0.1, 0.1, 0.1])));
        assert!(!trend_rising(&s(&[0.1, 0.3, 0.2])));
        assert!(!trend_rising(&s(&[0.5])));
        assert!(!trend_rising(&[]));
    }
}
