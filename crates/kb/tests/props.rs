//! Property-based tests of Raft safety under random fault schedules.

use proptest::prelude::*;

use myrtus_continuum::time::{SimDuration, SimTime};
use myrtus_kb::command::KvCommand;
use myrtus_kb::raft::RaftCluster;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under a random schedule of isolations and heals, once the fabric
    /// heals and quiesces: at most one leader remains, and every replica
    /// applied the same value for every written key (state-machine
    /// safety).
    #[test]
    fn replicas_converge_after_arbitrary_partitions(
        seed in 0u64..1_000,
        events in proptest::collection::vec((0usize..5, 0u8..2), 0..6),
    ) {
        let mut cluster = RaftCluster::new(5, seed, SimDuration::from_millis(5));
        cluster.await_leader(SimTime::from_secs(3)).expect("elects");
        let mut written: Vec<String> = Vec::new();
        for (i, (node, kind)) in events.iter().enumerate() {
            match kind {
                0 => cluster.isolate(*node),
                _ => cluster.heal(),
            }
            cluster.run_for(SimDuration::from_millis(400));
            // Try to write through whoever leads the majority now.
            if let Some(leader) = cluster.leader() {
                let key = format!("/k{i}");
                if cluster
                    .propose(leader, KvCommand::put(&key, format!("v{i}").as_bytes()))
                    .is_ok()
                {
                    written.push(key);
                }
            }
        }
        cluster.heal();
        cluster.run_for(SimDuration::from_secs(4));

        // Single-leader safety at quiescence.
        let leaders = cluster.all_leaders();
        let max_term = leaders.iter().map(|(_, t)| *t).max().unwrap_or(0);
        let top: Vec<_> = leaders.iter().filter(|(_, t)| *t == max_term).collect();
        prop_assert!(top.len() <= 1, "at most one leader in the highest term: {leaders:?}");

        // Convergence: all replicas agree on every key they hold.
        for key in &written {
            let values: Vec<Option<Vec<u8>>> =
                (0..5).map(|i| cluster.committed_value(i, key)).collect();
            let reference = values.iter().flatten().next().cloned();
            for v in values.iter().flatten() {
                prop_assert_eq!(Some(v.clone()), reference.clone(), "key {}", key);
            }
        }
    }

    /// Committed writes through a stable leader are never lost, whatever
    /// the write mix.
    #[test]
    fn committed_writes_survive(
        keys in proptest::collection::vec("[a-d]{1,3}", 1..12),
    ) {
        let mut cluster = RaftCluster::new(3, 7, SimDuration::from_millis(5));
        let leader = cluster.await_leader(SimTime::from_secs(3)).expect("elects");
        for (i, k) in keys.iter().enumerate() {
            cluster
                .propose(leader, KvCommand::put(format!("/{k}"), format!("{i}").as_bytes()))
                .expect("leader accepts");
        }
        cluster.run_for(SimDuration::from_secs(1));
        // Last write per key wins everywhere.
        let mut expected = std::collections::HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            expected.insert(format!("/{k}"), format!("{i}"));
        }
        for (k, v) in &expected {
            for replica in 0..3 {
                prop_assert_eq!(
                    cluster.committed_value(replica, k),
                    Some(v.as_bytes().to_vec()),
                    "replica {} key {}",
                    replica,
                    k
                );
            }
        }
    }
}
