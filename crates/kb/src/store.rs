//! The key-value state machine applied from committed Raft entries.
//!
//! Mirrors the etcd contract the paper considers for the shared KB:
//! revisioned puts/deletes, compare-and-swap, prefix range reads, watches
//! and leases. The store itself is deterministic and single-threaded;
//! replication and consistency come from the [`raft`](crate::raft) layer.

use std::collections::BTreeMap;

use bytes::Bytes;

use myrtus_continuum::time::SimTime;

use crate::command::{KvCommand, WatchEvent};

/// One stored value with its metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Value bytes.
    pub value: Bytes,
    /// Revision of the last modification.
    pub mod_revision: u64,
    /// Lease expiry, if the key is leased.
    pub lease_expiry: Option<SimTime>,
}

/// A serializable point-in-time snapshot of a [`KvStore`] (used by Raft
/// log compaction / InstallSnapshot).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvSnapshot {
    /// Store revision at snapshot time.
    pub revision: u64,
    /// Live entries: `(key, value, mod_revision, lease_expiry_us)`.
    pub entries: Vec<(String, Vec<u8>, u64, Option<u64>)>,
}

/// The deterministic KV state machine.
///
/// # Examples
///
/// ```
/// use myrtus_kb::command::KvCommand;
/// use myrtus_kb::store::KvStore;
/// use myrtus_continuum::time::SimTime;
///
/// let mut kv = KvStore::new();
/// kv.apply(&KvCommand::put("/registry/nodes/0", b"up"), SimTime::ZERO);
/// assert_eq!(kv.get("/registry/nodes/0").map(|e| e.value.as_ref()), Some(&b"up"[..]));
/// assert_eq!(kv.revision(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    map: BTreeMap<String, Entry>,
    revision: u64,
    events: Vec<WatchEvent>,
}

impl KvStore {
    /// Creates an empty store at revision 0.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Current store revision (increments on every successful mutation).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Reads every key with the given prefix, in key order.
    pub fn range(&self, prefix: &str) -> Vec<(&str, &Entry)> {
        self.map
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k.as_str(), e))
            .collect()
    }

    /// Applies a committed command at logical time `now`. Returns `true`
    /// when the command mutated the store (CAS may fail benignly).
    pub fn apply(&mut self, cmd: &KvCommand, now: SimTime) -> bool {
        match cmd {
            KvCommand::Put { key, value } => {
                self.put(key.clone(), value.clone(), None);
                true
            }
            KvCommand::PutWithLease { key, value, ttl_us } => {
                let expiry = now + myrtus_continuum::time::SimDuration::from_micros(*ttl_us);
                self.put(key.clone(), value.clone(), Some(expiry));
                true
            }
            KvCommand::Delete { key } => {
                if self.map.remove(key).is_some() {
                    self.revision += 1;
                    self.events
                        .push(WatchEvent::Delete { key: key.clone(), revision: self.revision });
                    true
                } else {
                    false
                }
            }
            KvCommand::Cas { key, expect, value } => {
                let current = self.map.get(key).map(|e| &e.value);
                if current == expect.as_ref() {
                    self.put(key.clone(), value.clone(), None);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn put(&mut self, key: String, value: Bytes, lease_expiry: Option<SimTime>) {
        self.revision += 1;
        self.events.push(WatchEvent::Put {
            key: key.clone(),
            value: value.to_vec(),
            revision: self.revision,
        });
        self.map.insert(key, Entry { value, mod_revision: self.revision, lease_expiry });
    }

    /// Expires leased keys whose TTL passed; call on every logical tick.
    /// Returns the number of keys dropped.
    pub fn expire_leases(&mut self, now: SimTime) -> usize {
        let expired: Vec<String> = self
            .map
            .iter()
            .filter(|(_, e)| e.lease_expiry.is_some_and(|t| t <= now))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &expired {
            self.map.remove(k);
            self.revision += 1;
            self.events.push(WatchEvent::Delete { key: k.clone(), revision: self.revision });
        }
        expired.len()
    }

    /// Drains watch events with revision greater than `after_revision`
    /// whose key starts with `prefix`.
    pub fn watch_since(&self, prefix: &str, after_revision: u64) -> Vec<WatchEvent> {
        self.events
            .iter()
            .filter(|e| e.revision() > after_revision && e.key().starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Compacts the event history, dropping events at or below
    /// `revision` (etcd compaction).
    pub fn compact(&mut self, revision: u64) {
        self.events.retain(|e| e.revision() > revision);
    }

    /// Captures a snapshot of the live state (watch history excluded —
    /// snapshot installation implies a watch restart, as in etcd).
    pub fn snapshot(&self) -> KvSnapshot {
        KvSnapshot {
            revision: self.revision,
            entries: self
                .map
                .iter()
                .map(|(k, e)| {
                    (
                        k.clone(),
                        e.value.to_vec(),
                        e.mod_revision,
                        e.lease_expiry.map(|t| t.as_micros()),
                    )
                })
                .collect(),
        }
    }

    /// Replaces the store's state with a snapshot.
    pub fn restore(&mut self, snap: &KvSnapshot) {
        self.map.clear();
        self.events.clear();
        self.revision = snap.revision;
        for (k, v, rev, lease) in &snap.entries {
            self.map.insert(
                k.clone(),
                Entry {
                    value: Bytes::copy_from_slice(v),
                    mod_revision: *rev,
                    lease_expiry: lease.map(SimTime::from_micros),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::time::SimDuration;

    #[test]
    fn put_get_delete_with_revisions() {
        let mut kv = KvStore::new();
        assert!(kv.apply(&KvCommand::put("/a", b"1"), SimTime::ZERO));
        assert!(kv.apply(&KvCommand::put("/a", b"2"), SimTime::ZERO));
        assert_eq!(kv.revision(), 2);
        assert_eq!(kv.get("/a").map(|e| e.mod_revision), Some(2));
        assert!(kv.apply(&KvCommand::delete("/a"), SimTime::ZERO));
        assert!(kv.get("/a").is_none());
        assert!(!kv.apply(&KvCommand::delete("/a"), SimTime::ZERO), "double delete no-ops");
        assert_eq!(kv.revision(), 3);
    }

    #[test]
    fn cas_only_succeeds_on_match() {
        let mut kv = KvStore::new();
        // Create-if-absent.
        assert!(kv.apply(
            &KvCommand::Cas { key: "/l".into(), expect: None, value: Bytes::from_static(b"me") },
            SimTime::ZERO
        ));
        // Second claimant loses.
        assert!(!kv.apply(
            &KvCommand::Cas { key: "/l".into(), expect: None, value: Bytes::from_static(b"you") },
            SimTime::ZERO
        ));
        assert_eq!(kv.get("/l").map(|e| e.value.as_ref()), Some(&b"me"[..]));
        // Matching swap wins.
        assert!(kv.apply(
            &KvCommand::Cas {
                key: "/l".into(),
                expect: Some(Bytes::from_static(b"me")),
                value: Bytes::from_static(b"you"),
            },
            SimTime::ZERO
        ));
    }

    #[test]
    fn range_is_prefix_scoped_and_ordered() {
        let mut kv = KvStore::new();
        for k in ["/reg/n/2", "/reg/n/1", "/reg/links/0", "/other"] {
            kv.apply(&KvCommand::put(k, b"x"), SimTime::ZERO);
        }
        let keys: Vec<&str> = kv.range("/reg/n/").iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["/reg/n/1", "/reg/n/2"]);
        assert_eq!(kv.range("/nope").len(), 0);
    }

    #[test]
    fn leases_expire() {
        let mut kv = KvStore::new();
        kv.apply(
            &KvCommand::PutWithLease {
                key: "/hb/node0".into(),
                value: Bytes::from_static(b"alive"),
                ttl_us: 1_000,
            },
            SimTime::ZERO,
        );
        assert_eq!(kv.expire_leases(SimTime::from_micros(999)), 0);
        assert_eq!(kv.expire_leases(SimTime::from_micros(1_000)), 1);
        assert!(kv.get("/hb/node0").is_none());
    }

    #[test]
    fn lease_renewal_extends_expiry() {
        let mut kv = KvStore::new();
        let put = |kv: &mut KvStore, now: SimTime| {
            kv.apply(
                &KvCommand::PutWithLease {
                    key: "/hb".into(),
                    value: Bytes::from_static(b"1"),
                    ttl_us: 1_000,
                },
                now,
            );
        };
        put(&mut kv, SimTime::ZERO);
        put(&mut kv, SimTime::from_micros(800)); // renew
        assert_eq!(kv.expire_leases(SimTime::from_micros(1_200)), 0);
        assert_eq!(kv.expire_leases(SimTime::from_micros(1_800)), 1);
    }

    #[test]
    fn watches_see_prefix_events_after_revision() {
        let mut kv = KvStore::new();
        kv.apply(&KvCommand::put("/a/1", b"x"), SimTime::ZERO);
        let rev = kv.revision();
        kv.apply(&KvCommand::put("/a/2", b"y"), SimTime::ZERO);
        kv.apply(&KvCommand::put("/b/1", b"z"), SimTime::ZERO);
        kv.apply(&KvCommand::delete("/a/1"), SimTime::ZERO);
        let events = kv.watch_since("/a/", rev);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], WatchEvent::Put { .. }));
        assert!(matches!(events[1], WatchEvent::Delete { .. }));
    }

    #[test]
    fn compaction_drops_old_events() {
        let mut kv = KvStore::new();
        kv.apply(&KvCommand::put("/a", b"1"), SimTime::ZERO);
        kv.apply(&KvCommand::put("/a", b"2"), SimTime::ZERO);
        kv.compact(1);
        assert_eq!(kv.watch_since("/", 0).len(), 1);
        let d = SimDuration::from_micros(1);
        let _ = d; // silence unused in this test module
    }

    #[test]
    fn snapshot_restore_round_trips_state() {
        let mut kv = KvStore::new();
        kv.apply(&KvCommand::put("/a", b"1"), SimTime::ZERO);
        kv.apply(
            &KvCommand::PutWithLease {
                key: "/lease".into(),
                value: Bytes::from_static(b"x"),
                ttl_us: 5_000,
            },
            SimTime::from_micros(100),
        );
        kv.apply(&KvCommand::put("/b", b"2"), SimTime::ZERO);
        let snap = kv.snapshot();
        let mut restored = KvStore::new();
        restored.restore(&snap);
        assert_eq!(restored.revision(), kv.revision());
        assert_eq!(restored.len(), kv.len());
        assert_eq!(
            restored.get("/a").map(|e| e.value.clone()),
            kv.get("/a").map(|e| e.value.clone())
        );
        // Watch history does not survive (watchers must resubscribe) …
        assert!(restored.watch_since("/", 0).is_empty());
        // … but lease expiry does.
        assert_eq!(restored.expire_leases(SimTime::from_micros(6_000)), 1);
    }

    #[test]
    fn identical_command_sequences_converge() {
        // Determinism property needed by Raft: same commands ⇒ same state.
        let cmds = vec![
            KvCommand::put("/a", b"1"),
            KvCommand::put("/b", b"2"),
            KvCommand::delete("/a"),
            KvCommand::Cas {
                key: "/b".into(),
                expect: Some(Bytes::from_static(b"2")),
                value: Bytes::from_static(b"3"),
            },
        ];
        let mut s1 = KvStore::new();
        let mut s2 = KvStore::new();
        for c in &cmds {
            s1.apply(c, SimTime::ZERO);
        }
        for c in &cmds {
            s2.apply(c, SimTime::ZERO);
        }
        assert_eq!(s1.revision(), s2.revision());
        assert_eq!(
            s1.range("/").iter().map(|(k, e)| (*k, e.value.clone())).collect::<Vec<_>>(),
            s2.range("/").iter().map(|(k, e)| (*k, e.value.clone())).collect::<Vec<_>>()
        );
    }
}
