//! # myrtus-kb
//!
//! The MYRTUS shared Knowledge Base: a from-scratch Raft-replicated,
//! strongly consistent key-value store (the ETCD contract the paper
//! considers), hosting the Resource Registry/Status, watches and leases,
//! plus a historical time-series store for learning agents.
//!
//! The [`facade::KnowledgeBase`] is the *logical view* MIRTO agents use;
//! [`raft::RaftCluster`] is the *distributed implementation view* whose
//! consistency and scalability the experiments measure.
//!
//! ## Quick start
//!
//! ```
//! use myrtus_kb::command::KvCommand;
//! use myrtus_kb::raft::RaftCluster;
//! use myrtus_continuum::time::{SimDuration, SimTime};
//!
//! let mut cluster = RaftCluster::new(3, 1, SimDuration::from_millis(5));
//! let leader = cluster.await_leader(SimTime::from_secs(3)).expect("elects");
//! cluster.propose(leader, KvCommand::put("/registry/nodes/0", b"up"))?;
//! cluster.run_for(SimDuration::from_millis(500));
//! assert!(cluster.committed_value(leader, "/registry/nodes/0").is_some());
//! # Ok::<(), myrtus_kb::raft::NotLeaderError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod command;
pub mod facade;
pub mod history;
pub mod raft;
pub mod registry;
pub mod store;

pub use command::{KvCommand, WatchEvent};
pub use facade::KnowledgeBase;
pub use history::HistoryStore;
pub use raft::{RaftCluster, RaftConfig, RaftNode};
pub use registry::{NodeRecord, RegistryView};
pub use store::KvStore;
