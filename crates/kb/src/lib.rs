//! # myrtus-kb
//!
//! The MYRTUS shared Knowledge Base: a from-scratch Raft-replicated,
//! strongly consistent key-value store (the ETCD contract the paper
//! considers), hosting the Resource Registry/Status, watches and leases,
//! plus a historical time-series store for learning agents.
//!
//! The [`facade::KnowledgeBase`] is the *logical view* MIRTO agents use;
//! [`raft::RaftCluster`] is the *distributed implementation view* whose
//! consistency and scalability the experiments measure.
//!
//! ## Quick start
//!
//! ```
//! use myrtus_kb::command::KvCommand;
//! use myrtus_kb::raft::RaftCluster;
//! use myrtus_continuum::time::{SimDuration, SimTime};
//!
//! let mut cluster = RaftCluster::new(3, 1, SimDuration::from_millis(5));
//! let leader = cluster.await_leader(SimTime::from_secs(3)).expect("elects");
//! cluster.propose(leader, KvCommand::put("/registry/nodes/0", b"up"))?;
//! cluster.run_for(SimDuration::from_millis(500));
//! assert!(cluster.committed_value(leader, "/registry/nodes/0").is_some());
//! # Ok::<(), myrtus_kb::raft::NotLeaderError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod command;
pub mod facade;
pub mod history;
pub mod raft;
pub mod registry;
pub mod store;

/// Seeded-bug switches for the `mc` model checker.
///
/// Each switch arms one deliberately wrong behaviour in a protocol
/// path so the checker's counterexample search can be validated
/// against a known violation. Switches are thread-local (checker runs
/// are single-threaded; parallel tests cannot interfere) and default
/// to off, leaving behaviour byte-identical to a build without this
/// module. The module only exists under `cfg(test)` or the
/// `mc-mutations` feature, which only `mc`'s dev-dependencies enable.
#[cfg(any(test, feature = "mc-mutations"))]
pub mod mutation {
    use std::cell::Cell;

    thread_local! {
        static RAFT_DOUBLE_VOTE: Cell<bool> = const { Cell::new(false) };
    }

    /// Arms/disarms the election-safety bug: replicas forget their
    /// vote and may grant twice in one term.
    pub fn set_raft_double_vote(on: bool) {
        RAFT_DOUBLE_VOTE.with(|c| c.set(on));
    }

    /// Whether the double-vote bug is armed on this thread.
    pub fn raft_double_vote() -> bool {
        RAFT_DOUBLE_VOTE.with(|c| c.get())
    }
}

pub use command::{KvCommand, WatchEvent};
pub use facade::KnowledgeBase;
pub use history::HistoryStore;
pub use raft::{RaftCluster, RaftConfig, RaftNode};
pub use registry::{NodeRecord, RegistryView};
pub use store::KvStore;
