//! The Knowledge Base facade used by MIRTO agents.
//!
//! Paper Sect. III: "all layers will share one ontological KB (logical
//! view), which can be distributed in different layers (implementation
//! view)". [`KnowledgeBase`] is that logical view — a KV store hosting
//! the Resource Registry plus a historical time-series store — while the
//! [`raft`](crate::raft) module provides the distributed implementation
//! view whose consistency the experiments measure.

use myrtus_continuum::ids::NodeId;
use myrtus_continuum::monitor::MonitoringReport;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::SimTime;

use crate::command::KvCommand;
use crate::history::HistoryStore;
use crate::registry::{NodeRecord, RegistryView};
use crate::store::KvStore;

/// The logical, agent-facing Knowledge Base.
///
/// # Examples
///
/// ```
/// use myrtus_kb::facade::KnowledgeBase;
/// use myrtus_continuum::time::SimTime;
///
/// let mut kb = KnowledgeBase::new();
/// kb.history_mut().append("cloud-0/util", SimTime::from_millis(1), 0.4);
/// assert_eq!(kb.history().len("cloud-0/util"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    store: KvStore,
    history: HistoryStore,
}

impl KnowledgeBase {
    /// Creates an empty KB with a 10 000-sample retention per series.
    pub fn new() -> Self {
        KnowledgeBase { store: KvStore::new(), history: HistoryStore::new(10_000) }
    }

    /// The underlying KV store (registry keys live under `/registry/`).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Mutable KV store access.
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    /// The historical time-series store.
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Mutable history access.
    pub fn history_mut(&mut self) -> &mut HistoryStore {
        &mut self.history
    }

    /// The registry read view.
    pub fn registry(&self) -> RegistryView<'_> {
        RegistryView::new(&self.store)
    }

    /// Ingests a monitoring report: upserts every node's registry record
    /// and appends utilization/energy series. `security_tier_of` supplies
    /// each node's supported security tier (paper Table II capability).
    pub fn ingest_report(
        &mut self,
        report: &MonitoringReport,
        mut security_tier_of: impl FnMut(NodeId) -> u8,
    ) {
        for snap in &report.nodes {
            let tier = security_tier_of(snap.node);
            let record = NodeRecord::from_snapshot(snap, tier, report.at);
            self.store.apply(&record.to_command(), report.at);
            self.history.append(format!("{}/util", snap.name), report.at, snap.utilization);
            self.history.append(format!("{}/energy_j", snap.name), report.at, snap.energy_j);
            self.history.append(format!("{}/queue", snap.name), report.at, snap.queue_len as f64);
        }
        for link in &report.links {
            self.history.append(
                format!("link-{}/util", link.link.as_raw()),
                report.at,
                link.utilization,
            );
        }
    }

    /// Up registry nodes in a layer, least-utilized first.
    pub fn available_in_layer(&self, layer: Layer) -> Vec<NodeRecord> {
        self.registry().available_in_layer(layer)
    }

    /// Records an application-level KPI sample.
    pub fn record_kpi(&mut self, app: &str, kpi: &str, at: SimTime, value: f64) {
        self.history.append(format!("app/{app}/{kpi}"), at, value);
    }

    /// Writes one key into a region's shard of the federated KB
    /// namespace (`/region/{r}/{key}`). Each regional continuum owns
    /// its shard (implementation view: one Raft group per region); the
    /// logical view below stays a single ontological KB, so federation
    /// code reads peers' shards through the same store.
    pub fn put_region(&mut self, region: u16, key: &str, value: &str, at: SimTime) {
        let cmd = KvCommand::put(format!("/region/{region}/{key}"), value.as_bytes());
        self.store.apply(&cmd, at);
    }

    /// One region's full shard, in key order, values decoded as UTF-8.
    pub fn region_shard(&self, region: u16) -> Vec<(String, String)> {
        self.store
            .range(&format!("/region/{region}/"))
            .into_iter()
            .map(|(k, e)| (k.to_string(), String::from_utf8_lossy(&e.value).into_owned()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::engine::{NullDriver, SimCore};
    use myrtus_continuum::node::NodeSpec;
    use myrtus_continuum::task::TaskInstance;

    #[test]
    fn ingest_populates_registry_and_history() {
        let mut sim = SimCore::new();
        let a = sim.add_node(NodeSpec::preset_edge_multicore("edge-0"));
        let t = TaskInstance::new(sim.fresh_task_id(), 1.5);
        sim.submit_local(a, t).expect("submit");
        sim.run_until(SimTime::from_secs(1), &mut NullDriver);

        let mut kb = KnowledgeBase::new();
        let report = MonitoringReport::collect(&sim);
        kb.ingest_report(&report, |_| 1);

        let rec = kb.registry().node(a).expect("record exists");
        assert_eq!(rec.name, "edge-0");
        assert_eq!(rec.max_security_tier, 1);
        assert!(rec.energy_j > 0.0);
        assert_eq!(kb.history().len("edge-0/util"), 1);
        assert_eq!(kb.available_in_layer(Layer::Edge).len(), 1);
        assert!(kb.available_in_layer(Layer::Cloud).is_empty());
    }

    #[test]
    fn repeated_ingest_updates_not_duplicates() {
        let mut sim = SimCore::new();
        let a = sim.add_node(NodeSpec::preset_edge_multicore("edge-0"));
        let mut kb = KnowledgeBase::new();
        for t in [1u64, 2] {
            sim.run_until(SimTime::from_secs(t), &mut NullDriver);
            kb.ingest_report(&MonitoringReport::collect(&sim), |_| 0);
        }
        assert_eq!(kb.registry().all().len(), 1, "one record per node");
        assert_eq!(kb.history().len("edge-0/util"), 2, "two history samples");
        assert_eq!(kb.registry().node(a).map(|r| r.updated_at), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn kpi_samples_are_namespaced() {
        let mut kb = KnowledgeBase::new();
        kb.record_kpi("telerehab", "latency_us", SimTime::from_millis(1), 42.0);
        assert_eq!(kb.history().latest("app/telerehab/latency_us").map(|s| s.value), Some(42.0));
    }

    #[test]
    fn region_shards_are_disjoint_and_ordered() {
        let mut kb = KnowledgeBase::new();
        let at = SimTime::from_millis(5);
        kb.put_region(1, "digest", "util=0.9", at);
        kb.put_region(0, "digest", "util=0.1", at);
        kb.put_region(0, "burst", "r2", at);
        let shard0 = kb.region_shard(0);
        assert_eq!(
            shard0,
            vec![
                ("/region/0/burst".to_string(), "r2".to_string()),
                ("/region/0/digest".to_string(), "util=0.1".to_string()),
            ]
        );
        assert_eq!(kb.region_shard(1).len(), 1, "peer shard untouched");
        // Overwrites update in place within the shard.
        kb.put_region(0, "digest", "util=0.2", at);
        assert_eq!(kb.region_shard(0)[1].1, "util=0.2");
        assert_eq!(kb.region_shard(2), vec![], "unknown shard is empty");
    }
}
