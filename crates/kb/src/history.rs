//! Historical batch store for learning agents.
//!
//! Besides the live Resource Registry, the KB keeps "historical batch
//! data needed to implement, for example, Reinforcement Learning-based
//! strategy within the Network Manager" (paper Sect. VI). This module is
//! a per-series append-only time-series store with window queries and
//! fixed-bucket downsampling, plus bounded retention.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use myrtus_continuum::stats::Summary;
use myrtus_continuum::time::{SimDuration, SimTime};

/// One sample of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Sample instant.
    pub at: SimTime,
    /// Value.
    pub value: f64,
}

/// Append-only store of named time series with bounded retention.
///
/// # Examples
///
/// ```
/// use myrtus_kb::history::HistoryStore;
/// use myrtus_continuum::time::SimTime;
///
/// let mut h = HistoryStore::new(1_000);
/// h.append("edge-0/util", SimTime::from_millis(1), 0.25);
/// h.append("edge-0/util", SimTime::from_millis(2), 0.75);
/// let s = h.summary("edge-0/util", SimTime::ZERO, SimTime::from_secs(1)).unwrap();
/// assert_eq!(s.count, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryStore {
    series: BTreeMap<String, Vec<Sample>>,
    max_samples_per_series: usize,
}

impl HistoryStore {
    /// Creates a store that retains at most `max_samples_per_series`
    /// samples per series (oldest evicted first); 0 means unbounded.
    pub fn new(max_samples_per_series: usize) -> Self {
        HistoryStore { series: BTreeMap::new(), max_samples_per_series }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when samples go backwards in time within a
    /// series.
    pub fn append(&mut self, series: impl Into<String>, at: SimTime, value: f64) {
        let v = self.series.entry(series.into()).or_default();
        debug_assert!(v.last().is_none_or(|s| s.at <= at), "samples must be in time order");
        v.push(Sample { at, value });
        if self.max_samples_per_series > 0 && v.len() > self.max_samples_per_series {
            let excess = v.len() - self.max_samples_per_series;
            v.drain(..excess);
        }
    }

    /// Names of the stored series.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Number of samples in a series.
    pub fn len(&self, series: &str) -> usize {
        self.series.get(series).map_or(0, Vec::len)
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Samples of `series` with `from <= at < to`.
    pub fn window(&self, series: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        self.series
            .get(series)
            .map(|v| v.iter().filter(|s| s.at >= from && s.at < to).copied().collect())
            .unwrap_or_default()
    }

    /// Statistical summary of a window, if it holds samples.
    pub fn summary(&self, series: &str, from: SimTime, to: SimTime) -> Option<Summary> {
        let vals: Vec<f64> = self.window(series, from, to).iter().map(|s| s.value).collect();
        Summary::of(&vals)
    }

    /// Downsamples a window into fixed `bucket`-wide means (empty buckets
    /// are skipped). Returns `(bucket start, mean)` pairs.
    pub fn downsample(
        &self,
        series: &str,
        from: SimTime,
        to: SimTime,
        bucket: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        if bucket.is_zero() {
            return Vec::new();
        }
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut acc: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        for s in self.window(series, from, to) {
            let idx = (s.at.as_micros() - from.as_micros()) / bucket.as_micros();
            let e = acc.entry(idx).or_insert((0.0, 0));
            e.0 += s.value;
            e.1 += 1;
        }
        for (idx, (sum, n)) in acc {
            let start = from + SimDuration::from_micros(idx * bucket.as_micros());
            out.push((start, sum / n as f64));
        }
        out
    }

    /// Latest sample of a series.
    pub fn latest(&self, series: &str) -> Option<Sample> {
        self.series.get(series).and_then(|v| v.last().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_half_open() {
        let mut h = HistoryStore::new(0);
        for ms in [1u64, 2, 3, 4] {
            h.append("s", SimTime::from_millis(ms), ms as f64);
        }
        let w = h.window("s", SimTime::from_millis(2), SimTime::from_millis(4));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].value, 2.0);
        assert_eq!(w[1].value, 3.0);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut h = HistoryStore::new(3);
        for ms in 1..=5u64 {
            h.append("s", SimTime::from_millis(ms), ms as f64);
        }
        assert_eq!(h.len("s"), 3);
        assert_eq!(h.window("s", SimTime::ZERO, SimTime::from_secs(1))[0].value, 3.0);
    }

    #[test]
    fn downsample_means_per_bucket() {
        let mut h = HistoryStore::new(0);
        // Two samples in bucket 0, one in bucket 2.
        h.append("s", SimTime::from_millis(1), 1.0);
        h.append("s", SimTime::from_millis(2), 3.0);
        h.append("s", SimTime::from_millis(25), 10.0);
        let ds = h.downsample(
            "s",
            SimTime::ZERO,
            SimTime::from_millis(100),
            SimDuration::from_millis(10),
        );
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0], (SimTime::ZERO, 2.0));
        assert_eq!(ds[1], (SimTime::from_millis(20), 10.0));
    }

    #[test]
    fn empty_series_queries_are_benign() {
        let h = HistoryStore::new(0);
        assert!(h.window("nope", SimTime::ZERO, SimTime::MAX).is_empty());
        assert!(h.summary("nope", SimTime::ZERO, SimTime::MAX).is_none());
        assert!(h.latest("nope").is_none());
        assert_eq!(h.len("nope"), 0);
    }

    #[test]
    fn latest_and_names() {
        let mut h = HistoryStore::new(0);
        h.append("a", SimTime::from_millis(1), 1.0);
        h.append("b", SimTime::from_millis(2), 2.0);
        assert_eq!(h.latest("b").map(|s| s.value), Some(2.0));
        assert_eq!(h.series_names(), vec!["a", "b"]);
    }
}
