//! Replicated state-machine commands.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A command applied to the replicated key-value state machine once its
/// log entry commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCommand {
    /// Sets `key` to `value`.
    Put {
        /// Key.
        key: String,
        /// Value bytes.
        value: Bytes,
    },
    /// Removes `key`.
    Delete {
        /// Key.
        key: String,
    },
    /// Compare-and-swap: sets `key` to `value` only if the current value
    /// equals `expect` (`None` = key absent).
    Cas {
        /// Key.
        key: String,
        /// Expected current value.
        expect: Option<Bytes>,
        /// New value.
        value: Bytes,
    },
    /// Attaches a lease to `key`: the key is dropped when the lease
    /// expires without renewal.
    PutWithLease {
        /// Key.
        key: String,
        /// Value bytes.
        value: Bytes,
        /// Lease time-to-live in microseconds of logical time.
        ttl_us: u64,
    },
}

impl KvCommand {
    /// Convenience constructor for a UTF-8 put.
    pub fn put(key: impl Into<String>, value: impl AsRef<[u8]>) -> Self {
        KvCommand::Put { key: key.into(), value: Bytes::copy_from_slice(value.as_ref()) }
    }

    /// Convenience constructor for a delete.
    pub fn delete(key: impl Into<String>) -> Self {
        KvCommand::Delete { key: key.into() }
    }

    /// The key this command touches.
    pub fn key(&self) -> &str {
        match self {
            KvCommand::Put { key, .. }
            | KvCommand::Delete { key }
            | KvCommand::Cas { key, .. }
            | KvCommand::PutWithLease { key, .. } => key,
        }
    }
}

/// A change event delivered to watchers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WatchEvent {
    /// A key was created or updated.
    Put {
        /// Key.
        key: String,
        /// New value.
        #[serde(with = "bytes_serde")]
        value: Vec<u8>,
        /// Store revision at which the change happened.
        revision: u64,
    },
    /// A key was removed (explicitly or by lease expiry).
    Delete {
        /// Key.
        key: String,
        /// Store revision at which the change happened.
        revision: u64,
    },
}

impl WatchEvent {
    /// The key the event refers to.
    pub fn key(&self) -> &str {
        match self {
            WatchEvent::Put { key, .. } | WatchEvent::Delete { key, .. } => key,
        }
    }

    /// The revision at which the event happened.
    pub fn revision(&self) -> u64 {
        match self {
            WatchEvent::Put { revision, .. } | WatchEvent::Delete { revision, .. } => *revision,
        }
    }
}

// Only referenced through `#[serde(with = "bytes_serde")]`, which the
// vendored no-op derive does not expand; keep it for wire-format parity.
#[allow(dead_code)]
mod bytes_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8], s: S) -> Result<S::Ok, S::Error> {
        v.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u8>, D::Error> {
        Vec::<u8>::deserialize(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_key() {
        let p = KvCommand::put("/a", b"1");
        assert_eq!(p.key(), "/a");
        let d = KvCommand::delete("/b");
        assert_eq!(d.key(), "/b");
        let c = KvCommand::Cas { key: "/c".into(), expect: None, value: Bytes::from_static(b"x") };
        assert_eq!(c.key(), "/c");
    }

    #[test]
    fn watch_event_accessors() {
        let e = WatchEvent::Put { key: "/k".into(), value: b"v".to_vec(), revision: 4 };
        assert_eq!(e.key(), "/k");
        assert_eq!(e.revision(), 4);
        let d = WatchEvent::Delete { key: "/k".into(), revision: 5 };
        assert_eq!(d.revision(), 5);
    }
}
