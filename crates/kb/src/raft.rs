//! A from-scratch Raft consensus implementation.
//!
//! The paper considers ETCD — "a strongly consistent, distributed
//! key-value store" — as the shared Knowledge Base. ETCD's consistency
//! comes from Raft, so this module implements Raft proper: randomized
//! leader election, log replication with the consistency check, and the
//! commit rule restricted to current-term entries. [`RaftNode`] is a pure
//! deterministic state machine (inputs: messages + time; outputs:
//! messages); [`RaftCluster`] drives N nodes over a simulated message
//! fabric with configurable latency, crashes and partitions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use myrtus_continuum::time::{SimDuration, SimTime};

use crate::command::KvCommand;
use crate::store::{KvSnapshot, KvStore};

/// Whether the seeded election-safety bug is armed: a replica that has
/// already voted this term "forgets" and grants again. Compiled out of
/// release builds; the thread-local switch defaults to off, so even
/// test builds behave identically until a checker arms it.
fn mutation_forgets_vote() -> bool {
    #[cfg(any(test, feature = "mc-mutations"))]
    {
        crate::mutation::raft_double_vote()
    }
    #[cfg(not(any(test, feature = "mc-mutations")))]
    {
        false
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Term in which the entry was appended at the leader.
    pub term: u64,
    /// The carried state-machine command.
    pub cmd: KvCommand,
}

/// Raft wire messages.
#[derive(Debug, Clone, PartialEq)]
pub enum RaftMsg {
    /// Candidate requesting a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    VoteReply {
        /// Responder's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicating entries / heartbeating.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of the entry preceding `entries`.
        prev_term: u64,
        /// Entries to append (empty for heartbeats).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Leader shipping a state snapshot to a lagging/compacted follower.
    InstallSnapshot {
        /// Leader's term.
        term: u64,
        /// Index of the last entry covered by the snapshot.
        last_index: u64,
        /// Term of that entry.
        last_term: u64,
        /// The state-machine snapshot.
        snapshot: KvSnapshot,
    },
    /// Append response.
    AppendReply {
        /// Responder's current term.
        term: u64,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the responder when
        /// `success`; hint for nextIndex backoff otherwise.
        match_index: u64,
    },
}

/// Raft role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// Elected leader for the current term.
    Leader,
}

/// Timing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaftConfig {
    /// Minimum randomized election timeout.
    pub election_min: SimDuration,
    /// Maximum randomized election timeout.
    pub election_max: SimDuration,
    /// Leader heartbeat interval.
    pub heartbeat: SimDuration,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_min: SimDuration::from_millis(150),
            election_max: SimDuration::from_millis(300),
            heartbeat: SimDuration::from_millis(50),
        }
    }
}

/// Error returned when proposing to a non-leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeaderError;

impl std::fmt::Display for NotLeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("this replica is not the leader")
    }
}

impl std::error::Error for NotLeaderError {}

/// One Raft replica as a pure state machine.
///
/// `Clone` is part of the contract: the `mc` model checker snapshots
/// whole replicas as explicit states, so every field must be plain
/// data (the RNG included — the vendored `StdRng` is a clonable
/// splitmix stream).
#[derive(Debug, Clone)]
pub struct RaftNode {
    id: usize,
    n: usize,
    cfg: RaftConfig,
    term: u64,
    voted_for: Option<usize>,
    log: Vec<LogEntry>,
    log_offset: u64,
    last_included_term: u64,
    snapshot: Option<KvSnapshot>,
    pending_install: Option<KvSnapshot>,
    commit_index: u64,
    last_applied: u64,
    role: Role,
    votes: HashSet<usize>,
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    election_deadline: SimTime,
    heartbeat_due: SimTime,
    rng: StdRng,
}

impl RaftNode {
    /// Creates replica `id` of an `n`-replica group.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` or `n == 0`.
    pub fn new(id: usize, n: usize, seed: u64, cfg: RaftConfig) -> Self {
        assert!(n > 0 && id < n, "id must be within the group");
        let mut node = RaftNode {
            id,
            n,
            cfg,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            log_offset: 0,
            last_included_term: 0,
            snapshot: None,
            pending_install: None,
            commit_index: 0,
            last_applied: 0,
            role: Role::Follower,
            votes: HashSet::new(),
            next_index: vec![1; n],
            match_index: vec![0; n],
            election_deadline: SimTime::ZERO,
            heartbeat_due: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed.wrapping_add(id as u64).wrapping_mul(0x9E37_79B9)),
        };
        node.reset_election_deadline(SimTime::ZERO);
        node
    }

    /// Replica id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Commit index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Log length (last log index).
    pub fn last_log_index(&self) -> u64 {
        self.log_offset + self.log.len() as u64
    }

    /// Index of the last compacted (snapshot-covered) entry.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// In-memory log entries currently retained.
    pub fn retained_log_len(&self) -> usize {
        self.log.len()
    }

    /// Highest applied index.
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }

    /// Who this replica voted for in the current term, if anyone.
    pub fn voted_for(&self) -> Option<usize> {
        self.voted_for
    }

    /// The term recorded at `index` (0 when the index is empty or
    /// compacted away below the snapshot boundary).
    pub fn log_term_at(&self, index: u64) -> u64 {
        self.term_at(index)
    }

    /// Votes gathered in the current candidacy, sorted by replica id.
    pub fn votes_granted(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.votes.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The instant at which this replica will start an election unless
    /// it hears from a leader first. Drivers that want to force a
    /// timeout deterministically call [`RaftNode::tick`] at this time.
    pub fn election_deadline(&self) -> SimTime {
        self.election_deadline
    }

    /// The instant of the next heartbeat broadcast (leaders only).
    pub fn heartbeat_due(&self) -> SimTime {
        self.heartbeat_due
    }

    /// The leader's next replication index for `peer` (1 on followers,
    /// where the vector is simply stale).
    pub fn next_index_of(&self, peer: usize) -> u64 {
        self.next_index.get(peer).copied().unwrap_or(1)
    }

    /// The leader's highest known replicated index on `peer`.
    pub fn match_index_of(&self, peer: usize) -> u64 {
        self.match_index.get(peer).copied().unwrap_or(0)
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(self.last_included_term, |e| e.term)
    }

    fn entry(&self, index: u64) -> Option<&LogEntry> {
        if index <= self.log_offset {
            None
        } else {
            self.log.get((index - self.log_offset) as usize - 1)
        }
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index == self.log_offset {
            self.last_included_term
        } else {
            self.entry(index).map_or(0, |e| e.term)
        }
    }

    /// Discards log entries up to `upto` (which must be applied already),
    /// retaining `state` as the snapshot lagging followers will receive.
    ///
    /// # Panics
    ///
    /// Panics if `upto` exceeds the applied index.
    pub fn compact(&mut self, upto: u64, state: KvSnapshot) {
        assert!(upto <= self.last_applied, "can only compact applied entries");
        if upto <= self.log_offset {
            return;
        }
        let new_last_term = self.term_at(upto);
        let drop = (upto - self.log_offset) as usize;
        self.log.drain(..drop);
        self.log_offset = upto;
        self.last_included_term = new_last_term;
        self.snapshot = Some(state);
    }

    /// Takes a snapshot installed by the leader, to be restored into the
    /// replica's state machine by the hosting cluster.
    pub fn take_pending_install(&mut self) -> Option<KvSnapshot> {
        self.pending_install.take()
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        let span = self.cfg.election_max.as_micros() - self.cfg.election_min.as_micros();
        let jitter = if span == 0 { 0 } else { self.rng.gen_range(0..=span) };
        self.election_deadline = now + self.cfg.election_min + SimDuration::from_micros(jitter);
    }

    fn become_follower(&mut self, now: SimTime, term: u64) {
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.reset_election_deadline(now);
    }

    fn broadcast(&self, msg: RaftMsg) -> Vec<(usize, RaftMsg)> {
        (0..self.n).filter(|&p| p != self.id).map(|p| (p, msg.clone())).collect()
    }

    /// Advances timers; may start an election or emit heartbeats.
    pub fn tick(&mut self, now: SimTime) -> Vec<(usize, RaftMsg)> {
        match self.role {
            Role::Leader => {
                if now >= self.heartbeat_due {
                    self.heartbeat_due = now + self.cfg.heartbeat;
                    return self.replicate_all();
                }
                Vec::new()
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now)
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn start_election(&mut self, now: SimTime) -> Vec<(usize, RaftMsg)> {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.reset_election_deadline(now);
        if self.n == 1 {
            self.become_leader(now);
            return Vec::new();
        }
        self.broadcast(RaftMsg::RequestVote {
            term: self.term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        })
    }

    fn become_leader(&mut self, now: SimTime) {
        self.role = Role::Leader;
        let next = self.last_log_index() + 1;
        self.next_index = vec![next; self.n];
        self.match_index = vec![0; self.n];
        self.match_index[self.id] = self.last_log_index();
        self.heartbeat_due = now; // heartbeat immediately on next tick
    }

    fn replicate_all(&mut self) -> Vec<(usize, RaftMsg)> {
        (0..self.n).filter(|&p| p != self.id).map(|p| (p, self.append_for(p))).collect()
    }

    fn append_for(&self, peer: usize) -> RaftMsg {
        let next = self.next_index[peer].max(1);
        if next <= self.log_offset {
            // The entries the peer needs are compacted away: ship the
            // snapshot instead (InstallSnapshot).
            return RaftMsg::InstallSnapshot {
                term: self.term,
                last_index: self.log_offset,
                last_term: self.last_included_term,
                snapshot: self.snapshot.clone().unwrap_or_default(),
            };
        }
        let prev_index = next - 1;
        let prev_term = self.term_at(prev_index);
        let entries: Vec<LogEntry> =
            self.log.iter().skip((prev_index - self.log_offset) as usize).cloned().collect();
        RaftMsg::AppendEntries {
            term: self.term,
            prev_index,
            prev_term,
            entries,
            leader_commit: self.commit_index,
        }
    }

    /// Handles one message from `from`; returns messages to send.
    pub fn handle(&mut self, now: SimTime, from: usize, msg: RaftMsg) -> Vec<(usize, RaftMsg)> {
        match msg {
            RaftMsg::RequestVote { term, last_log_index, last_log_term } => {
                if term > self.term {
                    self.become_follower(now, term);
                }
                let log_ok = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                let vote_free = self.voted_for.is_none()
                    || self.voted_for == Some(from)
                    || mutation_forgets_vote();
                let granted = term == self.term && log_ok && vote_free;
                if granted {
                    self.voted_for = Some(from);
                    self.reset_election_deadline(now);
                }
                vec![(from, RaftMsg::VoteReply { term: self.term, granted })]
            }
            RaftMsg::VoteReply { term, granted } => {
                if term > self.term {
                    self.become_follower(now, term);
                    return Vec::new();
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() * 2 > self.n {
                        self.become_leader(now);
                        return self.replicate_all();
                    }
                }
                Vec::new()
            }
            RaftMsg::AppendEntries { term, prev_index, prev_term, entries, leader_commit } => {
                if term < self.term {
                    return vec![(
                        from,
                        RaftMsg::AppendReply { term: self.term, success: false, match_index: 0 },
                    )];
                }
                // Valid leader for this term: step down / stay follower.
                if term > self.term || self.role != Role::Follower {
                    self.become_follower(now, term);
                } else {
                    self.reset_election_deadline(now);
                }
                // Consistency check (entries at or below the snapshot
                // offset are covered by the snapshot by construction).
                if prev_index > self.last_log_index()
                    || (prev_index >= self.log_offset && self.term_at(prev_index) != prev_term)
                {
                    let hint = self.last_log_index().min(prev_index.saturating_sub(1));
                    return vec![(
                        from,
                        RaftMsg::AppendReply { term: self.term, success: false, match_index: hint },
                    )];
                }
                // Append, truncating conflicts; skip entries the snapshot
                // already covers.
                let mut idx = prev_index;
                for e in entries {
                    idx += 1;
                    if idx <= self.log_offset {
                        continue;
                    }
                    if self.term_at(idx) != e.term {
                        self.log.truncate((idx - self.log_offset) as usize - 1);
                        self.log.push(e);
                    }
                }
                if leader_commit > self.commit_index {
                    self.commit_index = leader_commit.min(self.last_log_index());
                }
                vec![(
                    from,
                    RaftMsg::AppendReply { term: self.term, success: true, match_index: idx },
                )]
            }
            RaftMsg::InstallSnapshot { term, last_index, last_term, snapshot } => {
                if term < self.term {
                    return vec![(
                        from,
                        RaftMsg::AppendReply { term: self.term, success: false, match_index: 0 },
                    )];
                }
                if term > self.term || self.role != Role::Follower {
                    self.become_follower(now, term);
                } else {
                    self.reset_election_deadline(now);
                }
                if last_index > self.last_applied {
                    // Adopt the snapshot wholesale; any retained suffix
                    // after last_index stays (it may still be valid).
                    if last_index >= self.last_log_index() {
                        self.log.clear();
                    } else {
                        let keep_from = (last_index - self.log_offset) as usize;
                        self.log.drain(..keep_from.min(self.log.len()));
                    }
                    self.log_offset = last_index;
                    self.last_included_term = last_term;
                    self.commit_index = self.commit_index.max(last_index);
                    self.last_applied = last_index;
                    self.snapshot = Some(snapshot.clone());
                    self.pending_install = Some(snapshot);
                }
                vec![(
                    from,
                    RaftMsg::AppendReply {
                        term: self.term,
                        success: true,
                        match_index: last_index.max(self.last_applied),
                    },
                )]
            }
            RaftMsg::AppendReply { term, success, match_index } => {
                if term > self.term {
                    self.become_follower(now, term);
                    return Vec::new();
                }
                if self.role != Role::Leader || term < self.term {
                    return Vec::new();
                }
                if success {
                    self.match_index[from] = self.match_index[from].max(match_index);
                    self.next_index[from] = self.match_index[from] + 1;
                    self.advance_commit();
                    Vec::new()
                } else {
                    // Back off and retry immediately.
                    self.next_index[from] = (match_index + 1)
                        .max(1)
                        .min(self.next_index[from].saturating_sub(1).max(1));
                    vec![(from, self.append_for(from))]
                }
            }
        }
    }

    fn advance_commit(&mut self) {
        let mut n = self.last_log_index();
        while n > self.commit_index {
            if self.term_at(n) == self.term {
                let replicas =
                    1 + (0..self.n).filter(|&p| p != self.id && self.match_index[p] >= n).count();
                if replicas * 2 > self.n {
                    self.commit_index = n;
                    break;
                }
            }
            n -= 1;
        }
    }

    /// Appends a command to the leader's log; entries replicate on the
    /// next heartbeat (or immediately via the returned messages).
    ///
    /// # Errors
    ///
    /// Returns [`NotLeaderError`] on non-leaders.
    pub fn propose(
        &mut self,
        cmd: KvCommand,
    ) -> Result<(u64, Vec<(usize, RaftMsg)>), NotLeaderError> {
        if self.role != Role::Leader {
            return Err(NotLeaderError);
        }
        self.log.push(LogEntry { term: self.term, cmd });
        let index = self.last_log_index();
        self.match_index[self.id] = index;
        if self.n == 1 {
            self.advance_commit();
        }
        Ok((index, self.replicate_all()))
    }

    /// Returns entries committed but not yet surfaced, advancing the
    /// applied cursor.
    pub fn take_committed(&mut self) -> Vec<(u64, KvCommand)> {
        let mut out = Vec::new();
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            let Some(e) = self.entry(self.last_applied) else {
                // Covered by an installed snapshot.
                continue;
            };
            out.push((self.last_applied, e.cmd.clone()));
        }
        out
    }
}

#[derive(Debug)]
struct InFlight {
    at: SimTime,
    seq: u64,
    from: usize,
    to: usize,
    msg: RaftMsg,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A simulated Raft group: N replicas, a message fabric with uniform
/// latency, crash/restart and partition controls, and one [`KvStore`]
/// state machine per replica.
///
/// # Examples
///
/// ```
/// use myrtus_kb::command::KvCommand;
/// use myrtus_kb::raft::RaftCluster;
/// use myrtus_continuum::time::{SimDuration, SimTime};
///
/// let mut cluster = RaftCluster::new(3, 42, SimDuration::from_millis(5));
/// cluster.run_until(SimTime::from_secs(2));
/// let leader = cluster.leader().expect("a leader is elected");
/// cluster.propose(leader, KvCommand::put("/k", b"v")).expect("leader accepts");
/// cluster.run_for(SimDuration::from_millis(500));
/// assert_eq!(cluster.committed_value(leader, "/k"), Some(b"v".to_vec()));
/// ```
#[derive(Debug)]
pub struct RaftCluster {
    nodes: Vec<Option<RaftNode>>,
    stores: Vec<KvStore>,
    now: SimTime,
    queue: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    latency: SimDuration,
    cut: HashSet<(usize, usize)>,
    tick: SimDuration,
    delivered: u64,
    compaction_threshold: Option<u64>,
}

impl RaftCluster {
    /// Creates an `n`-replica group with the given message latency.
    pub fn new(n: usize, seed: u64, latency: SimDuration) -> Self {
        Self::with_config(n, seed, latency, RaftConfig::default())
    }

    /// Creates a group with explicit Raft timing.
    pub fn with_config(n: usize, seed: u64, latency: SimDuration, cfg: RaftConfig) -> Self {
        RaftCluster {
            nodes: (0..n).map(|i| Some(RaftNode::new(i, n, seed, cfg))).collect(),
            stores: (0..n).map(|_| KvStore::new()).collect(),
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            latency,
            cut: HashSet::new(),
            tick: SimDuration::from_millis(1),
            delivered: 0,
            compaction_threshold: None,
        }
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Enables per-replica log compaction: whenever a replica has more
    /// than `retained_entries` applied entries in memory, it snapshots
    /// its state machine and truncates the log (etcd auto-compaction).
    pub fn enable_compaction(&mut self, retained_entries: u64) {
        self.compaction_threshold = Some(retained_entries.max(1));
    }

    /// Retained in-memory log entries of a replica (0 for crashed ones).
    pub fn retained_log_len(&self, id: usize) -> usize {
        self.nodes[id].as_ref().map_or(0, RaftNode::retained_log_len)
    }

    /// Number of replicas (including crashed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// The current leader, if exactly one alive replica believes it leads
    /// in the highest term.
    pub fn leader(&self) -> Option<usize> {
        let max_term = self.nodes.iter().flatten().map(RaftNode::term).max()?;
        let leaders: Vec<usize> = self
            .nodes
            .iter()
            .flatten()
            .filter(|n| n.role() == Role::Leader && n.term() == max_term)
            .map(RaftNode::id)
            .collect();
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// All replicas currently believing they are leader (for safety
    /// assertions).
    pub fn all_leaders(&self) -> Vec<(usize, u64)> {
        self.nodes
            .iter()
            .flatten()
            .filter(|n| n.role() == Role::Leader)
            .map(|n| (n.id(), n.term()))
            .collect()
    }

    /// The replica's applied state machine.
    pub fn store(&self, id: usize) -> &KvStore {
        &self.stores[id]
    }

    /// Reads the applied (committed) value of `key` at replica `id`.
    pub fn committed_value(&self, id: usize, key: &str) -> Option<Vec<u8>> {
        self.stores[id].get(key).map(|e| e.value.to_vec())
    }

    /// Proposes a command at replica `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeaderError`] if `id` is crashed or not the leader.
    pub fn propose(&mut self, id: usize, cmd: KvCommand) -> Result<u64, NotLeaderError> {
        let now = self.now;
        let node = self.nodes[id].as_mut().ok_or(NotLeaderError)?;
        let (index, out) = node.propose(cmd)?;
        self.send_all(now, id, out);
        Ok(index)
    }

    /// Crashes a replica (it stops processing; its messages are dropped).
    pub fn crash(&mut self, id: usize) {
        self.nodes[id] = None;
    }

    /// Restarts a crashed replica with an empty volatile state but its
    /// log lost (memory-only model): it rejoins as a fresh follower and
    /// catches up from the leader.
    pub fn restart(&mut self, id: usize, seed: u64) {
        let n = self.nodes.len();
        let mut node = RaftNode::new(id, n, seed, RaftConfig::default());
        node.reset_election_deadline(self.now);
        node.election_deadline = self.now + SimDuration::from_millis(200);
        self.nodes[id] = Some(node);
        self.stores[id] = KvStore::new();
    }

    /// Cuts the (bidirectional) link between two replicas.
    pub fn partition(&mut self, a: usize, b: usize) {
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Isolates `id` from every other replica.
    pub fn isolate(&mut self, id: usize) {
        for other in 0..self.nodes.len() {
            if other != id {
                self.partition(id, other);
            }
        }
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.cut.clear();
    }

    fn send_all(&mut self, now: SimTime, from: usize, msgs: Vec<(usize, RaftMsg)>) {
        for (to, msg) in msgs {
            if self.cut.contains(&(from, to)) {
                continue;
            }
            self.seq += 1;
            self.queue.push(Reverse(InFlight {
                at: now + self.latency,
                seq: self.seq,
                from,
                to,
                msg,
            }));
        }
    }

    /// Runs the group for `dt`.
    pub fn run_for(&mut self, dt: SimDuration) {
        let end = self.now + dt;
        self.run_until(end);
    }

    /// Runs the group until absolute time `end`.
    pub fn run_until(&mut self, end: SimTime) {
        while self.now < end {
            let next = self.now + self.tick;
            // Deliver messages due in (now, next].
            while let Some(Reverse(head)) = self.queue.peek() {
                if head.at > next {
                    break;
                }
                let Reverse(m) = self.queue.pop().expect("peeked");
                if self.cut.contains(&(m.from, m.to)) {
                    continue;
                }
                let at = m.at;
                if let Some(node) = self.nodes[m.to].as_mut() {
                    self.delivered += 1;
                    let out = node.handle(at, m.from, m.msg);
                    self.send_all(at, m.to, out);
                }
            }
            self.now = next;
            // Timers.
            for i in 0..self.nodes.len() {
                let now = self.now;
                if let Some(node) = self.nodes[i].as_mut() {
                    let out = node.tick(now);
                    self.send_all(now, i, out);
                }
            }
            // Apply commits (snapshot installs first: they replace the
            // whole state machine).
            for i in 0..self.nodes.len() {
                let now = self.now;
                if let Some(node) = self.nodes[i].as_mut() {
                    if let Some(snap) = node.take_pending_install() {
                        self.stores[i].restore(&snap);
                    }
                    for (_, cmd) in node.take_committed() {
                        self.stores[i].apply(&cmd, now);
                    }
                    if let Some(threshold) = self.compaction_threshold {
                        let applied_in_log = node.last_applied().saturating_sub(node.log_offset());
                        if applied_in_log > threshold {
                            let upto = node.last_applied();
                            node.compact(upto, self.stores[i].snapshot());
                        }
                    }
                }
                self.stores[i].expire_leases(now);
            }
        }
    }

    /// Runs until a leader exists or `deadline` passes; returns the
    /// leader id if one emerged.
    pub fn await_leader(&mut self, deadline: SimTime) -> Option<usize> {
        while self.now < deadline {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            self.run_for(SimDuration::from_millis(10));
        }
        self.leader()
    }

    /// Proposes at the current leader and runs until a majority of
    /// replicas applied the command, returning the commit latency.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeaderError`] when no leader exists or replication
    /// does not complete within 10 simulated seconds.
    pub fn replicate_and_measure(&mut self, cmd: KvCommand) -> Result<SimDuration, NotLeaderError> {
        let leader = self.leader().ok_or(NotLeaderError)?;
        let key = cmd.key().to_string();
        let marker = match &cmd {
            KvCommand::Put { value, .. } | KvCommand::PutWithLease { value, .. } => value.to_vec(),
            _ => Vec::new(),
        };
        let start = self.now;
        self.propose(leader, cmd)?;
        let deadline = start + SimDuration::from_secs(10);
        while self.now < deadline {
            let have = self
                .stores
                .iter()
                .filter(|s| s.get(&key).map(|e| e.value.to_vec()) == Some(marker.clone()))
                .count();
            if have * 2 > self.nodes.len() {
                return Ok(self.now.saturating_since(start));
            }
            self.run_for(SimDuration::from_millis(1));
        }
        Err(NotLeaderError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> RaftCluster {
        RaftCluster::new(n, 7, SimDuration::from_millis(5))
    }

    #[test]
    fn three_replicas_elect_exactly_one_leader() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        assert!(leader < 3);
        assert_eq!(c.all_leaders().len(), 1);
    }

    #[test]
    fn single_replica_self_elects_and_commits() {
        let mut c = cluster(1);
        let leader = c.await_leader(SimTime::from_secs(2)).expect("self-elect");
        c.propose(leader, KvCommand::put("/x", b"1")).expect("leader");
        c.run_for(SimDuration::from_millis(100));
        assert_eq!(c.committed_value(0, "/x"), Some(b"1".to_vec()));
    }

    #[test]
    fn replication_reaches_every_replica() {
        let mut c = cluster(5);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.propose(leader, KvCommand::put("/cfg", b"v1")).expect("leader");
        c.run_for(SimDuration::from_millis(500));
        for i in 0..5 {
            assert_eq!(c.committed_value(i, "/cfg"), Some(b"v1".to_vec()), "replica {i}");
        }
    }

    #[test]
    fn proposals_to_followers_are_rejected() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        let follower = (0..3).find(|&i| i != leader).expect("exists");
        assert_eq!(c.propose(follower, KvCommand::put("/x", b"1")), Err(NotLeaderError));
    }

    #[test]
    fn leader_crash_triggers_failover_and_no_data_loss() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.propose(leader, KvCommand::put("/a", b"1")).expect("leader");
        c.run_for(SimDuration::from_millis(500));
        c.crash(leader);
        let deadline = c.now() + SimDuration::from_secs(3);
        let new_leader = c.await_leader(deadline).expect("failover");
        assert_ne!(new_leader, leader);
        // Committed data survives on the new leader.
        assert_eq!(c.committed_value(new_leader, "/a"), Some(b"1".to_vec()));
        // And the group still accepts writes.
        c.propose(new_leader, KvCommand::put("/b", b"2")).expect("new leader");
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.committed_value(new_leader, "/b"), Some(b"2".to_vec()));
    }

    #[test]
    fn isolated_leader_cannot_commit() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.isolate(leader);
        // Old leader cannot replicate; the write must not reach followers.
        let _ = c.propose(leader, KvCommand::put("/lost", b"x"));
        c.run_for(SimDuration::from_secs(2));
        for i in (0..3).filter(|&i| i != leader) {
            assert_eq!(c.committed_value(i, "/lost"), None, "replica {i}");
        }
        // A new leader emerges on the majority side and accepts writes.
        let max_term_leader = c
            .all_leaders()
            .into_iter()
            .max_by_key(|(_, t)| *t)
            .map(|(id, _)| id)
            .expect("majority elects");
        assert_ne!(max_term_leader, leader);
    }

    #[test]
    fn healed_partition_converges_to_one_log() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.isolate(leader);
        c.run_for(SimDuration::from_secs(2));
        let new_leader = c
            .all_leaders()
            .into_iter()
            .max_by_key(|(_, t)| *t)
            .map(|(id, _)| id)
            .expect("majority leader");
        c.propose(new_leader, KvCommand::put("/v", b"new")).expect("majority leader");
        c.run_for(SimDuration::from_millis(500));
        c.heal();
        c.run_for(SimDuration::from_secs(2));
        // Every replica (including the deposed leader) applies the new value.
        for i in 0..3 {
            assert_eq!(c.committed_value(i, "/v"), Some(b"new".to_vec()), "replica {i}");
        }
        assert_eq!(c.all_leaders().len(), 1, "exactly one leader after heal");
    }

    #[test]
    fn restarted_replica_catches_up() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.propose(leader, KvCommand::put("/k", b"v")).expect("leader");
        c.run_for(SimDuration::from_millis(500));
        let victim = (0..3).find(|&i| i != leader).expect("exists");
        c.crash(victim);
        c.run_for(SimDuration::from_millis(300));
        c.restart(victim, 99);
        c.run_for(SimDuration::from_secs(2));
        assert_eq!(c.committed_value(victim, "/k"), Some(b"v".to_vec()));
    }

    #[test]
    fn commit_latency_grows_with_cluster_size() {
        let mut lat3 = None;
        let mut lat7 = None;
        for (n, slot) in [(3usize, &mut lat3), (7usize, &mut lat7)] {
            let mut c = RaftCluster::new(n, 11, SimDuration::from_millis(5));
            c.await_leader(SimTime::from_secs(3)).expect("leader");
            let d = c.replicate_and_measure(KvCommand::put("/m", b"x")).expect("replicates");
            *slot = Some(d);
        }
        let (l3, l7) = (lat3.expect("measured"), lat7.expect("measured"));
        assert!(l3.as_micros() > 0);
        // Same fabric: bigger quorum cannot be faster than a smaller one
        // by more than one tick of slack.
        assert!(l7.as_micros() + 1_000 >= l3.as_micros(), "l3={l3} l7={l7}");
    }

    #[test]
    fn cas_serializes_concurrent_claims() {
        let mut c = cluster(3);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("leader");
        c.propose(
            leader,
            KvCommand::Cas {
                key: "/lock".into(),
                expect: None,
                value: bytes::Bytes::from_static(b"a"),
            },
        )
        .expect("leader");
        c.propose(
            leader,
            KvCommand::Cas {
                key: "/lock".into(),
                expect: None,
                value: bytes::Bytes::from_static(b"b"),
            },
        )
        .expect("leader");
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(c.committed_value(leader, "/lock"), Some(b"a".to_vec()));
    }

    #[test]
    fn compaction_bounds_log_memory_without_changing_state() {
        let mut plain = cluster(3);
        let mut compacting = cluster(3);
        compacting.enable_compaction(8);
        for c in [&mut plain, &mut compacting] {
            let leader = c.await_leader(SimTime::from_secs(3)).expect("elects");
            for i in 0..60 {
                c.propose(
                    leader,
                    KvCommand::put(format!("/k{}", i % 7), format!("v{i}").as_bytes()),
                )
                .expect("leader");
                c.run_for(SimDuration::from_millis(60));
            }
            c.run_for(SimDuration::from_secs(1));
        }
        // Same applied state on every replica of both clusters.
        for i in 0..3 {
            for k in 0..7 {
                assert_eq!(
                    plain.committed_value(i, &format!("/k{k}")),
                    compacting.committed_value(i, &format!("/k{k}")),
                    "replica {i} key {k}"
                );
            }
        }
        // Memory bound holds only under compaction.
        let max_compacted = (0..3).map(|i| compacting.retained_log_len(i)).max().unwrap();
        let max_plain = (0..3).map(|i| plain.retained_log_len(i)).max().unwrap();
        assert!(max_compacted <= 16, "compacted logs stay small: {max_compacted}");
        assert_eq!(max_plain, 60, "uncompacted logs keep everything");
    }

    #[test]
    fn restarted_replica_catches_up_via_install_snapshot() {
        let mut c = cluster(3);
        c.enable_compaction(5);
        let leader = c.await_leader(SimTime::from_secs(3)).expect("elects");
        for i in 0..30 {
            c.propose(leader, KvCommand::put(format!("/s{i}"), b"v")).expect("leader");
            c.run_for(SimDuration::from_millis(60));
        }
        let victim = (0..3).find(|&i| i != leader).expect("exists");
        c.crash(victim);
        // More writes while the victim is down; the leader compacts them
        // away, so plain log replay can no longer rescue the victim.
        for i in 30..45 {
            if let Some(l) = c.leader() {
                let _ = c.propose(l, KvCommand::put(format!("/s{i}"), b"v"));
            }
            c.run_for(SimDuration::from_millis(60));
        }
        c.restart(victim, 77);
        c.run_for(SimDuration::from_secs(3));
        // The fresh replica holds the full state despite the truncated log.
        for i in 0..45 {
            assert_eq!(
                c.committed_value(victim, &format!("/s{i}")),
                Some(b"v".to_vec()),
                "key {i}"
            );
        }
        assert!(c.retained_log_len(victim) < 45, "victim adopted a snapshot");
    }

    #[test]
    fn determinism_same_seed_same_leader() {
        let l1 = cluster(5).await_leader(SimTime::from_secs(3));
        let l2 = cluster(5).await_leader(SimTime::from_secs(3));
        assert_eq!(l1, l2);
    }
}
