//! The Resource Registry/Status (paper Sect. III and VI).
//!
//! The KB keeps "a snapshot of the components availability and their
//! status": per-node records with layer, capacity, utilization, security
//! capability and liveness, stored under `/registry/nodes/<id>` in the
//! replicated KV store. MIRTO's WL Manager reads this snapshot when
//! establishing deployment or reallocation directives.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use myrtus_continuum::ids::NodeId;
use myrtus_continuum::monitor::NodeSnapshot;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::SimTime;

use crate::command::KvCommand;
use crate::store::KvStore;

/// One registry record describing a continuum component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The node.
    pub node: NodeId,
    /// Component name.
    pub name: String,
    /// Continuum layer.
    pub layer: Layer,
    /// Whether the component is up.
    pub up: bool,
    /// Core utilization in `[0, 1]` at snapshot time.
    pub utilization: f64,
    /// Queue depth at snapshot time.
    pub queue_len: usize,
    /// Free memory, MiB.
    pub mem_free_mb: u64,
    /// Highest security tier the component supports: 0 = low, 1 = medium,
    /// 2 = high (paper Table II).
    pub max_security_tier: u8,
    /// Active operating-point index.
    pub point_idx: usize,
    /// Energy consumed so far, joules.
    pub energy_j: f64,
    /// Snapshot instant.
    pub updated_at: SimTime,
}

impl NodeRecord {
    /// Builds a record from an infrastructure-monitor snapshot plus the
    /// component's supported security tier.
    pub fn from_snapshot(s: &NodeSnapshot, max_security_tier: u8, at: SimTime) -> Self {
        NodeRecord {
            node: s.node,
            name: s.name.clone(),
            layer: s.layer,
            up: s.up,
            utilization: s.utilization,
            queue_len: s.queue_len,
            mem_free_mb: s.mem_free_mb,
            max_security_tier,
            point_idx: s.point_idx,
            energy_j: s.energy_j,
            updated_at: at,
        }
    }

    /// Registry key for a node.
    pub fn key(node: NodeId) -> String {
        format!("/registry/nodes/{:06}", node.as_raw())
    }

    /// Serializes the record to its stored representation.
    pub fn encode(&self) -> Bytes {
        // A compact line format keeps the store dependency-free.
        let s = format!(
            "{}|{}|{}|{}|{:.6}|{}|{}|{}|{}|{:.6}|{}",
            self.node.as_raw(),
            self.name,
            self.layer,
            self.up as u8,
            self.utilization,
            self.queue_len,
            self.mem_free_mb,
            self.max_security_tier,
            self.point_idx,
            self.energy_j,
            self.updated_at.as_micros(),
        );
        Bytes::from(s.into_bytes())
    }

    /// Parses a stored representation.
    pub fn decode(raw: &[u8]) -> Option<NodeRecord> {
        let s = std::str::from_utf8(raw).ok()?;
        let mut it = s.split('|');
        let node = NodeId::from_raw(it.next()?.parse().ok()?);
        let name = it.next()?.to_string();
        let layer = match it.next()? {
            "edge" => Layer::Edge,
            "fog" => Layer::Fog,
            "cloud" => Layer::Cloud,
            _ => return None,
        };
        let up = it.next()? == "1";
        let utilization = it.next()?.parse().ok()?;
        let queue_len = it.next()?.parse().ok()?;
        let mem_free_mb = it.next()?.parse().ok()?;
        let max_security_tier = it.next()?.parse().ok()?;
        let point_idx = it.next()?.parse().ok()?;
        let energy_j = it.next()?.parse().ok()?;
        let updated_at = SimTime::from_micros(it.next()?.parse().ok()?);
        Some(NodeRecord {
            node,
            name,
            layer,
            up,
            utilization,
            queue_len,
            mem_free_mb,
            max_security_tier,
            point_idx,
            energy_j,
            updated_at,
        })
    }

    /// The KV command that upserts this record.
    pub fn to_command(&self) -> KvCommand {
        KvCommand::Put { key: Self::key(self.node), value: self.encode() }
    }
}

/// Read-side view over the registry section of a KV store.
#[derive(Debug, Clone, Copy)]
pub struct RegistryView<'a> {
    store: &'a KvStore,
}

impl<'a> RegistryView<'a> {
    /// Wraps a store.
    pub fn new(store: &'a KvStore) -> Self {
        RegistryView { store }
    }

    /// Reads one node's record.
    pub fn node(&self, node: NodeId) -> Option<NodeRecord> {
        self.store.get(&NodeRecord::key(node)).and_then(|e| NodeRecord::decode(&e.value))
    }

    /// All records, in node-id order.
    pub fn all(&self) -> Vec<NodeRecord> {
        self.store
            .range("/registry/nodes/")
            .into_iter()
            .filter_map(|(_, e)| NodeRecord::decode(&e.value))
            .collect()
    }

    /// Up nodes of a layer, least-utilized first.
    pub fn available_in_layer(&self, layer: Layer) -> Vec<NodeRecord> {
        let mut v: Vec<NodeRecord> =
            self.all().into_iter().filter(|r| r.up && r.layer == layer).collect();
        v.sort_by(|a, b| {
            a.utilization
                .partial_cmp(&b.utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        v
    }

    /// Up nodes supporting at least the given security tier.
    pub fn with_security_tier(&self, min_tier: u8) -> Vec<NodeRecord> {
        self.all().into_iter().filter(|r| r.up && r.max_security_tier >= min_tier).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, layer: Layer, util: f64, tier: u8, up: bool) -> NodeRecord {
        NodeRecord {
            node: NodeId::from_raw(id),
            name: format!("n{id}"),
            layer,
            up,
            utilization: util,
            queue_len: 1,
            mem_free_mb: 512,
            max_security_tier: tier,
            point_idx: 0,
            energy_j: 1.25,
            updated_at: SimTime::from_millis(10),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = record(3, Layer::Fog, 0.625, 2, true);
        let decoded = NodeRecord::decode(&r.encode()).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(NodeRecord::decode(b"not|a|record").is_none());
        assert!(NodeRecord::decode(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn registry_view_filters_and_sorts() {
        let mut kv = KvStore::new();
        for r in [
            record(0, Layer::Edge, 0.9, 0, true),
            record(1, Layer::Edge, 0.1, 1, true),
            record(2, Layer::Edge, 0.5, 2, false),
            record(3, Layer::Cloud, 0.2, 2, true),
        ] {
            kv.apply(&r.to_command(), SimTime::ZERO);
        }
        let view = RegistryView::new(&kv);
        assert_eq!(view.all().len(), 4);
        let edge = view.available_in_layer(Layer::Edge);
        assert_eq!(edge.len(), 2, "down node excluded");
        assert_eq!(edge[0].node, NodeId::from_raw(1), "least utilized first");
        let secure = view.with_security_tier(2);
        assert_eq!(secure.len(), 1);
        assert_eq!(secure[0].node, NodeId::from_raw(3));
        assert_eq!(view.node(NodeId::from_raw(0)).map(|r| r.queue_len), Some(1));
        assert!(view.node(NodeId::from_raw(99)).is_none());
    }

    #[test]
    fn snapshot_conversion_keeps_fields() {
        let snap = NodeSnapshot {
            node: NodeId::from_raw(7),
            name: "edge-hmpsoc-1".into(),
            layer: Layer::Edge,
            up: true,
            utilization: 0.5,
            queue_len: 3,
            mem_free_mb: 1_024,
            point_idx: 1,
            energy_j: 9.5,
            completed: 10,
            reconfigurations: 2,
        };
        let r = NodeRecord::from_snapshot(&snap, 1, SimTime::from_secs(1));
        assert_eq!(r.node, snap.node);
        assert_eq!(r.point_idx, 1);
        assert_eq!(r.max_security_tier, 1);
        assert_eq!(r.updated_at, SimTime::from_secs(1));
    }
}
