//! Layer agents and inter-agent negotiation.
//!
//! "All the components at each layer communicate with their
//! layer-/component-specific MIRTO agent which, in turn, communicates
//! with the other layer-/component-specific agents" (paper Sect. III) to
//! "negotiate the usage of resources" (Sect. IV). The negotiation here
//! is a sealed-bid offload auction: the requesting agent broadcasts a
//! stage's requirements; each agent answers with its best estimated
//! completion time and marginal energy over the nodes it manages; the
//! requester picks the cheapest feasible bid.

use myrtus_continuum::engine::SimCore;
use myrtus_continuum::ids::NodeId;
use myrtus_continuum::node::Layer;
use myrtus_continuum::time::{SimDuration, SimTime};

use crate::managers::privsec::node_security_level;
use crate::placement::transfer_estimate_us;
use myrtus_security::suite::SecurityLevel;

/// Requirements of the stage being auctioned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadQuery {
    /// Where the input data currently lives.
    pub data_at: NodeId,
    /// Software work, megacycles.
    pub work_mc: f64,
    /// Input volume to move, bytes.
    pub input_bytes: u64,
    /// Memory requirement, MiB.
    pub mem_mb: u64,
    /// Minimum security level of the host.
    pub min_level: SecurityLevel,
}

/// One agent's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    /// Bidding agent's layer.
    pub layer: Layer,
    /// Offered node.
    pub node: NodeId,
    /// Estimated completion instant (transfer + backlog + service).
    pub est_completion: SimTime,
    /// Estimated marginal energy, joules.
    pub est_energy_j: f64,
}

/// A MIRTO agent responsible for the nodes of one layer (or one
/// component group).
#[derive(Debug, Clone)]
pub struct MirtoAgent {
    name: String,
    layer: Layer,
    nodes: Vec<NodeId>,
}

impl MirtoAgent {
    /// Creates an agent managing `nodes` in `layer`.
    pub fn new(name: impl Into<String>, layer: Layer, nodes: Vec<NodeId>) -> Self {
        MirtoAgent { name: name.into(), layer, nodes }
    }

    /// Agent name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer this agent manages.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// Managed nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Answers an offload query with this agent's best bid, or `None`
    /// when no managed node qualifies.
    pub fn bid(&self, sim: &SimCore, query: &OffloadQuery) -> Option<Bid> {
        let mut best: Option<Bid> = None;
        for &id in &self.nodes {
            let Some(state) = sim.node(id) else { continue };
            if !state.is_up()
                || state.spec().mem_mb() < query.mem_mb
                || node_security_level(state.spec().kind()) < query.min_level
            {
                continue;
            }
            let transfer_us = transfer_estimate_us(sim, query.data_at, id, query.input_bytes);
            if !transfer_us.is_finite() {
                continue;
            }
            let backlog = state.estimated_backlog(sim.now());
            let service = state.service_time(query.work_mc);
            let est_completion =
                sim.now() + SimDuration::from_micros_f64(transfer_us) + backlog + service;
            let point = state.point();
            let marginal_w =
                (point.active_w() - point.idle_w()).max(0.0) / state.spec().cores() as f64;
            let est_energy_j = marginal_w * service.as_secs_f64();
            let bid = Bid { layer: self.layer, node: id, est_completion, est_energy_j };
            if best.as_ref().is_none_or(|b| bid.est_completion < b.est_completion) {
                best = Some(bid);
            }
        }
        best
    }
}

/// Runs a sealed-bid auction across agents; returns the winning bid
/// (earliest estimated completion; energy breaks ties).
pub fn auction(agents: &[MirtoAgent], sim: &SimCore, query: &OffloadQuery) -> Option<Bid> {
    agents.iter().filter_map(|a| a.bid(sim, query)).min_by(|a, b| {
        a.est_completion
            .cmp(&b.est_completion)
            .then_with(|| {
                a.est_energy_j.partial_cmp(&b.est_energy_j).unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.node.cmp(&b.node))
    })
}

/// A placement policy driven entirely by inter-agent negotiation: every
/// component is auctioned in topological order, with the data source set
/// to its predecessor's winner — the "agents negotiate the usage of
/// resources" flavor of MIRTO (paper Sect. IV).
#[derive(Debug, Default)]
pub struct AuctionPlacement;

impl AuctionPlacement {
    /// Creates the policy.
    pub fn new() -> Self {
        AuctionPlacement
    }
}

impl crate::policies::PlacementPolicy for AuctionPlacement {
    fn name(&self) -> &'static str {
        "agent-auction"
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn place(
        &mut self,
        ctx: &crate::placement::PlanContext<'_>,
    ) -> Result<crate::placement::Placement, crate::policies::PlaceError> {
        use crate::managers::privsec::{level_for_tier, node_security_level};
        let nodes = ctx.dag.nodes();
        let mut assignment = vec![NodeId::from_raw(0); nodes.len()];
        for &i in ctx.dag.topo_order() {
            let dn = &nodes[i];
            let comp = &ctx.app.components[dn.component_idx];
            let candidates = ctx
                .candidates
                .get(i)
                .filter(|c| !c.is_empty())
                .ok_or(crate::policies::PlaceError::NoCandidate { component: i })?;
            // Data lives where the last predecessor was placed; sources
            // auction from their own best candidate (data is born there).
            let data_at = dn.preds.iter().last().map(|&p| assignment[p]).unwrap_or(candidates[0]);
            let min_level = level_for_tier(comp.requirements.security);
            // One agent per layer, restricted to this component's
            // candidates — the layer agents bid only with what they own.
            let mut agents = Vec::new();
            for layer in Layer::ALL {
                let owned: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|n| {
                        ctx.sim
                            .node(*n)
                            .map(|s| {
                                s.spec().layer() == layer
                                    && node_security_level(s.spec().kind()) >= min_level
                            })
                            .unwrap_or(false)
                    })
                    .collect();
                if !owned.is_empty() {
                    agents.push(MirtoAgent::new(format!("{layer}-agent"), layer, owned));
                }
            }
            let query = OffloadQuery {
                data_at,
                work_mc: dn.work_mc,
                input_bytes: dn
                    .preds
                    .iter()
                    .filter_map(|&p| nodes[p].succs.iter().find(|(s, _)| *s == i).map(|(_, b)| *b))
                    .sum(),
                mem_mb: comp.requirements.mem_mb,
                min_level,
            };
            let win = auction(&agents, ctx.sim, &query)
                .ok_or(crate::policies::PlaceError::NoCandidate { component: i })?;
            assignment[i] = win.node;
        }
        Ok(crate::placement::Placement::new(assignment))
    }
}

/// Builds the canonical three agents (edge, fog, cloud) over a continuum.
pub fn layer_agents(continuum: &myrtus_continuum::topology::Continuum) -> Vec<MirtoAgent> {
    vec![
        MirtoAgent::new("edge-agent", Layer::Edge, continuum.edge().to_vec()),
        MirtoAgent::new("fog-agent", Layer::Fog, continuum.fog()),
        MirtoAgent::new("cloud-agent", Layer::Cloud, continuum.cloud().to_vec()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::engine::NullDriver;
    use myrtus_continuum::task::TaskInstance;
    use myrtus_continuum::topology::ContinuumBuilder;

    fn query(data_at: NodeId, work_mc: f64, input_bytes: u64) -> OffloadQuery {
        OffloadQuery { data_at, work_mc, input_bytes, mem_mb: 16, min_level: SecurityLevel::Low }
    }

    #[test]
    fn small_local_work_stays_at_the_edge() {
        let c = ContinuumBuilder::new().build();
        let agents = layer_agents(&c);
        let src = c.edge()[0];
        let win = auction(&agents, c.sim(), &query(src, 1.0, 500_000)).expect("some bid");
        assert_eq!(win.layer, Layer::Edge, "big data + tiny work stays local: {win:?}");
    }

    #[test]
    fn heavy_work_with_small_data_goes_up_the_continuum() {
        let c = ContinuumBuilder::new().build();
        let agents = layer_agents(&c);
        let src = c.edge()[0];
        let win = auction(&agents, c.sim(), &query(src, 100_000.0, 1_000)).expect("some bid");
        assert_ne!(win.layer, Layer::Edge, "compute-heavy work offloads: {win:?}");
    }

    #[test]
    fn busy_nodes_bid_worse() {
        let mut c = ContinuumBuilder::new().build();
        let src = c.edge()[0];
        let q = query(src, 10.0, 0);
        let agents = [MirtoAgent::new("edge", Layer::Edge, vec![src])];
        let idle_bid = agents[0].bid(c.sim(), &q).expect("bids");
        {
            let sim = c.sim_mut();
            for _ in 0..16 {
                let t = TaskInstance::new(sim.fresh_task_id(), 100_000.0);
                sim.submit_local(src, t).expect("submit");
            }
            sim.run_until(SimTime::from_millis(1), &mut NullDriver);
        }
        let busy_bid = agents[0].bid(c.sim(), &q).expect("bids");
        assert!(busy_bid.est_completion > idle_bid.est_completion);
    }

    #[test]
    fn security_level_filters_bidders() {
        let c = ContinuumBuilder::new().build();
        let agents = layer_agents(&c);
        let src = c.edge()[0];
        let mut q = query(src, 10.0, 1_000);
        q.min_level = SecurityLevel::High;
        let win = auction(&agents, c.sim(), &q).expect("fog/cloud can bid");
        let kind = c.sim().node(win.node).expect("exists").spec().kind();
        assert_eq!(node_security_level(kind), SecurityLevel::High);
    }

    #[test]
    fn no_feasible_node_means_no_bid() {
        let c = ContinuumBuilder::new().build();
        let src = c.edge()[0];
        let mut q = query(src, 1.0, 0);
        q.mem_mb = u64::MAX;
        assert!(auction(&layer_agents(&c), c.sim(), &q).is_none());
    }

    #[test]
    fn auction_policy_places_every_component() {
        use crate::placement::{evaluate, PlanContext};
        use crate::policies::PlacementPolicy;
        let c = ContinuumBuilder::new().build();
        let app = myrtus_workload::scenarios::telerehab();
        let dag = myrtus_workload::graph::RequestDag::from_application(&app).expect("valid");
        let kb = myrtus_kb::KnowledgeBase::new();
        let all: Vec<NodeId> = c.all_nodes();
        let ctx = PlanContext {
            sim: c.sim(),
            kb: &kb,
            app: &app,
            dag: &dag,
            candidates: vec![all; dag.nodes().len()],
            estimator: None,
            obs: myrtus_obs::Obs::disabled(),
        };
        let mut policy = AuctionPlacement::new();
        assert_eq!(policy.name(), "agent-auction");
        assert!(policy.adaptive());
        let placement = policy.place(&ctx).expect("auctions settle");
        assert_eq!(placement.len(), dag.nodes().len());
        let score = evaluate(&ctx, &placement);
        assert!(score.feasible);
        // Negotiated placement should be competitive with random.
        let mut rnd = crate::policies::RandomPlacement::new(1);
        let random = rnd.place(&ctx).expect("places");
        assert!(
            score.objective(0.0) <= evaluate(&ctx, &random).objective(0.0) * 1.5,
            "auction result is not wildly worse than random"
        );
    }

    #[test]
    fn auction_policy_respects_security_candidates() {
        use crate::placement::PlanContext;
        use crate::policies::PlacementPolicy;
        let c = ContinuumBuilder::new().build();
        let app = myrtus_workload::scenarios::telerehab();
        let dag = myrtus_workload::graph::RequestDag::from_application(&app).expect("valid");
        let kb = myrtus_kb::KnowledgeBase::new();
        let mgr = crate::managers::privsec::PrivacySecurityManager::new(true);
        let candidates = mgr.candidates(c.sim(), &app, &dag);
        let ctx = PlanContext {
            sim: c.sim(),
            kb: &kb,
            app: &app,
            dag: &dag,
            candidates,
            estimator: None,
            obs: myrtus_obs::Obs::disabled(),
        };
        let placement = AuctionPlacement::new().place(&ctx).expect("auctions settle");
        // The High-tier session-store must sit on a High-capable node.
        let store = dag.nodes().iter().position(|n| n.name == "session-store").expect("exists");
        let kind = c.sim().node(placement.node_of(store)).expect("exists").spec().kind();
        assert_eq!(crate::managers::privsec::node_security_level(kind), SecurityLevel::High);
    }

    #[test]
    fn agents_expose_identity() {
        let c = ContinuumBuilder::new().build();
        let agents = layer_agents(&c);
        assert_eq!(agents.len(), 3);
        assert_eq!(agents[0].name(), "edge-agent");
        assert_eq!(agents[2].layer(), Layer::Cloud);
        assert_eq!(agents[0].nodes().len(), c.edge().len());
    }
}
