//! Swarm-intelligence placement (the Lakeside Labs contribution slot).
//!
//! Two canonical swarm optimizers search the discrete component→node
//! assignment space against the plan-time cost model: a discrete
//! Particle Swarm Optimizer (each particle is a full placement; velocity
//! acts as per-component switch probabilities toward personal/global
//! bests) and an Ant Colony Optimizer (pheromone per (component,
//! candidate) pair). Both implement
//! [`crate::policies::PlacementPolicy`] so the
//! orchestration experiments can swap them in directly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use myrtus_continuum::ids::NodeId;

use crate::placement::{evaluate, Placement, PlanContext};
use crate::policies::{PlaceError, PlacementPolicy};

/// Convergence trace entry: best objective after each iteration.
pub type ConvergenceTrace = Vec<f64>;

/// Discrete PSO over placements.
#[derive(Debug)]
pub struct PsoPlacement {
    particles: usize,
    iterations: usize,
    inertia: f64,
    cognitive: f64,
    social: f64,
    energy_weight: f64,
    seed: u64,
    last_trace: ConvergenceTrace,
}

impl PsoPlacement {
    /// Creates a PSO with sensible defaults (24 particles, 40 iterations).
    pub fn new(seed: u64) -> Self {
        PsoPlacement {
            particles: 24,
            iterations: 40,
            inertia: 0.5,
            cognitive: 0.3,
            social: 0.4,
            energy_weight: 0.0,
            seed,
            last_trace: Vec::new(),
        }
    }

    /// Sets swarm size.
    pub fn with_particles(mut self, n: usize) -> Self {
        self.particles = n.max(2);
        self
    }

    /// Sets iteration budget.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Sets the energy weight of the objective (µs per joule).
    pub fn with_energy_weight(mut self, w: f64) -> Self {
        self.energy_weight = w;
        self
    }

    /// Best-objective-so-far after each iteration of the last run.
    pub fn last_trace(&self) -> &[f64] {
        &self.last_trace
    }
}

/// Greedy coordinate descent: repeatedly sweeps the components, moving
/// each to its best candidate under the objective, until a full sweep
/// yields no improvement (memetic polish shared by PSO and ACO).
///
/// The candidate moves of one component are scored in parallel (each
/// against the same base assignment); the first-wins argmin below stays
/// serial and in candidate order, so the descent path is bit-identical
/// to a fully serial sweep.
fn coordinate_polish(
    ctx: &PlanContext<'_>,
    mut assignment: Vec<NodeId>,
    objective: &(dyn Fn(&[NodeId]) -> f64 + Sync),
) -> (Vec<NodeId>, f64) {
    use rayon::prelude::*;
    let mut best_score = objective(&assignment);
    loop {
        let mut improved = false;
        for d in 0..assignment.len() {
            let original = assignment[d];
            let cands: Vec<NodeId> =
                ctx.candidates[d].iter().copied().filter(|&c| c != original).collect();
            let base = &assignment;
            let scores: Vec<f64> = cands
                .par_iter()
                .map(|&cand| {
                    let mut trial = base.clone();
                    trial[d] = cand;
                    objective(&trial)
                })
                .collect();
            let mut best_here = (original, best_score);
            for (&cand, &s) in cands.iter().zip(&scores) {
                if s < best_here.1 {
                    best_here = (cand, s);
                }
            }
            assignment[d] = best_here.0;
            if best_here.1 < best_score {
                best_score = best_here.1;
                improved = true;
            }
        }
        if !improved {
            return (assignment, best_score);
        }
    }
}

fn random_assignment(ctx: &PlanContext<'_>, rng: &mut StdRng) -> Result<Vec<NodeId>, PlaceError> {
    let mut a = Vec::with_capacity(ctx.dag.nodes().len());
    for i in 0..ctx.dag.nodes().len() {
        let c = ctx.candidates.get(i).map(Vec::as_slice).unwrap_or(&[]);
        if c.is_empty() {
            return Err(PlaceError::NoCandidate { component: i });
        }
        a.push(c[rng.gen_range(0..c.len())]);
    }
    Ok(a)
}

impl PlacementPolicy for PsoPlacement {
    fn name(&self) -> &'static str {
        "swarm-pso"
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn place(&mut self, ctx: &PlanContext<'_>) -> Result<Placement, PlaceError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dims = ctx.dag.nodes().len();
        let objective =
            |a: &[NodeId]| evaluate(ctx, &Placement::new(a.to_vec())).objective(self.energy_weight);

        let mut positions: Vec<Vec<NodeId>> = Vec::with_capacity(self.particles);
        // Seed part of the swarm with co-location candidates (everything
        // on one node): for data-heavy pipelines those are the deep
        // basins a pure random init easily misses. Keep the best-scoring
        // seeds so half the swarm starts in the strongest basins.
        let mut colocation_seeds: Vec<Vec<NodeId>> = ctx
            .candidates
            .first()
            .map(|c0| {
                c0.iter()
                    .filter(|n| ctx.candidates.iter().all(|c| c.contains(n)))
                    .map(|&n| vec![n; dims])
                    .collect()
            })
            .unwrap_or_default();
        colocation_seeds.sort_by(|a, b| {
            objective(a).partial_cmp(&objective(b)).unwrap_or(std::cmp::Ordering::Equal)
        });
        for seed in colocation_seeds.into_iter().take(self.particles / 2) {
            positions.push(seed);
        }
        while positions.len() < self.particles {
            positions.push(random_assignment(ctx, &mut rng)?);
        }
        let mut personal_best = positions.clone();
        let mut personal_score: Vec<f64> = personal_best.iter().map(|p| objective(p)).collect();
        let mut g_idx = (0..self.particles)
            .min_by(|&a, &b| {
                personal_score[a]
                    .partial_cmp(&personal_score[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty swarm");
        let mut global_best = personal_best[g_idx].clone();
        let mut global_score = personal_score[g_idx];

        self.last_trace.clear();
        // Batch-synchronous sweeps: every particle of an iteration moves
        // against the global best of the *previous* iteration, so the
        // move phase (the only RNG consumer) is a pure serial prefix and
        // the scoring phase is an embarrassingly parallel map. Bests are
        // then folded serially in particle order, which makes the whole
        // iteration independent of thread count.
        for iter in 0..self.iterations {
            for p in 0..self.particles {
                // Periodic scatter: one quarter of the swarm restarts from
                // a fresh random position every few iterations, which keeps
                // global exploration alive after the swarm contracts.
                if iter > 0 && iter % 5 == 0 && p % 4 == 0 {
                    positions[p] = random_assignment(ctx, &mut rng)?;
                } else {
                    for d in 0..dims {
                        let r: f64 = rng.gen();
                        // Move toward personal best, global best, or explore.
                        if r < self.social {
                            positions[p][d] = global_best[d];
                        } else if r < self.social + self.cognitive {
                            positions[p][d] = personal_best[p][d];
                        } else if r < self.social + self.cognitive + (1.0 - self.inertia) * 0.3 {
                            let c = &ctx.candidates[d];
                            positions[p][d] = c[rng.gen_range(0..c.len())];
                        }
                    }
                }
            }
            let scores: Vec<f64> = {
                use rayon::prelude::*;
                positions.par_iter().map(|p| objective(p)).collect()
            };
            for (p, &score) in scores.iter().enumerate() {
                if score < personal_score[p] {
                    personal_score[p] = score;
                    personal_best[p] = positions[p].clone();
                    if score < global_score {
                        global_score = score;
                        global_best = positions[p].clone();
                        g_idx = p;
                    }
                }
            }
            self.last_trace.push(global_score);
        }
        let _ = g_idx;
        let (polished, score) = coordinate_polish(ctx, global_best, &objective);
        if let Some(last) = self.last_trace.last_mut() {
            *last = score.min(*last);
        }
        Ok(Placement::new(polished))
    }
}

/// Ant Colony Optimization over placements.
#[derive(Debug)]
pub struct AcoPlacement {
    ants: usize,
    iterations: usize,
    evaporation: f64,
    deposit: f64,
    energy_weight: f64,
    seed: u64,
    last_trace: ConvergenceTrace,
}

impl AcoPlacement {
    /// Creates an ACO with sensible defaults (16 ants, 40 iterations).
    pub fn new(seed: u64) -> Self {
        AcoPlacement {
            ants: 16,
            iterations: 40,
            evaporation: 0.15,
            deposit: 1.0,
            energy_weight: 0.0,
            seed,
            last_trace: Vec::new(),
        }
    }

    /// Sets colony size.
    pub fn with_ants(mut self, n: usize) -> Self {
        self.ants = n.max(1);
        self
    }

    /// Sets iteration budget.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Sets the energy weight of the objective (µs per joule).
    pub fn with_energy_weight(mut self, w: f64) -> Self {
        self.energy_weight = w;
        self
    }

    /// Best-objective-so-far after each iteration of the last run.
    pub fn last_trace(&self) -> &[f64] {
        &self.last_trace
    }
}

impl PlacementPolicy for AcoPlacement {
    fn name(&self) -> &'static str {
        "swarm-aco"
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn place(&mut self, ctx: &PlanContext<'_>) -> Result<Placement, PlaceError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dims = ctx.dag.nodes().len();
        for i in 0..dims {
            if ctx.candidates.get(i).is_none_or(Vec::is_empty) {
                return Err(PlaceError::NoCandidate { component: i });
            }
        }
        let objective =
            |a: &[NodeId]| evaluate(ctx, &Placement::new(a.to_vec())).objective(self.energy_weight);
        // Pheromone per (component, candidate index).
        let mut pheromone: Vec<Vec<f64>> =
            ctx.candidates.iter().map(|c| vec![1.0; c.len()]).collect();
        let mut global_best: Option<(Vec<NodeId>, f64)> = None;

        self.last_trace.clear();
        for _ in 0..self.iterations {
            // Construct every ant's trail serially (the roulette wheel is
            // the only RNG consumer and pheromone only updates after the
            // whole colony has walked), then score the colony in
            // parallel. Selection folds in ant order, so the result is
            // bit-identical to the fully serial colony.
            let trails: Vec<Vec<usize>> = (0..self.ants)
                .map(|_| {
                    let mut choice_idx = Vec::with_capacity(dims);
                    #[allow(clippy::needless_range_loop)]
                    for d in 0..dims {
                        let total: f64 = pheromone[d].iter().sum();
                        let mut pick = rng.gen::<f64>() * total;
                        let mut chosen = pheromone[d].len() - 1;
                        for (k, &ph) in pheromone[d].iter().enumerate() {
                            if pick < ph {
                                chosen = k;
                                break;
                            }
                            pick -= ph;
                        }
                        choice_idx.push(chosen);
                    }
                    choice_idx
                })
                .collect();
            let scored: Vec<(Vec<NodeId>, f64)> = {
                use rayon::prelude::*;
                trails
                    .par_iter()
                    .map(|choice_idx| {
                        let assignment: Vec<NodeId> = choice_idx
                            .iter()
                            .enumerate()
                            .map(|(d, &k)| ctx.candidates[d][k])
                            .collect();
                        let score = objective(&assignment);
                        (assignment, score)
                    })
                    .collect()
            };
            let mut iteration_best: Option<(Vec<usize>, f64)> = None;
            for (choice_idx, (assignment, score)) in trails.into_iter().zip(scored) {
                if iteration_best.as_ref().is_none_or(|(_, s)| score < *s) {
                    iteration_best = Some((choice_idx, score));
                }
                if global_best.as_ref().is_none_or(|(_, s)| score < *s) {
                    global_best = Some((assignment, score));
                }
            }
            // Evaporate, then deposit along the iteration-best trail.
            for row in &mut pheromone {
                for ph in row.iter_mut() {
                    *ph *= 1.0 - self.evaporation;
                    *ph = ph.max(0.01);
                }
            }
            if let Some((trail, score)) = iteration_best {
                let amount = self.deposit / (1.0 + score / 1_000.0);
                for (d, &k) in trail.iter().enumerate() {
                    pheromone[d][k] += amount;
                }
            }
            self.last_trace.push(global_best.as_ref().map(|(_, s)| *s).unwrap_or(f64::INFINITY));
        }
        let (best, _) = global_best.expect("at least one ant ran");
        let (polished, score) = coordinate_polish(ctx, best, &objective);
        if let Some(last) = self.last_trace.last_mut() {
            *last = score.min(*last);
        }
        Ok(Placement::new(polished))
    }
}

/// Exhaustively evaluates every placement (only viable for tiny spaces);
/// the optimality reference for the swarm experiments.
pub fn exhaustive_best(ctx: &PlanContext<'_>, energy_weight: f64) -> Option<(Placement, f64)> {
    let dims = ctx.dag.nodes().len();
    let sizes: Vec<usize> = ctx.candidates.iter().map(Vec::len).collect();
    if sizes.contains(&0) {
        return None;
    }
    let space: usize = sizes.iter().product();
    if space > 2_000_000 {
        return None;
    }
    let mut best: Option<(Vec<NodeId>, f64)> = None;
    let mut counter = vec![0usize; dims];
    loop {
        let assignment: Vec<NodeId> =
            counter.iter().enumerate().map(|(d, &k)| ctx.candidates[d][k]).collect();
        let score = evaluate(ctx, &Placement::new(assignment.clone())).objective(energy_weight);
        if best.as_ref().is_none_or(|(_, s)| score < *s) {
            best = Some((assignment, score));
        }
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == dims {
                let (a, s) = best.expect("space non-empty");
                return Some((Placement::new(a), s));
            }
            counter[d] += 1;
            if counter[d] < sizes[d] {
                break;
            }
            counter[d] = 0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::topology::ContinuumBuilder;
    use myrtus_kb::KnowledgeBase;
    use myrtus_workload::graph::RequestDag;
    use myrtus_workload::scenarios;

    struct Fixture {
        continuum: myrtus_continuum::topology::Continuum,
        app: myrtus_workload::tosca::Application,
        dag: RequestDag,
        kb: KnowledgeBase,
    }

    impl Fixture {
        fn new() -> Self {
            let continuum = ContinuumBuilder::new().build();
            let app = scenarios::telerehab();
            let dag = RequestDag::from_application(&app).expect("valid");
            Fixture { continuum, app, dag, kb: KnowledgeBase::new() }
        }

        fn ctx(&self) -> PlanContext<'_> {
            let all: Vec<NodeId> = self.continuum.all_nodes();
            PlanContext {
                sim: self.continuum.sim(),
                kb: &self.kb,
                app: &self.app,
                dag: &self.dag,
                candidates: vec![all; self.dag.nodes().len()],
                estimator: None,
                obs: myrtus_obs::Obs::disabled(),
            }
        }
    }

    #[test]
    fn pso_converges_monotonically() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut pso = PsoPlacement::new(3).with_iterations(30);
        let placement = pso.place(&ctx).expect("feasible");
        assert!(evaluate(&ctx, &placement).feasible);
        let trace = pso.last_trace();
        assert_eq!(trace.len(), 30);
        assert!(trace.windows(2).all(|w| w[1] <= w[0]), "best-so-far never worsens");
        assert!(trace.last().expect("non-empty") <= &trace[0]);
    }

    #[test]
    fn aco_converges_monotonically() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut aco = AcoPlacement::new(3).with_iterations(30);
        let placement = aco.place(&ctx).expect("feasible");
        assert!(evaluate(&ctx, &placement).feasible);
        let trace = aco.last_trace();
        assert!(trace.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn swarms_match_exhaustive_on_a_tiny_space() {
        let f = Fixture::new();
        let mut ctx = f.ctx();
        // Restrict to 3 candidates per component → 3^5 = 243 placements.
        let pool = vec![f.continuum.edge()[0], f.continuum.fmdcs()[0], f.continuum.cloud()[0]];
        ctx.candidates = vec![pool; f.dag.nodes().len()];
        let (_, best_score) = exhaustive_best(&ctx, 0.0).expect("small space");
        let mut pso = PsoPlacement::new(1).with_iterations(60).with_particles(30);
        let p = pso.place(&ctx).expect("feasible");
        let pso_score = evaluate(&ctx, &p).objective(0.0);
        assert!(pso_score <= best_score * 1.05 + 1.0, "pso {pso_score} vs optimal {best_score}");
    }

    #[test]
    fn swarms_beat_or_match_random_restarts() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut best_random = f64::INFINITY;
        for seed in 0..10 {
            let p = crate::policies::RandomPlacement::new(seed).place(&ctx).expect("ok");
            best_random = best_random.min(evaluate(&ctx, &p).objective(0.0));
        }
        let mut pso = PsoPlacement::new(5).with_iterations(40);
        let p = pso.place(&ctx).expect("ok");
        let pso_score = evaluate(&ctx, &p).objective(0.0);
        assert!(
            pso_score <= best_random * 1.01,
            "pso {pso_score} vs 10-restart random {best_random}"
        );
    }

    #[test]
    fn swarm_is_seed_deterministic() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let a = PsoPlacement::new(9).place(&ctx).expect("ok");
        let b = PsoPlacement::new(9).place(&ctx).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn missing_candidates_propagate_error() {
        let f = Fixture::new();
        let mut ctx = f.ctx();
        ctx.candidates[1] = vec![];
        assert!(PsoPlacement::new(1).place(&ctx).is_err());
        assert!(AcoPlacement::new(1).place(&ctx).is_err());
        assert!(exhaustive_best(&ctx, 0.0).is_none());
    }
}
