//! Evolutionary design of the swarm agents' local rules (the FREVO +
//! DynAA analog).
//!
//! Paper Sect. V: "FREVO generates the local rules for the swarm agents
//! to be used within the MIRTO Cognitive Engine. To explore the effect
//! of changes to the local rules on system's KPIs, a simulator such as
//! DynAA can be used." Here the *local rules* are the runtime manager
//! thresholds ([`ManagerTuning`]) plus the sensing period; the *DynAA
//! role* is played by the orchestration simulator itself: each candidate
//! rule set is evaluated by running a full what-if simulation, and a
//! (μ+λ) evolution strategy searches the rule space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use myrtus_continuum::time::{SimDuration, SimTime};
use myrtus_workload::tosca::Application;

use crate::engine::{run_orchestration, EngineConfig, ManagerTuning, OrchestrationReport};
use crate::policies::GreedyBestFit;

/// One candidate rule set (genome).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Genome {
    /// Manager thresholds.
    pub tuning: ManagerTuning,
    /// MAPE-K sensing period in milliseconds.
    pub monitoring_period_ms: u64,
}

impl Default for Genome {
    fn default() -> Self {
        Genome { tuning: ManagerTuning::default(), monitoring_period_ms: 100 }
    }
}

impl Genome {
    fn clamp(mut self) -> Genome {
        let t = &mut self.tuning;
        t.eco_threshold = t.eco_threshold.clamp(0.01, 0.6);
        t.boost_threshold = t.boost_threshold.clamp(t.eco_threshold + 0.05, 0.99);
        t.overload_threshold = t.overload_threshold.clamp(0.5, 0.99);
        t.queue_threshold = t.queue_threshold.clamp(1, 64);
        self.monitoring_period_ms = self.monitoring_period_ms.clamp(10, 2_000);
        self
    }

    fn mutate(mut self, rng: &mut StdRng, scale: f64) -> Genome {
        let jitter = |rng: &mut StdRng, v: f64| v + rng.gen_range(-0.15..0.15) * scale;
        let t = &mut self.tuning;
        match rng.gen_range(0..5) {
            0 => t.eco_threshold = jitter(rng, t.eco_threshold),
            1 => t.boost_threshold = jitter(rng, t.boost_threshold),
            2 => t.overload_threshold = jitter(rng, t.overload_threshold),
            3 => {
                let delta = rng.gen_range(-3i64..=3);
                t.queue_threshold = (t.queue_threshold as i64 + delta).max(1) as usize;
            }
            _ => {
                let factor = rng.gen_range(0.5..2.0);
                self.monitoring_period_ms = ((self.monitoring_period_ms as f64) * factor) as u64;
            }
        }
        self.clamp()
    }
}

/// Fitness: a weighted KPI mix — mean latency (ms) + a QoS violation
/// penalty + an energy term. Lower is better.
pub fn fitness(report: &OrchestrationReport) -> f64 {
    let lat = report.mean_latency_ms();
    let qos_penalty = (1.0 - report.global_qos()) * 500.0;
    let energy = report.total_energy_j * 0.01;
    let starvation = if report.total_completed() == 0 { 1e6 } else { 0.0 };
    lat + qos_penalty + energy + starvation
}

/// Evolution-strategy configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvolutionConfig {
    /// Parents kept per generation (μ).
    pub parents: usize,
    /// Offspring per generation (λ).
    pub offspring: usize,
    /// Generations to run.
    pub generations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulated horizon per what-if evaluation.
    pub horizon: SimTime,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            parents: 3,
            offspring: 6,
            generations: 5,
            seed: 42,
            horizon: SimTime::from_secs(3),
        }
    }
}

/// Result of one evolutionary search.
#[derive(Debug, Clone)]
pub struct EvolutionResult {
    /// The best rule set found.
    pub best: Genome,
    /// Its fitness.
    pub best_fitness: f64,
    /// Best-so-far fitness after each generation.
    pub history: Vec<f64>,
    /// What-if simulations executed.
    pub evaluations: usize,
}

/// Evaluates one genome with a what-if simulation over `apps`.
pub fn evaluate_genome(genome: Genome, apps: &[Application], horizon: SimTime) -> f64 {
    let cfg = EngineConfig {
        tuning: genome.tuning,
        monitoring_period: SimDuration::from_millis(genome.monitoring_period_ms),
        ..EngineConfig::default()
    };
    match run_orchestration(Box::new(GreedyBestFit::new()), cfg, apps.to_vec(), horizon) {
        Ok(report) => fitness(&report),
        Err(_) => f64::INFINITY,
    }
}

/// Scores a batch of genomes, optionally fanning the (independent)
/// what-if simulations out across the rayon pool; fitness values come
/// back in genome order either way.
fn evaluate_generation(
    genomes: &[Genome],
    apps: &[Application],
    horizon: SimTime,
    parallel: bool,
) -> Vec<f64> {
    if parallel {
        use rayon::prelude::*;
        genomes.par_iter().map(|&g| evaluate_genome(g, apps, horizon)).collect()
    } else {
        genomes.iter().map(|&g| evaluate_genome(g, apps, horizon)).collect()
    }
}

fn evolve_impl(apps: &[Application], cfg: EvolutionConfig, parallel: bool) -> EvolutionResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluations = 0usize;
    // Initial population: the default rules plus mutated variants. All
    // mutation (the only RNG consumer) happens serially before each
    // generation's evaluations fan out, so the evolution trajectory is
    // identical at any thread count.
    let default = Genome::default();
    let mut genomes = vec![default];
    while genomes.len() < cfg.parents.max(1) {
        genomes.push(default.mutate(&mut rng, 2.0));
    }
    let fits = evaluate_generation(&genomes, apps, cfg.horizon, parallel);
    evaluations += genomes.len();
    let mut population: Vec<(Genome, f64)> = genomes.into_iter().zip(fits).collect();
    let mut history = Vec::with_capacity(cfg.generations);
    for _ in 0..cfg.generations {
        let children: Vec<Genome> = (0..cfg.offspring)
            .map(|i| population[i % population.len()].0.mutate(&mut rng, 1.0))
            .collect();
        let fits = evaluate_generation(&children, apps, cfg.horizon, parallel);
        evaluations += children.len();
        population.extend(children.into_iter().zip(fits));
        population.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        population.truncate(cfg.parents.max(1));
        history.push(population[0].1);
    }
    let (best, best_fitness) = population[0];
    EvolutionResult { best, best_fitness, history, evaluations }
}

/// Runs a (μ+λ) evolution strategy over the rule space against the
/// given workload, fanning each generation's what-if simulations out
/// across the rayon pool. Deterministic per seed and bit-identical to
/// [`evolve_serial`].
pub fn evolve(apps: &[Application], cfg: EvolutionConfig) -> EvolutionResult {
    evolve_impl(apps, cfg, true)
}

/// Single-threaded reference twin of [`evolve`]: same algorithm, no
/// fan-out. Kept public so equivalence tests and benchmarks can compare
/// against it.
pub fn evolve_serial(apps: &[Application], cfg: EvolutionConfig) -> EvolutionResult {
    evolve_impl(apps, cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_workload::scenarios;

    fn tiny_cfg() -> EvolutionConfig {
        EvolutionConfig {
            parents: 2,
            offspring: 3,
            generations: 2,
            seed: 1,
            horizon: SimTime::from_secs(2),
        }
    }

    #[test]
    fn clamping_keeps_rules_sane() {
        let wild = Genome {
            tuning: ManagerTuning {
                eco_threshold: 5.0,
                boost_threshold: -1.0,
                overload_threshold: 2.0,
                queue_threshold: 0,
            },
            monitoring_period_ms: 0,
        }
        .clamp();
        assert!(wild.tuning.eco_threshold <= 0.6);
        assert!(wild.tuning.boost_threshold > wild.tuning.eco_threshold);
        assert!(wild.tuning.overload_threshold <= 0.99);
        assert!(wild.tuning.queue_threshold >= 1);
        assert!(wild.monitoring_period_ms >= 10);
    }

    #[test]
    fn evolution_never_worsens_best_so_far() {
        let apps = vec![scenarios::telerehab_with(1)];
        let result = evolve(&apps, tiny_cfg());
        assert!(!result.history.is_empty());
        assert!(result.history.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert!(result.best_fitness.is_finite());
        assert_eq!(result.evaluations, 2 + 2 * 3);
    }

    #[test]
    fn parallel_and_serial_evolution_agree() {
        let apps = vec![scenarios::telerehab_with(1)];
        for seed in [1u64, 7, 42] {
            let cfg = EvolutionConfig { seed, ..tiny_cfg() };
            let par = evolve(&apps, cfg);
            let ser = evolve_serial(&apps, cfg);
            assert_eq!(par.best, ser.best, "seed {seed}");
            assert_eq!(par.best_fitness.to_bits(), ser.best_fitness.to_bits());
            assert_eq!(par.history, ser.history);
            assert_eq!(par.evaluations, ser.evaluations);
        }
    }

    #[test]
    fn evolution_is_seed_deterministic() {
        let apps = vec![scenarios::telerehab_with(1)];
        let a = evolve(&apps, tiny_cfg());
        let b = evolve(&apps, tiny_cfg());
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn best_rules_never_lose_to_defaults() {
        let apps = vec![scenarios::telerehab_with(1)];
        let result = evolve(&apps, tiny_cfg());
        let default_fit = evaluate_genome(Genome::default(), &apps, tiny_cfg().horizon);
        assert!(
            result.best_fitness <= default_fit + 1e-9,
            "μ+λ retains the default if nothing beats it: {} vs {}",
            result.best_fitness,
            default_fit
        );
    }

    #[test]
    fn fitness_punishes_starvation() {
        let report = run_orchestration(
            Box::new(GreedyBestFit::new()),
            EngineConfig::default(),
            vec![scenarios::telerehab_with(1)],
            SimTime::from_millis(1), // nothing completes
        )
        .expect("placeable");
        assert!(fitness(&report) >= 1e6);
    }
}
