//! The MIRTO Manager's four cooperating drivers (paper Fig. 3, Sect. VI):
//! [`wl::WlManager`] (workload placement and reallocation),
//! [`node::NodeManager`] (operating points and accelerator configs),
//! [`network::NetworkManager`] (learned route selection) and
//! [`privsec::PrivacySecurityManager`] (security constraints, protection
//! overheads and trust).

pub mod network;
pub mod node;
pub mod privsec;
pub mod wl;
