//! The MIRTO Manager's cooperating drivers (paper Fig. 3, Sect. VI):
//! [`wl::WlManager`] (workload placement and reallocation),
//! [`node::NodeManager`] (operating points and accelerator configs),
//! [`network::NetworkManager`] (learned route selection),
//! [`privsec::PrivacySecurityManager`] (security constraints, protection
//! overheads and trust), [`elasticity::ElasticityManager`]
//! (MAPE-driven horizontal pod autoscaling) and
//! [`federation::FederationManager`] (cross-region burst offload, the
//! escalation tier above elasticity).

pub mod elasticity;
pub mod federation;
pub mod network;
pub mod node;
pub mod privsec;
pub mod wl;
