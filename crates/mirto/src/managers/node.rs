//! Node Manager.
//!
//! "A Node Manager will put in place directives coming from the WL
//! Manager … and, depending on the optimization goal, it will select the
//! configuration for HW acceleration that is most suitable" (paper
//! Sect. VI). Concretely: per-node DVFS operating-point selection that
//! trades energy for deadline compliance, informed by an online-learned
//! latency model (the per-agent half of the FL story), plus
//! accelerator-region prewarm recommendations.

use std::collections::HashMap;

use myrtus_continuum::engine::{SimCore, SimError};
use myrtus_continuum::ids::NodeId;

use crate::fl::{LatencyModel, LocalLearner};

/// Sliding per-node health counters between two adaptation rounds.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    completed: u32,
    misses: u32,
    sum_work_mc: f64,
    sum_input_kib: f64,
}

/// Per-node operating-point controller.
#[derive(Debug)]
pub struct NodeManager {
    windows: HashMap<NodeId, Window>,
    learners: HashMap<NodeId, LocalLearner>,
    switches: u64,
    /// Utilization below which a node may drop to a slower point.
    pub eco_threshold: f64,
    /// Utilization above which a node boosts if possible.
    pub boost_threshold: f64,
    /// FL-in-the-loop guard: when set, a node only drops to eco if its
    /// learned latency model predicts the *typical recent task* would
    /// still finish within this bound at the eco speed. `None` disables
    /// the guard (threshold-only policy).
    pub eco_latency_guard_us: Option<f64>,
}

impl NodeManager {
    /// Creates a manager with the default thresholds (eco below 0.25,
    /// boost above 0.75 utilization).
    pub fn new() -> Self {
        NodeManager {
            windows: HashMap::new(),
            learners: HashMap::new(),
            switches: 0,
            eco_threshold: 0.25,
            boost_threshold: 0.75,
            eco_latency_guard_us: None,
        }
    }

    /// Operating-point switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Records a completed stage on a node (deadline met or not), also
    /// feeding the node's latency learner.
    pub fn record_completion(
        &mut self,
        node: NodeId,
        work_mc: f64,
        input_bytes: u64,
        speed_mc_per_us: f64,
        latency_us: f64,
        deadline_met: bool,
    ) {
        let w = self.windows.entry(node).or_default();
        w.completed += 1;
        if !deadline_met {
            w.misses += 1;
        }
        w.sum_work_mc += work_mc;
        w.sum_input_kib += input_bytes as f64 / 1024.0;
        self.learners.entry(node).or_default().observe(
            LatencyModel::features(work_mc, input_bytes as f64 / 1024.0, speed_mc_per_us),
            latency_us,
        );
    }

    /// The learner trained from this node's observations (the model an
    /// edge agent would contribute to federation).
    pub fn learner(&self, node: NodeId) -> Option<&LocalLearner> {
        self.learners.get(&node)
    }

    /// One adaptation round: walks every node and switches operating
    /// points — boost on recent deadline misses or high utilization,
    /// eco on sustained idleness. Returns `(node, new_point)` decisions.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the switch itself.
    pub fn adapt(&mut self, sim: &mut SimCore) -> Result<Vec<(NodeId, usize)>, SimError> {
        let mut decisions = Vec::new();
        let nodes: Vec<NodeId> = sim.nodes().iter().map(|n| n.id()).collect();
        for id in nodes {
            let Some(state) = sim.node(id) else { continue };
            if !state.is_up() || state.spec().points().len() < 2 {
                self.windows.remove(&id);
                continue;
            }
            let current = state.point_idx();
            let util = state.utilization();
            let queue = state.queue_len();
            let w = self.windows.remove(&id).unwrap_or_default();

            // Fastest and slowest point indices by frequency scale.
            let points = state.spec().points();
            let fastest = (0..points.len())
                .max_by(|&a, &b| {
                    points
                        .point(a)
                        .freq_scale()
                        .partial_cmp(&points.point(b).freq_scale())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty");
            let slowest = (0..points.len())
                .min_by(|&a, &b| {
                    points
                        .point(a)
                        .freq_scale()
                        .partial_cmp(&points.point(b).freq_scale())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty");

            let target = if w.misses > 0 || util >= self.boost_threshold || queue > 0 {
                fastest
            } else if util <= self.eco_threshold {
                // FL-in-the-loop: before dropping the clock, ask the
                // node's learned latency model whether the typical recent
                // task would still fit within the guard at eco speed.
                let guard_ok = match (self.eco_latency_guard_us, w.completed) {
                    (Some(guard), done) if done > 0 => {
                        let eco_speed =
                            state.spec().speed_mhz() * points.point(slowest).freq_scale() / 1e6;
                        let model = self
                            .learners
                            .get(&id)
                            .filter(|l| l.sample_count() >= 10)
                            .map(|l| l.fit(1e-6));
                        match model {
                            Some(m) => {
                                let x = LatencyModel::features(
                                    w.sum_work_mc / done as f64,
                                    w.sum_input_kib / done as f64,
                                    eco_speed,
                                );
                                m.predict(&x) <= guard
                            }
                            // No usable model yet: stay conservative.
                            None => false,
                        }
                    }
                    _ => true,
                };
                if guard_ok {
                    slowest
                } else {
                    current
                }
            } else {
                current
            };
            if target != current {
                sim.switch_operating_point(id, target)?;
                self.switches += 1;
                decisions.push((id, target));
            }
        }
        Ok(decisions)
    }

    /// Recommends which accelerator configuration each reconfigurable
    /// node should prewarm, based on the most frequent config in recent
    /// demand (`demand` maps config → count).
    pub fn prewarm_recommendation(demand: &HashMap<u32, u64>) -> Option<u32> {
        demand
            .iter()
            .max_by_key(|(cfg, count)| (**count, std::cmp::Reverse(**cfg)))
            .map(|(cfg, _)| *cfg)
    }
}

impl Default for NodeManager {
    fn default() -> Self {
        NodeManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::engine::NullDriver;
    use myrtus_continuum::node::NodeSpec;
    use myrtus_continuum::task::TaskInstance;
    use myrtus_continuum::time::SimTime;

    #[test]
    fn idle_node_drops_to_eco() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n")); // eco = idx 1
        sim.run_until(SimTime::from_secs(1), &mut NullDriver);
        let mut mgr = NodeManager::new();
        let decisions = mgr.adapt(&mut sim).expect("ok");
        assert_eq!(decisions, vec![(n, 1)]);
        assert_eq!(sim.node(n).expect("exists").point_idx(), 1);
        assert_eq!(mgr.switches(), 1);
    }

    #[test]
    fn deadline_misses_force_boost() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n"));
        sim.switch_operating_point(n, 1).expect("eco exists");
        let mut mgr = NodeManager::new();
        mgr.record_completion(n, 10.0, 0, 1.5e-3, 9_000.0, false);
        let decisions = mgr.adapt(&mut sim).expect("ok");
        assert_eq!(decisions, vec![(n, 0)], "misses boost back to nominal");
    }

    #[test]
    fn busy_node_stays_or_boosts() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n"));
        // Saturate all four cores with long tasks.
        for _ in 0..6 {
            let t = TaskInstance::new(sim.fresh_task_id(), 10_000.0);
            sim.submit_local(n, t).expect("submit");
        }
        sim.run_until(SimTime::from_millis(1), &mut NullDriver);
        let mut mgr = NodeManager::new();
        mgr.adapt(&mut sim).expect("ok");
        assert_eq!(sim.node(n).expect("exists").point_idx(), 0, "stays at nominal/fastest");
    }

    #[test]
    fn single_point_nodes_are_skipped() {
        let mut sim = SimCore::new();
        sim.add_node(NodeSpec::preset_cloud_server("dc")); // single point
        sim.run_until(SimTime::from_secs(1), &mut NullDriver);
        let mut mgr = NodeManager::new();
        assert!(mgr.adapt(&mut sim).expect("ok").is_empty());
    }

    #[test]
    fn window_resets_each_round() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n"));
        let mut mgr = NodeManager::new();
        mgr.record_completion(n, 1.0, 0, 1.5e-3, 100.0, false);
        mgr.adapt(&mut sim).expect("ok"); // consumes the miss → stays fast
        assert_eq!(sim.node(n).expect("exists").point_idx(), 0);
        // Next round with no misses and idle → eco.
        let d = mgr.adapt(&mut sim).expect("ok");
        assert_eq!(d, vec![(n, 1)]);
    }

    #[test]
    fn completions_feed_the_learner() {
        let mut mgr = NodeManager::new();
        let n = NodeId::from_raw(0);
        for i in 0..10 {
            mgr.record_completion(n, i as f64, 1024, 1.5e-3, 100.0 * i as f64, true);
        }
        assert_eq!(mgr.learner(n).map(|l| l.sample_count()), Some(10));
        assert!(mgr.learner(NodeId::from_raw(9)).is_none());
    }

    #[test]
    fn eco_guard_blocks_risky_downclocking() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n")); // eco = 0.6x
        sim.run_until(SimTime::from_secs(1), &mut NullDriver);
        let mut mgr = NodeManager::new();
        // Teach the model that recent tasks take ~100 ms at nominal speed
        // (150 Mc at 1.5e-3 mc/µs), so eco would take ~167 ms.
        for _ in 0..20 {
            mgr.record_completion(n, 150.0, 0, 1.5e-3, 100_000.0, true);
        }
        // Guard at 120 ms: eco (≈167 ms predicted) must be blocked.
        mgr.eco_latency_guard_us = Some(120_000.0);
        let d = mgr.adapt(&mut sim).expect("ok");
        assert!(d.is_empty(), "guard blocks the drop: {d:?}");
        assert_eq!(sim.node(n).expect("exists").point_idx(), 0);
        // Generous guard at 300 ms: eco is allowed.
        for _ in 0..20 {
            mgr.record_completion(n, 150.0, 0, 1.5e-3, 100_000.0, true);
        }
        mgr.eco_latency_guard_us = Some(300_000.0);
        let d = mgr.adapt(&mut sim).expect("ok");
        assert_eq!(d, vec![(n, 1)], "generous guard admits eco");
    }

    #[test]
    fn eco_guard_is_conservative_without_a_model() {
        let mut sim = SimCore::new();
        let n = sim.add_node(NodeSpec::preset_edge_multicore("n"));
        sim.run_until(SimTime::from_secs(1), &mut NullDriver);
        let mut mgr = NodeManager::new();
        mgr.eco_latency_guard_us = Some(1e9);
        // Two samples only: below the 10-sample floor → no drop.
        mgr.record_completion(n, 1.0, 0, 1.5e-3, 700.0, true);
        mgr.record_completion(n, 1.0, 0, 1.5e-3, 700.0, true);
        assert!(mgr.adapt(&mut sim).expect("ok").is_empty());
        let _ = n;
    }

    #[test]
    fn prewarm_picks_most_demanded_config() {
        let mut demand = HashMap::new();
        demand.insert(3u32, 10u64);
        demand.insert(7u32, 25u64);
        assert_eq!(NodeManager::prewarm_recommendation(&demand), Some(7));
        assert_eq!(NodeManager::prewarm_recommendation(&HashMap::new()), None);
    }
}
