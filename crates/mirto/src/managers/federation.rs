//! Federation Manager: the escalation tier above horizontal scaling.
//!
//! PR-5 elasticity relieves a hot component with replicas *inside* its
//! region; this manager relieves a hot *region* by bursting work to a
//! peer. It runs once per MAPE round, after the Elasticity Manager:
//!
//! 1. **advertise** — publish the home region's fresh
//!    [`RegionDigest`] into the [`GossipRegistry`] (and the KB's
//!    `/region/{r}/` shard), then run one anti-entropy round;
//! 2. **escalate** — when the home digest shows sustained saturation
//!    (utilization or queue pressure for `escalation_rounds`
//!    consecutive rounds) *and* replicas are exhausted, solicit sealed
//!    bids from every peer's gossiped view and run the deterministic
//!    auction ([`run_auction`]);
//! 3. **burst** — record the winner in the [`AuctionBook`] (at most
//!    one live award per application) and expose the won node as a
//!    routing candidate; the engine's per-task ETA router then sends
//!    each task wherever WAN transfer + Table II protection + backlog
//!    is cheapest, so bursting never forces traffic across the WAN;
//! 4. **release** — close the burst once home utilization falls to
//!    `release_utilization`, then hold a cooldown.
//!
//! Everything is driven by the seeded gossip schedule and the digest
//! contents — no wall clock, no randomness — so federated runs are
//! byte-identical across repeats.

use std::collections::HashMap;

use myrtus_continuum::engine::SimCore;
use myrtus_continuum::federation::{
    bid_from_view, run_auction, AuctionBook, BurstQuery, GossipConfig, GossipRegistry,
    RegionDigest, SealedBid,
};
use myrtus_continuum::ids::{NodeId, RegionId};
use myrtus_continuum::net::{PlanEstimator, Protocol};

use crate::managers::privsec::node_security_level;
use myrtus_security::suite::SecurityLevel;

/// Federation tier configuration ([`None`] in
/// [`crate::engine::EngineConfig`] keeps the tier off and legacy runs
/// byte-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederationConfig {
    /// Gossip fanout and peer-schedule seed.
    pub gossip: GossipConfig,
    /// Home-region mean utilization above which the fleet counts as
    /// pegged. Saturation needs this *and* [`Self::burst_queue`]: a
    /// sloshing run queue on an otherwise idle fleet is rebalancing
    /// work, not overload.
    pub burst_utilization: f64,
    /// Home-region total run-queue depth that, together with a pegged
    /// fleet, counts as saturation. A pegged fleet whose queue has
    /// *risen strictly* for two consecutive rounds saturates at half
    /// this depth — an overload ramp is already lost by the time the
    /// absolute bound trips, while a steady busy peak never shows the
    /// sustained climb.
    pub burst_queue: f64,
    /// Home-region utilization at which an open burst may close.
    pub release_utilization: f64,
    /// Home-region run-queue depth the close also requires (a region
    /// with mostly-idle edge nodes has low *mean* utilization even
    /// while its hot hosts drown, so the queue must drain too).
    pub release_queue: f64,
    /// Consecutive saturated rounds before the auction runs.
    pub escalation_rounds: u32,
    /// Rounds a closed burst blocks re-opening.
    pub cooldown_rounds: u32,
    /// Peer views older than this many gossip rounds cannot win.
    pub staleness_limit: u64,
    /// Minimum advertised peer headroom to consider at all, Mc/s.
    pub min_headroom_mc_per_s: f64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            gossip: GossipConfig::default(),
            burst_utilization: 0.8,
            burst_queue: 8.0,
            release_utilization: 0.5,
            release_queue: 2.0,
            escalation_rounds: 2,
            cooldown_rounds: 3,
            staleness_limit: 8,
            min_headroom_mc_per_s: 1.0,
        }
    }
}

/// One open burst: where an application's overflow tasks may go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstLink {
    /// The awarded peer region.
    pub region: RegionId,
    /// The peer node that executes bursted tasks.
    pub node: NodeId,
}

/// The Federation Manager (see module docs).
#[derive(Debug)]
pub struct FederationManager {
    cfg: FederationConfig,
    /// Per-region sorted node lists (index = region raw id).
    regions: Vec<Vec<NodeId>>,
    /// Per-region WAN ingress node.
    ingress: Vec<NodeId>,
    /// Application home regions.
    home: HashMap<u16, RegionId>,
    registry: GossipRegistry,
    book: AuctionBook,
    bursts: HashMap<u16, BurstLink>,
    /// Rounds each open link has held its current award (lease age);
    /// at every `cooldown_rounds` the link re-auctions and migrates if
    /// a strictly different winner emerges.
    lease_age: HashMap<u16, u32>,
    /// Consecutive saturated rounds, per region.
    pressure: Vec<u32>,
    /// Last round's saturation verdict, per region (computed once in
    /// [`Self::update_pressure`]; `tick` reads it so both always
    /// agree).
    saturated: Vec<bool>,
    /// The two previous rounds' digest queue depths, per region, for
    /// the rising-trend half of the saturation predicate.
    queue_prev: Vec<[f64; 2]>,
    /// Cooldown rounds left, per application.
    cooldown: HashMap<u16, u32>,
    bursts_opened: u64,
    bursts_closed: u64,
    tasks_bursted: u64,
}

impl FederationManager {
    /// Builds the manager over the federation's per-region node sets
    /// and ingress nodes (one entry per region, in region order).
    pub fn new(cfg: FederationConfig, mut regions: Vec<Vec<NodeId>>, ingress: Vec<NodeId>) -> Self {
        for r in &mut regions {
            r.sort_unstable();
        }
        let n = regions.len();
        FederationManager {
            registry: GossipRegistry::new(n, cfg.gossip),
            cfg,
            regions,
            ingress,
            home: HashMap::new(),
            book: AuctionBook::new(),
            bursts: HashMap::new(),
            lease_age: HashMap::new(),
            pressure: vec![0; n],
            saturated: vec![false; n],
            queue_prev: vec![[0.0; 2]; n],
            cooldown: HashMap::new(),
            bursts_opened: 0,
            bursts_closed: 0,
            tasks_bursted: 0,
        }
    }

    /// Whether the tier can act at all (more than one region).
    pub fn active(&self) -> bool {
        self.regions.len() > 1
    }

    /// The manager's configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// The gossip registry (read access for tests and exports).
    pub fn registry(&self) -> &GossipRegistry {
        &self.registry
    }

    /// Pins an application to its home region.
    pub fn assign_home(&mut self, app: u16, region: RegionId) {
        self.home.insert(app, region);
    }

    /// An application's home region.
    pub fn home_of(&self, app: u16) -> Option<RegionId> {
        self.home.get(&app).copied()
    }

    /// The sorted node set of an application's home region — the
    /// engine restricts placement candidates to it so regional apps
    /// never silently leak across the WAN outside a burst.
    pub fn home_nodes(&self, app: u16) -> Option<&[NodeId]> {
        self.home_of(app).map(|r| self.regions[r.index()].as_slice())
    }

    /// The open burst link for an application, if any.
    pub fn burst_target(&self, app: u16) -> Option<BurstLink> {
        self.bursts.get(&app).copied()
    }

    /// Tallies one task routed over an open burst link.
    pub fn note_bursted(&mut self) {
        self.tasks_bursted += 1;
    }

    /// Bursts opened over the run.
    pub fn bursts_opened(&self) -> u64 {
        self.bursts_opened
    }

    /// Bursts closed over the run.
    pub fn bursts_closed(&self) -> u64 {
        self.bursts_closed
    }

    /// Tasks routed across the WAN over the run.
    pub fn tasks_bursted(&self) -> u64 {
        self.tasks_bursted
    }

    /// Snapshots one region's current resource state into its advert:
    /// aggregate headroom and pressure over live nodes plus the node
    /// the region offers as burst target — its highest-security,
    /// least-backlogged live host (ties on node id).
    pub fn digest_of(&self, sim: &SimCore, region: RegionId) -> RegionDigest {
        let now = sim.now();
        let mut d = RegionDigest::empty(region);
        let mut live = 0usize;
        let mut best: Option<(u8, u64, NodeId)> = None;
        for &id in &self.regions[region.index()] {
            let Some(node) = sim.node(id) else { continue };
            if !node.is_up() {
                continue;
            }
            live += 1;
            let util = node.utilization();
            d.utilization += util;
            d.queue_depth += (node.running().len() + node.queue_len()) as f64;
            d.free_mc_per_s += node.spec().capacity_mcps() * (1.0 - util).max(0.0);
            let tier = node_security_level(node.spec().kind()).tier();
            let backlog = node.estimated_backlog(now).as_micros();
            // Highest tier first, then least backlog, then lowest id.
            let key = (tier, backlog, id);
            let better = match best {
                None => true,
                Some((bt, bb, bi)) => {
                    (bt, std::cmp::Reverse(bb), std::cmp::Reverse(bi))
                        < (tier, std::cmp::Reverse(backlog), std::cmp::Reverse(id))
                }
            };
            if better {
                best = Some(key);
                d.best_node = Some(id);
                d.best_speed_mhz = node.spec().speed_mhz();
                d.best_backlog_us = backlog as f64;
                d.best_mem_free_mb = node.mem_free_mb();
                d.security_tier = tier;
            }
        }
        if live > 0 {
            d.utilization /= live as f64;
        }
        d
    }

    /// Regions with no live node this round: they neither advertise
    /// nor gossip (the churn the staleness property test exercises).
    fn down_regions(&self, sim: &SimCore) -> Vec<RegionId> {
        (0..self.regions.len())
            .filter(|&r| !self.regions[r].iter().any(|&id| sim.node(id).is_some_and(|n| n.is_up())))
            .map(|r| RegionId::from_raw(r as u16))
            .collect()
    }

    /// One gossip round: every live region publishes its fresh digest,
    /// then the seeded anti-entropy exchange runs. Returns the digests
    /// published this round (for KB shard ingestion).
    pub fn gossip_round(&mut self, sim: &SimCore) -> Vec<RegionDigest> {
        let down = self.down_regions(sim);
        let mut published = Vec::new();
        for r in 0..self.regions.len() {
            let region = RegionId::from_raw(r as u16);
            if down.contains(&region) {
                continue;
            }
            let digest = self.digest_of(sim, region);
            self.registry.publish(region, digest);
            if let Some(e) = self.registry.view(region, region) {
                published.push(e.digest.clone());
            }
        }
        self.registry.round_with_churn(&down);
        published
    }

    /// Collects one sealed bid per peer region from the home region's
    /// gossiped views. Silent or stale peers yield explicitly
    /// infeasible placeholder bids, so the auction's feasibility
    /// filter — not absence — rejects them.
    pub fn solicit(
        &self,
        sim: &SimCore,
        est: &PlanEstimator,
        home: RegionId,
        query: &BurstQuery,
    ) -> Vec<SealedBid> {
        let src = self.ingress[home.index()];
        let src_mhz = sim.node(src).map(|n| n.spec().speed_mhz()).unwrap_or(1000.0);
        let hs = SecurityLevel::from_tier(query.min_tier).suite().handshake_cost();
        (0..self.regions.len() as u16)
            .filter(|&r| r != home.as_raw())
            .map(|r| {
                let peer = RegionId::from_raw(r);
                // Pressure-aware solicitation: a peer whose own advert
                // already satisfies the burst predicate would escalate
                // itself — raw headroom notwithstanding, it is not a
                // credible host, so its view degrades to the infeasible
                // placeholder and the auction rejects it.
                let entry = self.registry.view(home, peer).filter(|e| {
                    !(e.digest.utilization >= self.cfg.burst_utilization
                        && e.digest.queue_depth >= self.cfg.burst_queue)
                });
                let target =
                    entry.and_then(|e| e.digest.best_node).unwrap_or(self.ingress[peer.index()]);
                let wire = query.input_bytes
                    + SecurityLevel::from_tier(query.min_tier).suite().record_overhead_bytes();
                let transfer_us = est.transfer_us(src, target, wire, Protocol::Mqtt);
                let dst_mhz =
                    entry.map(|e| e.digest.best_speed_mhz).filter(|&s| s > 0.0).unwrap_or(1000.0);
                let handshake_us =
                    hs.initiator_cycles as f64 / src_mhz + hs.responder_cycles as f64 / dst_mhz;
                bid_from_view(
                    peer,
                    entry,
                    self.registry.staleness(home, peer),
                    self.cfg.staleness_limit,
                    transfer_us,
                    handshake_us,
                    |d: &RegionDigest| query.work_mc * 1e6 / d.best_speed_mhz.max(1.0),
                )
            })
            .collect()
    }

    /// Escalation step for one application after this round's gossip:
    /// updates the home region's pressure streak from its *own fresh
    /// digest* and decides whether to open or close a burst. Returns
    /// the action taken, if any.
    pub fn tick(
        &mut self,
        sim: &SimCore,
        est: &PlanEstimator,
        app: u16,
        query: &BurstQuery,
        replicas_exhausted: bool,
    ) -> Option<FederationAction> {
        let home = self.home_of(app)?;
        let own = self.registry.view(home, home)?.digest.clone();
        if let Some(link) = self.bursts.get(&app).copied() {
            if own.utilization <= self.cfg.release_utilization
                && own.queue_depth <= self.cfg.release_queue
            {
                self.bursts.remove(&app);
                self.lease_age.remove(&app);
                self.book.release(app as u64);
                self.cooldown.insert(app, self.cfg.cooldown_rounds);
                self.bursts_closed += 1;
                return Some(FederationAction::Close(link));
            }
            // Lease renewal: the award was priced from the gossip view
            // at open time, but the winner node's own load drifts (its
            // region's diurnal peak arrives, other tenants land on it).
            // Every `cooldown_rounds` the link re-auctions against the
            // current views; a different winner migrates the link. The
            // current node stays biddable (its region may re-advertise
            // it), other live leases remain excluded.
            let age = self.lease_age.entry(app).or_insert(0);
            *age += 1;
            if *age < self.cfg.cooldown_rounds.max(1) {
                return None;
            }
            *age = 0;
            let mut bids = self.solicit(sim, est, home, query);
            let leased: Vec<NodeId> =
                self.bursts.values().map(|l| l.node).filter(|&n| n != link.node).collect();
            bids.retain(|b| b.node.is_none_or(|n| !leased.contains(&n)));
            let winner = run_auction(query, &bids)?;
            let node = winner.node?;
            if node == link.node {
                return None;
            }
            let next = BurstLink { region: winner.region, node };
            self.book.release(app as u64);
            self.book.award(app as u64, winner.region).ok()?;
            self.bursts.insert(app, next);
            return Some(FederationAction::Migrate { from: link, to: next });
        }
        if let Some(c) = self.cooldown.get_mut(&app) {
            if *c > 0 {
                *c -= 1;
                return None;
            }
        }
        let saturated = self.saturated[home.index()];
        // Replicas first — but with a timeout. If the autoscaler's
        // fleet never stabilises at max (noisy per-host signals flap it
        // up and down) while the region stays saturated for twice the
        // escalation window, the grace period is over and the region
        // bursts anyway.
        let exhausted = replicas_exhausted
            || self.pressure[home.index()] >= 2 * self.cfg.escalation_rounds.max(1);
        if self.pressure[home.index()] < self.cfg.escalation_rounds || !saturated || !exhausted {
            return None;
        }
        let mut bids = self.solicit(sim, est, home, query);
        // Award exclusivity: a node already serving a live burst link
        // is leased — regions advertise a single best node, so without
        // this every auction in the federation converges on the same
        // few targets and later winners drown earlier ones. A bid
        // whose advertised node is leased is infeasible this round (no
        // fallback: the lease is hard).
        let leased: Vec<NodeId> = self.bursts.values().map(|l| l.node).collect();
        bids.retain(|b| b.node.is_none_or(|n| !leased.contains(&n)));
        // Burst anti-affinity: concurrent escapes from one home region
        // spread across distinct peers, so two co-located tenants never
        // pile onto the same winner's best node and drown it together.
        // When every peer already hosts a sibling burst, fall back to
        // the full bid set rather than refusing to escalate.
        let occupied: Vec<RegionId> = self
            .bursts
            .iter()
            .filter(|(a, _)| self.home.get(a) == Some(&home))
            .map(|(_, l)| l.region)
            .collect();
        let spread: Vec<SealedBid> =
            bids.iter().filter(|b| !occupied.contains(&b.region)).cloned().collect();
        if run_auction(query, &spread).is_some() {
            bids = spread;
        }
        let winner = run_auction(query, &bids)?;
        let node = winner.node?;
        let link = BurstLink { region: winner.region, node };
        // At most one live award per application: the book enforces it
        // (and the mc model interleaves exactly this pair of calls).
        self.book.award(app as u64, winner.region).ok()?;
        self.bursts.insert(app, link);
        self.lease_age.insert(app, 0);
        self.bursts_opened += 1;
        Some(FederationAction::Open(link))
    }

    /// Updates every region's pressure streak from its own fresh
    /// digest. Called once per round, *before* per-app ticks, so all
    /// apps homed in a region see the same streak.
    pub fn update_pressure(&mut self) {
        for r in 0..self.regions.len() {
            let region = RegionId::from_raw(r as u16);
            let (util, queue) = self
                .registry
                .view(region, region)
                .map(|e| (e.digest.utilization, e.digest.queue_depth))
                .unwrap_or((0.0, 0.0));
            // Saturation needs a pegged fleet plus queue pressure: the
            // absolute bound, or — so an overload *ramp* escalates
            // before the backlog is already fatal — half the bound
            // with the queue strictly rising for two rounds. A steady
            // busy peak oscillates and never sustains the climb.
            let [oldest, prev] = self.queue_prev[r];
            let rising = queue > prev && prev > oldest;
            let saturated = util >= self.cfg.burst_utilization
                && (queue >= self.cfg.burst_queue
                    || (rising && queue >= 0.5 * self.cfg.burst_queue));
            self.queue_prev[r] = [prev, queue];
            self.saturated[r] = saturated;
            if saturated {
                self.pressure[r] = self.pressure[r].saturating_add(1);
            } else {
                self.pressure[r] = 0;
            }
        }
    }
}

/// What [`FederationManager::tick`] did for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationAction {
    /// A burst link was opened.
    Open(BurstLink),
    /// The open burst link was closed.
    Close(BurstLink),
    /// An open link was re-auctioned onto a better target at lease
    /// renewal; the award moved atomically (release + re-award).
    Migrate {
        /// The link as it was.
        from: BurstLink,
        /// The link as re-awarded.
        to: BurstLink,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::engine::NullDriver;
    use myrtus_continuum::federation::{FederatedContinuum, FederatedContinuumBuilder};
    use myrtus_continuum::net::RouteCache;
    use myrtus_continuum::task::TaskInstance;
    use myrtus_continuum::time::SimDuration;

    fn manager(fed: &FederatedContinuum) -> FederationManager {
        let regions: Vec<Vec<NodeId>> = fed.regions().iter().map(|r| r.all_nodes()).collect();
        let ingress: Vec<NodeId> = fed.regions().iter().map(|r| r.ingress()).collect();
        FederationManager::new(FederationConfig::default(), regions, ingress)
    }

    /// Drains submission events so queued work shows up in node state.
    fn settle(fed: &mut FederatedContinuum) {
        let until = fed.continuum().sim().now() + SimDuration::from_millis(1);
        fed.sim_mut().run_until(until, &mut NullDriver);
    }

    #[test]
    fn digest_reflects_live_load() {
        let mut fed = FederatedContinuumBuilder::new().regions(2).build();
        let mgr = manager(&fed);
        let idle = mgr.digest_of(fed.continuum().sim(), RegionId::from_raw(0));
        assert!(idle.free_mc_per_s > 0.0);
        assert!(idle.best_node.is_some(), "an idle region advertises a target");
        assert_eq!(idle.security_tier, 2, "fmdc/cloud hosts advertise High");
        // Load region 0 and the digest shows it.
        let busy_node = fed.regions()[0].cloud[0];
        for _ in 0..32 {
            let t = {
                let sim = fed.sim_mut();
                TaskInstance::new(sim.fresh_task_id(), 50_000.0)
            };
            fed.sim_mut().submit_local(busy_node, t).expect("submit");
        }
        settle(&mut fed);
        let busy = mgr.digest_of(fed.continuum().sim(), RegionId::from_raw(0));
        assert!(busy.queue_depth > idle.queue_depth);
    }

    #[test]
    fn tick_opens_after_sustained_pressure_and_closes_on_relief() {
        let mut fed = FederatedContinuumBuilder::new().regions(3).build();
        let mut mgr = manager(&fed);
        mgr.assign_home(0, RegionId::from_raw(0));
        let query = BurstQuery {
            work_mc: 5.0,
            input_bytes: 4096,
            mem_mb: 64,
            min_tier: 0,
            min_headroom_mc_per_s: 1.0,
        };
        // Saturate region 0.
        let busy_nodes: Vec<NodeId> = fed.regions()[0].all_nodes();
        for &n in &busy_nodes {
            for _ in 0..16 {
                let t = {
                    let sim = fed.sim_mut();
                    TaskInstance::new(sim.fresh_task_id(), 1_000_000.0)
                };
                let _ = fed.sim_mut().submit_local(n, t);
            }
        }
        settle(&mut fed);
        let cache = RouteCache::new();
        let mut opened = None;
        for _ in 0..6 {
            mgr.gossip_round(fed.continuum().sim());
            mgr.update_pressure();
            let sim = fed.continuum().sim();
            let est = PlanEstimator::new(sim.network(), sim.now(), &cache);
            if let Some(a) = mgr.tick(sim, &est, 0, &query, true) {
                opened = Some(a);
                break;
            }
        }
        let Some(FederationAction::Open(link)) = opened else {
            panic!("sustained saturation must open a burst: {opened:?}");
        };
        assert_ne!(link.region, RegionId::from_raw(0), "burst goes to a peer");
        assert_eq!(mgr.burst_target(0), Some(link));
        assert_eq!(mgr.bursts_opened(), 1);
        // Relief: drain region 0 by running the sim forward far enough.
        // Simpler: fake it by republishing an idle digest (fresh build).
        let idle = FederatedContinuumBuilder::new().regions(3).build();
        let calm = mgr.digest_of(idle.continuum().sim(), RegionId::from_raw(0));
        mgr.registry_mut_for_tests().publish(RegionId::from_raw(0), calm);
        let sim = fed.continuum().sim();
        let est = PlanEstimator::new(sim.network(), sim.now(), &cache);
        let closed = mgr.tick(sim, &est, 0, &query, true);
        assert!(matches!(closed, Some(FederationAction::Close(_))), "{closed:?}");
        assert_eq!(mgr.burst_target(0), None);
        // Cooldown blocks an immediate re-open.
        mgr.update_pressure();
        assert_eq!(mgr.tick(sim, &est, 0, &query, true), None, "cooldown holds");
    }

    #[test]
    fn replicas_gate_the_escalation() {
        let mut fed = FederatedContinuumBuilder::new().regions(2).build();
        let mut mgr = manager(&fed);
        mgr.assign_home(0, RegionId::from_raw(0));
        for &n in &fed.regions()[0].all_nodes() {
            for _ in 0..16 {
                let t = {
                    let sim = fed.sim_mut();
                    TaskInstance::new(sim.fresh_task_id(), 1_000_000.0)
                };
                let _ = fed.sim_mut().submit_local(n, t);
            }
        }
        settle(&mut fed);
        let query = BurstQuery {
            work_mc: 5.0,
            input_bytes: 0,
            mem_mb: 0,
            min_tier: 0,
            min_headroom_mc_per_s: 1.0,
        };
        let cache = RouteCache::new();
        // With replicas not exhausted the manager holds off for the
        // grace window (2 × escalation_rounds of sustained pressure),
        // then escalates by timeout anyway.
        let mut opened_at = None;
        for round in 1..=6u32 {
            mgr.gossip_round(fed.continuum().sim());
            mgr.update_pressure();
            let sim = fed.continuum().sim();
            let est = PlanEstimator::new(sim.network(), sim.now(), &cache);
            if let Some(FederationAction::Open(_)) = mgr.tick(sim, &est, 0, &query, false) {
                opened_at = Some(round);
                break;
            }
        }
        assert_eq!(
            opened_at,
            Some(2 * mgr.cfg.escalation_rounds),
            "replicas not exhausted: scale first, burst only after the timeout"
        );
    }

    impl FederationManager {
        fn registry_mut_for_tests(&mut self) -> &mut GossipRegistry {
            &mut self.registry
        }
    }
}
