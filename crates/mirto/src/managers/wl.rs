//! Workload (WL) Manager.
//!
//! "To establish deployment or reallocation directives, the WL Manager
//! will gather information related to i) the state of resource
//! utilization from the Resource Registry, ii) historical data and/or AI
//! models from the KB, iii) application orchestration costs from a
//! Network Manager, and iv) trust and security constraints from the
//! Privacy and Security Manager" (paper Sect. VI). This module owns the
//! per-application placements: deployment-time planning through a
//! pluggable [`PlacementPolicy`], and runtime reallocation away from
//! failed or overloaded nodes.

use std::collections::HashMap;

use myrtus_continuum::engine::SimCore;
use myrtus_continuum::ids::NodeId;

use crate::placement::{evaluate, Placement, PlanContext};
use crate::policies::{PlaceError, PlacementPolicy};

/// A reallocation decision: component of an app moved to a new node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reallocation {
    /// Application id.
    pub app: u16,
    /// Component index.
    pub component: usize,
    /// Previous host.
    pub from: NodeId,
    /// New host.
    pub to: NodeId,
}

/// The WL Manager.
pub struct WlManager {
    policy: Box<dyn PlacementPolicy + Send>,
    placements: HashMap<u16, Placement>,
    reallocations: Vec<Reallocation>,
    /// Utilization above which a node is considered overloaded.
    pub overload_threshold: f64,
    /// Queue length above which a node is considered overloaded.
    pub queue_threshold: usize,
}

impl std::fmt::Debug for WlManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WlManager")
            .field("policy", &self.policy.name())
            .field("placements", &self.placements.len())
            .field("reallocations", &self.reallocations.len())
            .finish()
    }
}

impl WlManager {
    /// Creates a WL Manager around a placement policy.
    pub fn new(policy: Box<dyn PlacementPolicy + Send>) -> Self {
        WlManager {
            policy,
            placements: HashMap::new(),
            reallocations: Vec::new(),
            overload_threshold: 0.9,
            queue_threshold: 4,
        }
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Whether the wrapped policy adapts at runtime.
    pub fn adaptive(&self) -> bool {
        self.policy.adaptive()
    }

    /// Plans (and stores) the placement of application `app_id`.
    ///
    /// # Errors
    ///
    /// Propagates [`PlaceError`] when a component has no candidates.
    pub fn deploy(&mut self, app_id: u16, ctx: &PlanContext<'_>) -> Result<Placement, PlaceError> {
        let placement = self.policy.place(ctx)?;
        self.placements.insert(app_id, placement.clone());
        Ok(placement)
    }

    /// The stored placement of an application.
    pub fn placement(&self, app_id: u16) -> Option<&Placement> {
        self.placements.get(&app_id)
    }

    /// All reallocations performed so far.
    pub fn reallocations(&self) -> &[Reallocation] {
        &self.reallocations
    }

    /// Runtime reallocation round for one application: any component on a
    /// down or overloaded node is greedily moved to the candidate that
    /// minimizes the plan-time objective. Returns the moves performed.
    pub fn reallocate(&mut self, app_id: u16, ctx: &PlanContext<'_>) -> Vec<Reallocation> {
        let Some(placement) = self.placements.get_mut(&app_id) else {
            return Vec::new();
        };
        let mut moves = Vec::new();
        for i in 0..placement.len() {
            let host = placement.node_of(i);
            let unhealthy = match ctx.sim.node(host) {
                None => true,
                Some(st) => {
                    !st.is_up()
                        || (st.utilization() >= self.overload_threshold
                            && st.queue_len() >= self.queue_threshold)
                }
            };
            let allowed = ctx.candidates.get(i).map(|c| c.contains(&host)).unwrap_or(false);
            if !unhealthy && allowed {
                continue;
            }
            // Greedy: best healthy candidate under the current partial
            // placement.
            let mut best: Option<(NodeId, f64)> = None;
            for cand in ctx.candidates.get(i).into_iter().flatten().copied() {
                if cand == host {
                    continue;
                }
                let healthy = ctx
                    .sim
                    .node(cand)
                    .map(|st| {
                        st.is_up()
                            && !(st.utilization() >= self.overload_threshold
                                && st.queue_len() >= self.queue_threshold)
                    })
                    .unwrap_or(false);
                if !healthy {
                    continue;
                }
                placement.reassign(i, cand);
                let score = evaluate(ctx, placement).objective(0.0);
                if best.as_ref().is_none_or(|(_, s)| score < *s) {
                    best = Some((cand, score));
                }
            }
            match best {
                Some((to, _)) => {
                    placement.reassign(i, to);
                    let m = Reallocation { app: app_id, component: i, from: host, to };
                    moves.push(m.clone());
                    self.reallocations.push(m);
                }
                None => {
                    // Nowhere to go: keep the old host and hope for
                    // recovery.
                    placement.reassign(i, host);
                }
            }
        }
        moves
    }
}

/// Checks node health against the manager thresholds — exposed for the
/// engine's monitoring loop.
pub fn node_overloaded(sim: &SimCore, node: NodeId, util_th: f64, queue_th: usize) -> bool {
    sim.node(node)
        .map(|st| !st.is_up() || (st.utilization() >= util_th && st.queue_len() >= queue_th))
        .unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::GreedyBestFit;
    use myrtus_continuum::engine::NullDriver;
    use myrtus_continuum::task::TaskInstance;
    use myrtus_continuum::time::SimTime;
    use myrtus_continuum::topology::ContinuumBuilder;
    use myrtus_kb::KnowledgeBase;
    use myrtus_workload::graph::RequestDag;
    use myrtus_workload::scenarios;

    struct Fixture {
        continuum: myrtus_continuum::topology::Continuum,
        app: myrtus_workload::tosca::Application,
        dag: RequestDag,
        kb: KnowledgeBase,
    }

    impl Fixture {
        fn new() -> Self {
            let continuum = ContinuumBuilder::new().build();
            let app = scenarios::telerehab();
            let dag = RequestDag::from_application(&app).expect("valid");
            Fixture { continuum, app, dag, kb: KnowledgeBase::new() }
        }

        fn ctx(&self) -> PlanContext<'_> {
            let all: Vec<NodeId> = self.continuum.all_nodes();
            PlanContext {
                sim: self.continuum.sim(),
                kb: &self.kb,
                app: &self.app,
                dag: &self.dag,
                candidates: vec![all; self.dag.nodes().len()],
                estimator: None,
                obs: myrtus_obs::Obs::disabled(),
            }
        }
    }

    #[test]
    fn deploy_stores_placement() {
        let f = Fixture::new();
        let mut mgr = WlManager::new(Box::new(GreedyBestFit::new()));
        let p = mgr.deploy(7, &f.ctx()).expect("places");
        assert_eq!(mgr.placement(7), Some(&p));
        assert!(mgr.placement(8).is_none());
        assert_eq!(mgr.policy_name(), "greedy-best-fit");
    }

    #[test]
    fn reallocates_off_a_dead_node() {
        let mut f = Fixture::new();
        let mut mgr = WlManager::new(Box::new(GreedyBestFit::new()));
        let p = mgr.deploy(1, &f.ctx()).expect("places");
        let victim = p.node_of(2);
        f.continuum.sim_mut().schedule_node_down(victim, SimTime::ZERO);
        f.continuum.sim_mut().run_until(SimTime::from_millis(1), &mut NullDriver);
        let moves = mgr.reallocate(1, &f.ctx());
        assert!(!moves.is_empty(), "components leave the dead node");
        for m in &moves {
            assert_eq!(m.from, victim);
            assert_ne!(m.to, victim);
        }
        let after = mgr.placement(1).expect("exists");
        assert!(after.components_on(victim).is_empty());
    }

    #[test]
    fn healthy_placement_is_left_alone() {
        let f = Fixture::new();
        let mut mgr = WlManager::new(Box::new(GreedyBestFit::new()));
        mgr.deploy(1, &f.ctx()).expect("places");
        assert!(mgr.reallocate(1, &f.ctx()).is_empty());
        assert!(mgr.reallocations().is_empty());
    }

    #[test]
    fn overloaded_node_sheds_components() {
        let mut f = Fixture::new();
        let mut mgr = WlManager::new(Box::new(GreedyBestFit::new()));
        let p = mgr.deploy(1, &f.ctx()).expect("places");
        let hot = p.node_of(2);
        // Saturate the host: all cores busy plus a deep queue.
        {
            let sim = f.continuum.sim_mut();
            for _ in 0..64 {
                let t = TaskInstance::new(sim.fresh_task_id(), 1_000_000.0);
                sim.submit_local(hot, t).expect("submit");
            }
            sim.run_until(SimTime::from_millis(1), &mut NullDriver);
        }
        let moves = mgr.reallocate(1, &f.ctx());
        assert!(
            moves.iter().any(|m| m.from == hot),
            "overloaded node sheds at least one component"
        );
    }

    #[test]
    fn reallocate_unknown_app_is_noop() {
        let f = Fixture::new();
        let mut mgr = WlManager::new(Box::new(GreedyBestFit::new()));
        assert!(mgr.reallocate(42, &f.ctx()).is_empty());
    }

    #[test]
    fn overload_helper_matches_thresholds() {
        let f = Fixture::new();
        let n = f.continuum.edge()[0];
        assert!(!node_overloaded(f.continuum.sim(), n, 0.9, 4));
        assert!(node_overloaded(f.continuum.sim(), NodeId::from_raw(999), 0.9, 4));
    }
}
