//! Network Manager.
//!
//! Optimal network usage — "reducing network congestion, while
//! guaranteeing adequate computing power" — is one of MIRTO's four
//! optimization drivers. This manager learns, per traffic flow, whether
//! to ship data over the primary (shortest) route or an alternate
//! detour, with a tabular Q-learner whose state is the congestion bucket
//! of the primary route (fed from KB telemetry).

use std::collections::HashMap;

use myrtus_continuum::engine::SimCore;
use myrtus_continuum::ids::{LinkId, NodeId};
use myrtus_continuum::time::SimDuration;

use crate::rl::{congestion_state, QLearner, RouteChoice};

const CONGESTION_BUCKETS: usize = 4;

/// Per-flow route decision state.
#[derive(Debug)]
struct Flow {
    learner: QLearner,
    last: Option<(usize, usize)>, // (state, action) awaiting reward
}

/// The Network Manager.
#[derive(Debug, Default)]
pub struct NetworkManager {
    flows: HashMap<(NodeId, NodeId), Flow>,
    decisions: u64,
    detours: u64,
}

impl NetworkManager {
    /// Creates a manager.
    pub fn new() -> Self {
        NetworkManager::default()
    }

    /// Total routing decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that took the alternate route.
    pub fn detours(&self) -> u64 {
        self.detours
    }

    fn primary_congestion(sim: &SimCore, path: &[LinkId]) -> f64 {
        // Head-of-path queueing: how far in the future the first link is
        // already booked, normalized to a 10 ms horizon.
        let now = sim.now();
        path.first()
            .and_then(|l| sim.network().link_state(*l))
            .map(|st| {
                let backlog = st.next_free().saturating_since(now);
                (backlog.as_micros() as f64 / 10_000.0).min(1.0)
            })
            .unwrap_or(0.0)
    }

    /// Chooses a route for a flow; returns the link path, or `None` when
    /// the destination is unreachable or local.
    pub fn route(&mut self, sim: &SimCore, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let primary = sim.network().route(src, dst).ok()?;
        let alternate = sim.network().alternate_route(src, dst);
        let state = congestion_state(Self::primary_congestion(sim, &primary), CONGESTION_BUCKETS);
        let flow = self.flows.entry((src, dst)).or_insert_with(|| Flow {
            learner: QLearner::new(CONGESTION_BUCKETS, 2, 0.25, 0.0, 0.3, {
                // Deterministic per-flow seed.
                (src.as_raw() as u64) << 32 | dst.as_raw() as u64
            }),
            last: None,
        });
        let action = match alternate {
            Some(_) => flow.learner.choose(state),
            None => RouteChoice::Primary.index(),
        };
        flow.last = Some((state, action));
        self.decisions += 1;
        if action == RouteChoice::Alternate.index() {
            self.detours += 1;
            alternate
        } else {
            Some(primary)
        }
    }

    /// Rewards the last decision of a flow with the observed delivery
    /// latency (lower is better). No-op if no decision is pending.
    pub fn reward(&mut self, src: NodeId, dst: NodeId, observed: SimDuration) {
        if let Some(flow) = self.flows.get_mut(&(src, dst)) {
            if let Some((state, action)) = flow.last.take() {
                // Reward: negative latency in ms, so faster = better.
                let r = -(observed.as_micros() as f64) / 1_000.0;
                flow.learner.update(state, action, r, state);
            }
        }
    }

    /// Greedy (post-training) choice the flow would make in the given
    /// congestion bucket — for inspection in experiments.
    pub fn greedy_choice(&self, src: NodeId, dst: NodeId, bucket: usize) -> Option<RouteChoice> {
        self.flows.get(&(src, dst)).map(|f| RouteChoice::from_index(f.learner.greedy(bucket)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::net::Protocol;
    use myrtus_continuum::node::NodeSpec;
    use myrtus_continuum::time::SimTime;

    /// Triangle: fast two-hop path 0→1→2 and a slow direct link 0→2.
    fn triangle() -> (SimCore, NodeId, NodeId, NodeId) {
        let mut sim = SimCore::new();
        let a = sim.add_node(NodeSpec::preset_fog_gateway("a"));
        let b = sim.add_node(NodeSpec::preset_fog_gateway("b"));
        let c = sim.add_node(NodeSpec::preset_fog_gateway("c"));
        sim.network_mut().add_duplex(a, b, SimDuration::from_millis(1), 100.0);
        sim.network_mut().add_duplex(b, c, SimDuration::from_millis(1), 100.0);
        sim.network_mut().add_duplex(a, c, SimDuration::from_millis(10), 100.0);
        (sim, a, b, c)
    }

    #[test]
    fn routes_local_and_unreachable() {
        let (sim, a, _, _) = triangle();
        let mut mgr = NetworkManager::new();
        assert_eq!(mgr.route(&sim, a, a), Some(vec![]));
        assert_eq!(mgr.route(&sim, a, NodeId::from_raw(99)), None);
    }

    #[test]
    fn uncongested_flows_converge_to_primary() {
        let (sim, a, _, c) = triangle();
        let mut mgr = NetworkManager::new();
        for _ in 0..300 {
            let path = mgr.route(&sim, a, c).expect("reachable");
            // Simulated observation: primary (2 hops, 2ms) vs detour (10ms).
            let latency = if path.len() == 2 {
                SimDuration::from_millis(2)
            } else {
                SimDuration::from_millis(10)
            };
            mgr.reward(a, c, latency);
        }
        assert_eq!(mgr.greedy_choice(a, c, 0), Some(RouteChoice::Primary));
        assert!(mgr.decisions() >= 300);
    }

    #[test]
    fn congestion_flips_the_choice_when_detour_pays() {
        let (mut sim, a, _, c) = triangle();
        // Saturate the primary first link so its queue is long.
        let primary = sim.network().route(a, c).expect("reachable");
        let first_link = primary[0];
        for _ in 0..200 {
            let spec_path = vec![first_link];
            let now = sim.now();
            sim.network_mut().transfer(now, &spec_path, 1_000_000, Protocol::Mqtt);
        }
        let mut mgr = NetworkManager::new();
        // Under congestion the detour is observed faster.
        for _ in 0..400 {
            let path = mgr.route(&sim, a, c).expect("reachable");
            let latency = if path.len() == 2 {
                SimDuration::from_millis(50) // queued primary
            } else {
                SimDuration::from_millis(10)
            };
            mgr.reward(a, c, latency);
        }
        let bucket = congestion_state(1.0, 4);
        assert_eq!(mgr.greedy_choice(a, c, bucket), Some(RouteChoice::Alternate));
        assert!(mgr.detours() > 0);
        let _ = SimTime::ZERO;
    }

    #[test]
    fn flows_learn_independently() {
        let (sim, a, b, c) = triangle();
        let mut mgr = NetworkManager::new();
        mgr.route(&sim, a, c);
        mgr.reward(a, c, SimDuration::from_millis(1));
        mgr.route(&sim, b, c);
        assert!(mgr.greedy_choice(a, c, 0).is_some());
        assert!(mgr.greedy_choice(c, a, 0).is_none(), "reverse flow untouched");
    }

    #[test]
    fn reward_without_decision_is_benign() {
        let (sim, a, _, c) = triangle();
        let mut mgr = NetworkManager::new();
        mgr.reward(a, c, SimDuration::from_millis(1));
        assert_eq!(mgr.decisions(), 0);
        let _ = sim;
    }
}
