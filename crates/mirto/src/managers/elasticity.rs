//! The Elasticity Manager: MAPE-driven horizontal pod autoscaling.
//!
//! Every monitoring round the engine feeds the manager one
//! [`StageSignals`] snapshot per deployed component, scraped from the
//! TimeSeries store (host utilization, host run-queue depth, windowed
//! deadline-miss rate). The manager answers with at most one
//! [`ScaleAction`] per component, which the engine executes through the
//! [`crate::deployer::DeploymentProxy`] replica API.
//!
//! Two mechanisms keep the controller from flapping:
//!
//! * **Hysteresis** — the scale-up utilization threshold sits strictly
//!   above the scale-down threshold, so no single utilization value can
//!   trigger both directions;
//! * **Cooldown** — after any action a component is frozen for
//!   [`ElasticityConfig::cooldown_rounds`] monitoring rounds (clamped
//!   to ≥ 1), so a scale-up is never followed by a scale-down (or vice
//!   versa) within the cooldown window. The autoscaler property tests
//!   assert this over arbitrary signal sequences.
//!
//! The decision function is pure with respect to the signals — scraped
//! series in, action out — so two runs over the same telemetry make
//! identical scaling decisions.

use std::collections::HashMap;

/// Autoscaling thresholds and pacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticityConfig {
    /// Scale up when the hosting node's utilization reaches this
    /// (must sit above `scale_down_utilization` for hysteresis).
    pub scale_up_utilization: f64,
    /// Scale down only when utilization has fallen to this or below.
    pub scale_down_utilization: f64,
    /// Scale up when the hosting node's run-queue depth (running +
    /// queued) reaches this, regardless of utilization.
    pub scale_up_queue: f64,
    /// Scale up when the windowed deadline-miss rate reaches this.
    pub scale_up_miss_rate: f64,
    /// Scale down only when the run-queue depth is at or below this.
    pub scale_down_queue: f64,
    /// Monitoring rounds a component is frozen after any action
    /// (clamped to ≥ 1 so actions can never flap round-to-round).
    pub cooldown_rounds: u32,
    /// Replica ceiling per component (excluding the primary pod).
    pub max_replicas: u32,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            scale_up_utilization: 0.8,
            scale_down_utilization: 0.25,
            scale_up_queue: 8.0,
            scale_up_miss_rate: 0.2,
            scale_down_queue: 1.0,
            cooldown_rounds: 3,
            max_replicas: 3,
        }
    }
}

/// One scaling decision for a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Bind one more replica.
    ScaleUp,
    /// Evict the newest replica.
    ScaleDown,
}

/// Telemetry snapshot for one component, scraped from the TimeSeries
/// store at the current monitoring round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSignals {
    /// Latest `node_utilization` sample of the hosting node.
    pub utilization: f64,
    /// Latest `run_queue_depth` sample of the hosting node.
    pub queue_depth: f64,
    /// Latest windowed `deadline_miss_rate` sample (engine-global).
    pub miss_rate: f64,
    /// Current replica count of the component (excluding the primary).
    pub replicas: u32,
}

/// Per-component autoscaler with hysteresis and cooldown state.
#[derive(Debug)]
pub struct ElasticityManager {
    cfg: ElasticityConfig,
    /// Rounds left before a component may act again.
    cooldown: HashMap<(u16, usize), u32>,
}

impl ElasticityManager {
    /// A manager with the given thresholds.
    pub fn new(cfg: ElasticityConfig) -> Self {
        ElasticityManager { cfg, cooldown: HashMap::new() }
    }

    /// The installed configuration.
    pub fn config(&self) -> ElasticityConfig {
        self.cfg
    }

    /// Decides the action for one component this round. Call exactly
    /// once per component per monitoring round: the call also ticks the
    /// component's cooldown.
    pub fn decide(&mut self, key: (u16, usize), s: &StageSignals) -> Option<ScaleAction> {
        if let Some(left) = self.cooldown.get_mut(&key) {
            *left -= 1;
            if *left == 0 {
                self.cooldown.remove(&key);
            } else {
                return None;
            }
            return None;
        }
        let cfg = &self.cfg;
        let pressure = s.utilization >= cfg.scale_up_utilization
            || s.queue_depth >= cfg.scale_up_queue
            || s.miss_rate >= cfg.scale_up_miss_rate;
        let idle = s.utilization <= cfg.scale_down_utilization
            && s.queue_depth <= cfg.scale_down_queue
            && s.miss_rate < cfg.scale_up_miss_rate;
        let action = if pressure && s.replicas < cfg.max_replicas {
            Some(ScaleAction::ScaleUp)
        } else if idle && s.replicas > 0 {
            Some(ScaleAction::ScaleDown)
        } else {
            None
        };
        if action.is_some() {
            self.cooldown.insert(key, cfg.cooldown_rounds.max(1));
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot() -> StageSignals {
        StageSignals { utilization: 1.0, queue_depth: 12.0, miss_rate: 0.5, replicas: 0 }
    }

    fn cold(replicas: u32) -> StageSignals {
        StageSignals { utilization: 0.0, queue_depth: 0.0, miss_rate: 0.0, replicas }
    }

    #[test]
    fn pressure_scales_up_and_idle_scales_down() {
        let mut m = ElasticityManager::new(ElasticityConfig {
            cooldown_rounds: 1,
            ..ElasticityConfig::default()
        });
        assert_eq!(m.decide((0, 0), &hot()), Some(ScaleAction::ScaleUp));
        // Cooldown round, then idle: scale back down.
        assert_eq!(m.decide((0, 0), &cold(1)), None);
        assert_eq!(m.decide((0, 0), &cold(1)), Some(ScaleAction::ScaleDown));
    }

    #[test]
    fn cooldown_freezes_the_component_for_n_rounds() {
        let mut m = ElasticityManager::new(ElasticityConfig {
            cooldown_rounds: 3,
            ..ElasticityConfig::default()
        });
        assert_eq!(m.decide((0, 0), &hot()), Some(ScaleAction::ScaleUp));
        for _ in 0..3 {
            assert_eq!(m.decide((0, 0), &cold(1)), None, "frozen during cooldown");
        }
        assert_eq!(m.decide((0, 0), &cold(1)), Some(ScaleAction::ScaleDown));
    }

    #[test]
    fn cooldown_is_per_component() {
        let mut m = ElasticityManager::new(ElasticityConfig::default());
        assert_eq!(m.decide((0, 0), &hot()), Some(ScaleAction::ScaleUp));
        assert_eq!(m.decide((0, 1), &hot()), Some(ScaleAction::ScaleUp), "other key unaffected");
    }

    #[test]
    fn replica_bounds_are_respected() {
        let mut m = ElasticityManager::new(ElasticityConfig {
            cooldown_rounds: 1,
            max_replicas: 2,
            ..ElasticityConfig::default()
        });
        let maxed = StageSignals { replicas: 2, ..hot() };
        assert_eq!(m.decide((0, 0), &maxed), None, "at the ceiling");
        assert_eq!(m.decide((0, 0), &cold(0)), None, "nothing to scale down");
    }

    #[test]
    fn hysteresis_band_takes_no_action() {
        let mut m = ElasticityManager::new(ElasticityConfig::default());
        // Utilization between the thresholds, no queue, no misses.
        let mid = StageSignals { utilization: 0.5, queue_depth: 0.0, miss_rate: 0.0, replicas: 1 };
        assert_eq!(m.decide((0, 0), &mid), None);
    }
}
