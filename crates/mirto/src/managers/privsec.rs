//! Privacy & Security Manager.
//!
//! Solves the security side of the placement constraints: every
//! component may only run on nodes supporting its required Table II
//! level (a deployment request "may indicate that some of the SW
//! containers should only run within a certain security level"), nodes
//! must be sufficiently trusted, and data in motion pays the level's
//! protection overhead, which this manager accounts in extra work and
//! bytes.

use myrtus_continuum::engine::SimCore;
use myrtus_continuum::ids::NodeId;
use myrtus_continuum::node::NodeKind;
use myrtus_security::suite::SecurityLevel;
use myrtus_security::trust::{Observation, TrustModel};
use myrtus_workload::graph::RequestDag;
use myrtus_workload::tosca::{Application, SecurityTier};

/// The highest security level each hardware family can sustain:
/// PQC suites need the compute of fog/cloud class machines, gateways and
/// multicores handle classical suites, bare RISC-V cores only the
/// lightweight one.
pub fn node_security_level(kind: NodeKind) -> SecurityLevel {
    match kind {
        NodeKind::CloudServer | NodeKind::FogFmdc => SecurityLevel::High,
        NodeKind::FogGateway | NodeKind::EdgeMulticore | NodeKind::EdgeHmpsoc => {
            SecurityLevel::Medium
        }
        NodeKind::EdgeRiscv => SecurityLevel::Low,
    }
}

/// Maps a workload security tier onto the concrete Table II level.
pub fn level_for_tier(tier: SecurityTier) -> SecurityLevel {
    match tier {
        SecurityTier::Low => SecurityLevel::Low,
        SecurityTier::Medium => SecurityLevel::Medium,
        SecurityTier::High => SecurityLevel::High,
    }
}

/// The Privacy & Security Manager.
#[derive(Debug)]
pub struct PrivacySecurityManager {
    trust: TrustModel,
    min_trust: f64,
    enforce: bool,
    handshakes: std::collections::HashSet<(NodeId, NodeId, SecurityLevel)>,
    handshake_cycles: u64,
    protected_bytes: u64,
}

impl PrivacySecurityManager {
    /// Creates a manager; `enforce = false` turns all filtering and
    /// overhead off (the insecure baseline of experiment E6).
    pub fn new(enforce: bool) -> Self {
        PrivacySecurityManager {
            trust: TrustModel::new(0.995),
            min_trust: 0.25,
            enforce,
            handshakes: std::collections::HashSet::new(),
            handshake_cycles: 0,
            protected_bytes: 0,
        }
    }

    /// Whether enforcement is on.
    pub fn enforcing(&self) -> bool {
        self.enforce
    }

    /// The runtime trust model.
    pub fn trust(&self) -> &TrustModel {
        &self.trust
    }

    /// Records an interaction outcome for trust scoring.
    pub fn observe(&mut self, node: NodeId, obs: Observation) {
        self.trust.observe(node, obs);
    }

    /// Per-component candidate nodes: up, memory-sufficient, security-
    /// capable and trusted. Without enforcement only liveness and memory
    /// filter.
    pub fn candidates(
        &self,
        sim: &SimCore,
        app: &Application,
        dag: &RequestDag,
    ) -> Vec<Vec<NodeId>> {
        dag.nodes()
            .iter()
            .map(|dn| {
                let comp = &app.components[dn.component_idx];
                let need = level_for_tier(comp.requirements.security);
                sim.nodes()
                    .iter()
                    .filter(|n| n.is_up())
                    .filter(|n| n.spec().mem_mb() >= comp.requirements.mem_mb)
                    .filter(|n| {
                        !self.enforce
                            || (node_security_level(n.spec().kind()) >= need
                                && self.trust.score(n.id()) >= self.min_trust)
                    })
                    .map(|n| n.id())
                    .collect()
            })
            .collect()
    }

    /// Extra software work (megacycles) for protecting `bytes` of
    /// transfer at the component's level, charged to the sending stage.
    /// Zero when enforcement is off or the tier is satisfied by a
    /// co-located hop.
    pub fn protection_work_mc(
        &mut self,
        tier: SecurityTier,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> f64 {
        if !self.enforce || src == dst || bytes == 0 {
            return 0.0;
        }
        let level = level_for_tier(tier);
        let suite = level.suite();
        self.protected_bytes += bytes;
        let mut cycles = suite.record_cycles(bytes);
        // First contact between two endpoints at a level pays the
        // mutual-authentication handshake.
        if self.handshakes.insert((src, dst, level)) {
            let hs = suite.handshake_cost();
            cycles += hs.initiator_cycles + hs.responder_cycles;
            self.handshake_cycles += hs.initiator_cycles + hs.responder_cycles;
        }
        cycles as f64 / 1e6 // cycles → megacycles
    }

    /// Extra wire bytes for a protected record.
    pub fn protection_wire_overhead(&self, tier: SecurityTier, src: NodeId, dst: NodeId) -> u64 {
        if !self.enforce || src == dst {
            0
        } else {
            level_for_tier(tier).suite().record_overhead_bytes()
        }
    }

    /// Total handshake cycles spent so far.
    pub fn handshake_cycles(&self) -> u64 {
        self.handshake_cycles
    }

    /// Total bytes protected so far.
    pub fn protected_bytes(&self) -> u64 {
        self.protected_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use myrtus_continuum::topology::ContinuumBuilder;
    use myrtus_workload::scenarios;

    #[test]
    fn capability_ladder_matches_hardware() {
        assert_eq!(node_security_level(NodeKind::CloudServer), SecurityLevel::High);
        assert_eq!(node_security_level(NodeKind::EdgeRiscv), SecurityLevel::Low);
        assert!(node_security_level(NodeKind::FogGateway) >= SecurityLevel::Medium);
    }

    #[test]
    fn enforcement_filters_high_security_components_to_capable_nodes() {
        let c = ContinuumBuilder::new().build();
        let app = scenarios::telerehab(); // session-store requires High
        let dag = RequestDag::from_application(&app).expect("valid");
        let mgr = PrivacySecurityManager::new(true);
        let cands = mgr.candidates(c.sim(), &app, &dag);
        // Find the session-store stage (last in the chain).
        let store_stage =
            dag.nodes().iter().position(|n| n.name == "session-store").expect("exists");
        for n in &cands[store_stage] {
            let kind = c.sim().node(*n).expect("exists").spec().kind();
            assert_eq!(node_security_level(kind), SecurityLevel::High, "{kind}");
        }
        // Without enforcement every up node qualifies (memory permitting).
        let open = PrivacySecurityManager::new(false).candidates(c.sim(), &app, &dag);
        assert!(open[store_stage].len() > cands[store_stage].len());
    }

    #[test]
    fn memory_requirement_always_filters() {
        let c = ContinuumBuilder::new().build();
        let mut app = scenarios::telerehab();
        app.components[2].requirements.mem_mb = 100_000; // pose needs 100 GB
        let dag = RequestDag::from_application(&app).expect("valid");
        let cands = PrivacySecurityManager::new(false).candidates(c.sim(), &app, &dag);
        for n in &cands[2] {
            assert!(c.sim().node(*n).expect("exists").spec().mem_mb() >= 100_000);
        }
    }

    #[test]
    fn untrusted_nodes_are_excluded() {
        let c = ContinuumBuilder::new().build();
        let app = scenarios::smart_mobility();
        let dag = RequestDag::from_application(&app).expect("valid");
        let mut mgr = PrivacySecurityManager::new(true);
        let victim = c.edge()[0];
        for _ in 0..5 {
            mgr.observe(victim, Observation::SecurityIncident);
        }
        let cands = mgr.candidates(c.sim(), &app, &dag);
        for per_comp in &cands {
            assert!(!per_comp.contains(&victim), "incident-ridden node excluded");
        }
    }

    #[test]
    fn protection_work_scales_with_level_and_includes_handshake_once() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let mut mgr = PrivacySecurityManager::new(true);
        let first = mgr.protection_work_mc(SecurityTier::High, a, b, 100_000);
        let second = mgr.protection_work_mc(SecurityTier::High, a, b, 100_000);
        assert!(first > second, "first transfer pays the handshake");
        assert!(mgr.handshake_cycles() > 0);
        let mut low = PrivacySecurityManager::new(true);
        let l1 = low.protection_work_mc(SecurityTier::Low, a, b, 100_000);
        assert!(l1 < first, "low level is cheaper than high");
        // Co-located or disabled: free.
        assert_eq!(mgr.protection_work_mc(SecurityTier::High, a, a, 100_000), 0.0);
        let mut off = PrivacySecurityManager::new(false);
        assert_eq!(off.protection_work_mc(SecurityTier::High, a, b, 100_000), 0.0);
    }

    #[test]
    fn wire_overhead_only_under_enforcement() {
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let on = PrivacySecurityManager::new(true);
        let off = PrivacySecurityManager::new(false);
        assert!(on.protection_wire_overhead(SecurityTier::Medium, a, b) > 0);
        assert_eq!(off.protection_wire_overhead(SecurityTier::Medium, a, b), 0);
        assert_eq!(on.protection_wire_overhead(SecurityTier::Medium, a, a), 0);
    }
}
