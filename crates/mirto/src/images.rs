//! Container Image Registry and Repository (paper Sect. VI).
//!
//! "Candidate solutions should be easily accessible by all layers and
//! expose security guarantees (e.g. access controls, image scanning,
//! etc.)". This registry provides exactly those guarantees: pushed
//! images are content-addressed (SHA-256 digest), access is gated by the
//! token authenticator's scopes, images must be signed by a trusted
//! publisher and pass a vulnerability scan before the deployment proxy
//! may pull them.

use std::collections::BTreeMap;

use myrtus_continuum::time::SimTime;
use myrtus_security::authn::TokenAuthenticator;
use myrtus_security::sha2::{hmac_sha256, sha256};

/// A stored image with its supply-chain metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageRecord {
    /// Image name (e.g. `pose-estimator`).
    pub name: String,
    /// Version tag.
    pub tag: String,
    /// Content digest (SHA-256 of the image bytes), hex.
    pub digest: String,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Publisher that signed the image, if any.
    pub signed_by: Option<String>,
    /// Scan result, if scanned.
    pub scan: Option<ScanResult>,
}

/// Result of a vulnerability scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanResult {
    /// Findings classified critical.
    pub critical: u32,
    /// Findings classified low/medium.
    pub low: u32,
}

impl ScanResult {
    /// Whether the image passes the default admission policy (no
    /// critical findings).
    pub fn passes(&self) -> bool {
        self.critical == 0
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The bearer token failed authentication or lacks the scope.
    AccessDenied {
        /// The missing scope.
        scope: &'static str,
    },
    /// The referenced image does not exist.
    UnknownImage {
        /// `name:tag` reference.
        reference: String,
    },
    /// Admission policy rejected the pull.
    PolicyViolation {
        /// Why the image is not deployable.
        reason: String,
    },
    /// The signature does not verify against the publisher key.
    BadSignature,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AccessDenied { scope } => {
                write!(f, "access denied: missing scope {scope}")
            }
            RegistryError::UnknownImage { reference } => {
                write!(f, "unknown image {reference}")
            }
            RegistryError::PolicyViolation { reason } => {
                write!(f, "admission policy violation: {reason}")
            }
            RegistryError::BadSignature => f.write_str("image signature does not verify"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The continuum-wide image registry.
#[derive(Debug)]
pub struct ImageRegistry {
    authn: TokenAuthenticator,
    publishers: BTreeMap<String, Vec<u8>>,
    images: BTreeMap<String, ImageRecord>,
    pulls: u64,
}

fn reference(name: &str, tag: &str) -> String {
    format!("{name}:{tag}")
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl ImageRegistry {
    /// Creates a registry gated by the given token secret.
    pub fn new(token_secret: &[u8]) -> Self {
        ImageRegistry {
            authn: TokenAuthenticator::new(token_secret),
            publishers: BTreeMap::new(),
            images: BTreeMap::new(),
            pulls: 0,
        }
    }

    /// The registry's authenticator (for issuing access tokens).
    pub fn authenticator(&self) -> &TokenAuthenticator {
        &self.authn
    }

    /// Registers a trusted publisher with its signing key.
    pub fn trust_publisher(&mut self, name: impl Into<String>, key: &[u8]) {
        self.publishers.insert(name.into(), key.to_vec());
    }

    /// Total pulls served.
    pub fn pulls(&self) -> u64 {
        self.pulls
    }

    /// Stored images, reference order.
    pub fn images(&self) -> impl Iterator<Item = &ImageRecord> {
        self.images.values()
    }

    fn authorize(
        &self,
        token: &str,
        now: SimTime,
        scope: &'static str,
    ) -> Result<(), RegistryError> {
        let principal =
            self.authn.verify(token, now).map_err(|_| RegistryError::AccessDenied { scope })?;
        if principal.has_scope(scope) {
            Ok(())
        } else {
            Err(RegistryError::AccessDenied { scope })
        }
    }

    /// Pushes an image (scope `push`). The digest is computed from the
    /// content; re-pushing the same reference overwrites it.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::AccessDenied`] without a valid token.
    pub fn push(
        &mut self,
        token: &str,
        now: SimTime,
        name: &str,
        tag: &str,
        content: &[u8],
    ) -> Result<String, RegistryError> {
        self.authorize(token, now, "push")?;
        let digest = hex(&sha256(content));
        self.images.insert(
            reference(name, tag),
            ImageRecord {
                name: name.to_string(),
                tag: tag.to_string(),
                digest: digest.clone(),
                size_bytes: content.len() as u64,
                signed_by: None,
                scan: None,
            },
        );
        Ok(digest)
    }

    /// Attaches a publisher signature over the image digest.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::BadSignature`] when the signature does
    /// not verify against the named publisher's key, and
    /// [`RegistryError::UnknownImage`] for unknown references.
    pub fn sign(
        &mut self,
        name: &str,
        tag: &str,
        publisher: &str,
        signature: &[u8; 32],
    ) -> Result<(), RegistryError> {
        let r = reference(name, tag);
        let img =
            self.images.get_mut(&r).ok_or(RegistryError::UnknownImage { reference: r.clone() })?;
        let key = self.publishers.get(publisher).ok_or(RegistryError::BadSignature)?;
        let expect = hmac_sha256(key, img.digest.as_bytes());
        if &expect != signature {
            return Err(RegistryError::BadSignature);
        }
        img.signed_by = Some(publisher.to_string());
        Ok(())
    }

    /// Convenience: computes the signature a publisher would produce.
    pub fn publisher_signature(key: &[u8], digest: &str) -> [u8; 32] {
        hmac_sha256(key, digest.as_bytes())
    }

    /// Records a scan result.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownImage`] for unknown references.
    pub fn record_scan(
        &mut self,
        name: &str,
        tag: &str,
        result: ScanResult,
    ) -> Result<(), RegistryError> {
        let r = reference(name, tag);
        self.images.get_mut(&r).ok_or(RegistryError::UnknownImage { reference: r })?.scan =
            Some(result);
        Ok(())
    }

    /// Pulls an image for deployment (scope `pull`), enforcing the
    /// admission policy: the image must be signed by a trusted publisher
    /// and have a passing scan.
    ///
    /// # Errors
    ///
    /// Returns the failing [`RegistryError`].
    pub fn pull(
        &mut self,
        token: &str,
        now: SimTime,
        name: &str,
        tag: &str,
    ) -> Result<ImageRecord, RegistryError> {
        self.authorize(token, now, "pull")?;
        let r = reference(name, tag);
        let img =
            self.images.get(&r).ok_or(RegistryError::UnknownImage { reference: r.clone() })?;
        if img.signed_by.is_none() {
            return Err(RegistryError::PolicyViolation { reason: format!("{r} is unsigned") });
        }
        match img.scan {
            None => {
                return Err(RegistryError::PolicyViolation {
                    reason: format!("{r} has not been scanned"),
                })
            }
            Some(scan) if !scan.passes() => {
                return Err(RegistryError::PolicyViolation {
                    reason: format!("{r} has {} critical findings", scan.critical),
                })
            }
            Some(_) => {}
        }
        self.pulls += 1;
        Ok(img.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ImageRegistry, String, String) {
        let mut reg = ImageRegistry::new(b"registry-secret");
        reg.trust_publisher("unica-release", b"publisher-key");
        let push = reg.authenticator().issue("ci", &["push"], SimTime::from_secs(100));
        let pull = reg.authenticator().issue("mirto-deployer", &["pull"], SimTime::from_secs(100));
        (reg, push, pull)
    }

    fn publish_good(reg: &mut ImageRegistry, push: &str) {
        let digest =
            reg.push(push, SimTime::ZERO, "pose-estimator", "1.0", b"layers...").expect("pushes");
        let sig = ImageRegistry::publisher_signature(b"publisher-key", &digest);
        reg.sign("pose-estimator", "1.0", "unica-release", &sig).expect("signs");
        reg.record_scan("pose-estimator", "1.0", ScanResult { critical: 0, low: 3 })
            .expect("scans");
    }

    #[test]
    fn full_supply_chain_admits_the_image() {
        let (mut reg, push, pull) = setup();
        publish_good(&mut reg, &push);
        let img = reg.pull(&pull, SimTime::ZERO, "pose-estimator", "1.0").expect("policy passes");
        assert_eq!(img.signed_by.as_deref(), Some("unica-release"));
        assert_eq!(img.digest.len(), 64);
        assert_eq!(reg.pulls(), 1);
    }

    #[test]
    fn unsigned_or_unscanned_images_are_rejected() {
        let (mut reg, push, pull) = setup();
        reg.push(&push, SimTime::ZERO, "app", "dev", b"bits").expect("pushes");
        let err = reg.pull(&pull, SimTime::ZERO, "app", "dev").expect_err("unsigned");
        assert!(matches!(err, RegistryError::PolicyViolation { .. }));
        // Sign it but leave it unscanned.
        let digest = reg.images().find(|i| i.name == "app").expect("exists").digest.clone();
        let sig = ImageRegistry::publisher_signature(b"publisher-key", &digest);
        reg.sign("app", "dev", "unica-release", &sig).expect("signs");
        let err = reg.pull(&pull, SimTime::ZERO, "app", "dev").expect_err("unscanned");
        assert!(err.to_string().contains("scanned"));
    }

    #[test]
    fn critical_findings_block_admission() {
        let (mut reg, push, pull) = setup();
        publish_good(&mut reg, &push);
        reg.record_scan("pose-estimator", "1.0", ScanResult { critical: 2, low: 0 })
            .expect("rescans");
        let err =
            reg.pull(&pull, SimTime::ZERO, "pose-estimator", "1.0").expect_err("critical CVEs");
        assert!(err.to_string().contains("2 critical"));
    }

    #[test]
    fn access_control_enforces_scopes() {
        let (mut reg, push, pull) = setup();
        // Pull token cannot push; push token cannot pull.
        assert!(matches!(
            reg.push(&pull, SimTime::ZERO, "x", "1", b"y"),
            Err(RegistryError::AccessDenied { scope: "push" })
        ));
        publish_good(&mut reg, &push);
        assert!(matches!(
            reg.pull(&push, SimTime::ZERO, "pose-estimator", "1.0"),
            Err(RegistryError::AccessDenied { scope: "pull" })
        ));
        // Garbage token.
        assert!(reg.push("garbage", SimTime::ZERO, "x", "1", b"y").is_err());
    }

    #[test]
    fn forged_signatures_are_rejected() {
        let (mut reg, push, _) = setup();
        reg.push(&push, SimTime::ZERO, "app", "1", b"bits").expect("pushes");
        let bad = [0u8; 32];
        assert_eq!(reg.sign("app", "1", "unica-release", &bad), Err(RegistryError::BadSignature));
        // Unknown publisher too.
        let digest = reg.images().next().expect("exists").digest.clone();
        let sig = ImageRegistry::publisher_signature(b"other-key", &digest);
        assert_eq!(reg.sign("app", "1", "mallory", &sig), Err(RegistryError::BadSignature));
    }

    #[test]
    fn digests_are_content_addressed() {
        let (mut reg, push, _) = setup();
        let d1 = reg.push(&push, SimTime::ZERO, "a", "1", b"content-a").expect("pushes");
        let d2 = reg.push(&push, SimTime::ZERO, "a", "2", b"content-b").expect("pushes");
        let d3 = reg.push(&push, SimTime::ZERO, "b", "1", b"content-a").expect("pushes");
        assert_ne!(d1, d2);
        assert_eq!(d1, d3, "same bytes, same digest");
    }
}
