//! Federated Learning across MIRTO edge agents (the KCL contribution
//! slot).
//!
//! Paper Sect. IV: edge agents learn ML models estimating "the best
//! operating point of a workload", and "combining learned models from
//! different agents using FL techniques" lets agents "evolve based on
//! each other's experiences". Here each agent fits a ridge-regression
//! latency model `latency ≈ w·[1, work, bytes, 1/speed]` on its *local*
//! observations (non-IID: each edge node only sees its own hardware and
//! its own applications), and [`fed_avg`] aggregates the models
//! FedAvg-style, weighted by sample count.

use serde::{Deserialize, Serialize};

/// Feature vector length: bias, work (mc), input (KiB), inverse speed,
/// and the work × inverse-speed interaction (compute time).
pub const FEATURES: usize = 5;

/// A linear latency model over [`FEATURES`] features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Model weights.
    pub w: [f64; FEATURES],
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { w: [0.0; FEATURES] }
    }
}

impl LatencyModel {
    /// Builds the feature vector for a task on a node.
    pub fn features(work_mc: f64, input_kib: f64, speed_mc_per_us: f64) -> [f64; FEATURES] {
        let inv = 1.0 / speed_mc_per_us.max(1e-9);
        [1.0, work_mc, input_kib, inv / 1_000.0, work_mc * inv / 1_000.0]
    }

    /// Predicted latency in µs.
    pub fn predict(&self, x: &[f64; FEATURES]) -> f64 {
        self.w.iter().zip(x.iter()).map(|(w, x)| w * x).sum()
    }

    /// Mean squared error on a dataset.
    pub fn mse(&self, data: &[([f64; FEATURES], f64)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|(x, y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / data.len() as f64
    }
}

/// One agent's local learner.
#[derive(Debug, Clone, Default)]
pub struct LocalLearner {
    samples: Vec<([f64; FEATURES], f64)>,
}

impl LocalLearner {
    /// Creates an empty learner.
    pub fn new() -> Self {
        LocalLearner::default()
    }

    /// Records an observation `(features, latency_us)`.
    pub fn observe(&mut self, x: [f64; FEATURES], latency_us: f64) {
        self.samples.push((x, latency_us));
    }

    /// Number of local observations.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The local dataset.
    pub fn samples(&self) -> &[([f64; FEATURES], f64)] {
        &self.samples
    }

    /// Accumulates the sufficient statistics `(XᵀX, Xᵀy)` of the local
    /// dataset — what a privacy-aware agent would share for federated
    /// least squares instead of raw observations.
    pub fn sufficient_stats(&self) -> SufficientStats {
        let mut st = SufficientStats::default();
        for (x, y) in &self.samples {
            st.absorb(x, *y);
        }
        st
    }

    /// Fits a ridge regression with regularization `lambda` by solving
    /// the normal equations `(XᵀX + λI) w = Xᵀy`. Returns the default
    /// (zero) model when there is no data.
    pub fn fit(&self, lambda: f64) -> LatencyModel {
        if self.samples.is_empty() {
            return LatencyModel::default();
        }
        self.sufficient_stats().solve(lambda, 0.0, &LatencyModel::default())
    }

    /// FedProx local step: ridge solution anchored to the global model
    /// with proximal strength `mu` — `(XᵀX + (λ+μ)I) w = Xᵀy + μ·w_g`.
    pub fn fit_prox(&self, lambda: f64, mu: f64, global: &LatencyModel) -> LatencyModel {
        if self.samples.is_empty() {
            return *global;
        }
        self.sufficient_stats().solve(lambda, mu, global)
    }
}

/// Accumulated `(XᵀX, Xᵀy, n)` of a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SufficientStats {
    xtx: [[f64; FEATURES]; FEATURES],
    xty: [f64; FEATURES],
    n: usize,
}

impl SufficientStats {
    /// Adds one observation.
    pub fn absorb(&mut self, x: &[f64; FEATURES], y: f64) {
        for i in 0..FEATURES {
            self.xty[i] += x[i] * y;
            for j in 0..FEATURES {
                self.xtx[i][j] += x[i] * x[j];
            }
        }
        self.n += 1;
    }

    /// Merges another agent's statistics.
    pub fn merge(&mut self, other: &SufficientStats) {
        for i in 0..FEATURES {
            self.xty[i] += other.xty[i];
            for j in 0..FEATURES {
                self.xtx[i][j] += other.xtx[i][j];
            }
        }
        self.n += other.n;
    }

    /// Number of absorbed observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Solves `(XᵀX + (λ+μ)I) w = Xᵀy + μ·anchor` by Gaussian
    /// elimination with partial pivoting.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, lambda: f64, mu: f64, anchor: &LatencyModel) -> LatencyModel {
        let n = FEATURES;
        let mut m = [[0.0f64; FEATURES + 1]; FEATURES];
        for i in 0..n {
            m[i][..n].copy_from_slice(&self.xtx[i]);
            m[i][i] += lambda + mu;
            m[i][n] = self.xty[i] + mu * anchor.w[i];
        }
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&r1, &r2| {
                    m[r1][col]
                        .abs()
                        .partial_cmp(&m[r2][col].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty range");
            m.swap(col, pivot);
            let p = m[col][col];
            if p.abs() < 1e-12 {
                continue;
            }
            for row in 0..n {
                if row != col {
                    let factor = m[row][col] / p;
                    for k in col..=n {
                        m[row][k] -= factor * m[col][k];
                    }
                }
            }
        }
        let mut w = [0.0f64; FEATURES];
        for i in 0..n {
            w[i] = if m[i][i].abs() < 1e-12 { 0.0 } else { m[i][n] / m[i][i] };
        }
        LatencyModel { w }
    }
}

/// Exact federated least squares: agents share sufficient statistics
/// instead of raw data; the aggregate solution equals the centralized
/// fit (one round, no approximation).
pub fn fed_least_squares(learners: &[LocalLearner], lambda: f64) -> LatencyModel {
    let mut total = SufficientStats::default();
    for l in learners {
        total.merge(&l.sufficient_stats());
    }
    if total.count() == 0 {
        return LatencyModel::default();
    }
    total.solve(lambda, 0.0, &LatencyModel::default())
}

/// FedAvg: sample-count-weighted average of local models.
///
/// Returns the default model for an empty input.
pub fn fed_avg(models: &[(LatencyModel, usize)]) -> LatencyModel {
    let total: usize = models.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return LatencyModel::default();
    }
    let mut w = [0.0f64; FEATURES];
    for (m, n) in models {
        for (wi, mi) in w.iter_mut().zip(m.w.iter()) {
            *wi += mi * *n as f64;
        }
    }
    for wi in &mut w {
        *wi /= total as f64;
    }
    LatencyModel { w }
}

/// Runs `rounds` of FedProx-style federated training: each round every
/// agent solves its local ridge problem anchored to the current global
/// model (proximal strength `mu`), the server sample-weight-averages the
/// locals, and the loop repeats. Returns the final global model and the
/// global-dataset MSE after each round.
pub fn federated_rounds(
    learners: &[LocalLearner],
    lambda: f64,
    mu: f64,
    rounds: usize,
) -> (LatencyModel, Vec<f64>) {
    let mut history = Vec::with_capacity(rounds);
    let mut global = LatencyModel::default();
    let all: Vec<([f64; FEATURES], f64)> =
        learners.iter().flat_map(|l| l.samples().iter().copied()).collect();
    for _ in 0..rounds.max(1) {
        let locals: Vec<(LatencyModel, usize)> =
            learners.iter().map(|l| (l.fit_prox(lambda, mu, &global), l.sample_count())).collect();
        global = fed_avg(&locals);
        history.push(global.mse(&all));
    }
    (global, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth_sample(rng: &mut StdRng, speed: f64) -> ([f64; FEATURES], f64) {
        let work = rng.gen_range(1.0..50.0);
        let kib = rng.gen_range(1.0..500.0);
        let x = LatencyModel::features(work, kib, speed);
        // Ground truth: latency = work/speed + 2µs/KiB + 50µs fixed.
        let y = work / speed + 2.0 * kib + 50.0;
        (x, y)
    }

    #[test]
    fn local_fit_recovers_linear_ground_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = LocalLearner::new();
        for _ in 0..200 {
            let (x, y) = synth_sample(&mut rng, 1.5e-3);
            l.observe(x, y);
        }
        let m = l.fit(1e-6);
        let test: Vec<_> = (0..50).map(|_| synth_sample(&mut rng, 1.5e-3)).collect();
        let mse = m.mse(&test);
        let var: f64 = test.iter().map(|(_, y)| y * y).sum::<f64>() / test.len() as f64;
        assert!(mse < var * 0.01, "mse {mse} vs var {var}");
    }

    #[test]
    fn empty_learner_fits_zero_model() {
        let m = LocalLearner::new().fit(0.1);
        assert_eq!(m, LatencyModel::default());
        assert_eq!(fed_avg(&[]), LatencyModel::default());
    }

    #[test]
    fn fed_avg_weights_by_sample_count() {
        let big = LatencyModel { w: [10.0, 0.0, 0.0, 0.0, 0.0] };
        let small = LatencyModel { w: [0.0; FEATURES] };
        let avg = fed_avg(&[(big, 90), (small, 10)]);
        assert!((avg.w[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn federation_beats_isolated_agents_on_global_data() {
        // Non-IID: agent A only sees slow hardware, agent B only fast.
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = LocalLearner::new();
        let mut b = LocalLearner::new();
        for _ in 0..150 {
            let (x, y) = synth_sample(&mut rng, 0.6e-3); // slow RISC-V
            a.observe(x, y);
        }
        for _ in 0..150 {
            let (x, y) = synth_sample(&mut rng, 3.0e-3); // fast server
            b.observe(x, y);
        }
        let global_test: Vec<_> = (0..100)
            .map(|i| synth_sample(&mut rng, if i % 2 == 0 { 0.6e-3 } else { 3.0e-3 }))
            .collect();
        let (fed, _) = federated_rounds(&[a.clone(), b.clone()], 1e-6, 50.0, 6);
        let fed_mse = fed.mse(&global_test);
        let a_mse = a.fit(1e-6).mse(&global_test);
        let b_mse = b.fit(1e-6).mse(&global_test);
        let worst_isolated = a_mse.max(b_mse);
        assert!(
            fed_mse < worst_isolated,
            "federated {fed_mse} must beat the worst isolated agent {worst_isolated}"
        );
    }

    #[test]
    fn federated_rounds_report_history() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = LocalLearner::new();
        for _ in 0..50 {
            let (x, y) = synth_sample(&mut rng, 1.0e-3);
            l.observe(x, y);
        }
        let (_, hist) = federated_rounds(&[l], 1e-6, 10.0, 5);
        assert_eq!(hist.len(), 5);
        assert!(hist.iter().all(|m| m.is_finite()));
        assert!(
            hist.last().expect("non-empty") <= &(hist[0] + 1e-9),
            "FedProx rounds do not diverge: {hist:?}"
        );
    }

    #[test]
    fn fed_least_squares_matches_centralized_fit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = LocalLearner::new();
        let mut b = LocalLearner::new();
        let mut central = LocalLearner::new();
        for _ in 0..100 {
            let (x, y) = synth_sample(&mut rng, 0.6e-3);
            a.observe(x, y);
            central.observe(x, y);
        }
        for _ in 0..100 {
            let (x, y) = synth_sample(&mut rng, 3.0e-3);
            b.observe(x, y);
            central.observe(x, y);
        }
        let fed = fed_least_squares(&[a, b], 1e-6);
        let direct = central.fit(1e-6);
        for i in 0..FEATURES {
            assert!((fed.w[i] - direct.w[i]).abs() < 1e-6, "w[{i}]");
        }
    }

    #[test]
    fn empty_fed_least_squares_is_zero() {
        assert_eq!(fed_least_squares(&[], 0.1), LatencyModel::default());
    }

    #[test]
    fn features_guard_against_zero_speed() {
        let x = LatencyModel::features(1.0, 1.0, 0.0);
        assert!(x[3].is_finite());
    }
}
