//! The deployment proxy (Fig. 3's LIQO/Kubernetes interface).
//!
//! MIRTO "constitutes the interface among MIRTO agents and
//! Kubernetes-based orchestration achieving seamless virtualization of
//! the underlying infrastructure". The cognitive engine *decides*
//! placements; this proxy *executes* them on the low-level layer: one
//! Kubernetes-like cluster per continuum layer, peered LIQO-style
//! (edge → fog → cloud), with every placed component materialized as a
//! bound pod and every reallocation as an evict + rebind.

use std::collections::HashMap;

use myrtus_continuum::cluster::{Federation, PodSpec, ScheduleError};
use myrtus_continuum::engine::SimCore;
use myrtus_continuum::ids::{ClusterId, NodeId, PodId};
use myrtus_continuum::node::Layer;
use myrtus_obs::{Obs, TraceKind};
use myrtus_workload::tosca::Application;

use crate::placement::Placement;

/// One bound pod: its cluster, pod id and hosting node.
type BoundPod = (ClusterId, PodId, NodeId);

/// Executes MIRTO placements on the per-layer cluster federation.
///
/// `Clone` is part of the contract: the `mc` model checker snapshots
/// whole proxies as explicit states (the [`Obs`] handle clones
/// shallowly, which is fine — checker states carry a disabled handle).
#[derive(Debug, Clone)]
pub struct DeploymentProxy {
    federation: Federation,
    cluster_of_layer: [ClusterId; 3],
    layer_of_node: HashMap<NodeId, Layer>,
    pods: HashMap<(u16, usize), BoundPod>,
    /// Horizontal replicas per component (elastic scaling), bound in
    /// scale-up order; the primary pod in `pods` is never in here.
    replica_pods: HashMap<(u16, usize), Vec<BoundPod>>,
    binds: u64,
    moves: u64,
    task_moves: u64,
    obs: Obs,
    clock_us: u64,
}

/// Whether the seeded scale-down bug is armed: the popped replica's
/// pod is dropped from the route table but never evicted from its
/// cluster, leaking its resource requests. Compiled out of release
/// builds; off by default even in test builds.
fn mutation_leaks_scaled_down_pod() -> bool {
    #[cfg(any(test, feature = "mc-mutations"))]
    {
        crate::mutation::scale_down_leaks_pod()
    }
    #[cfg(not(any(test, feature = "mc-mutations")))]
    {
        false
    }
}

fn layer_index(layer: Layer) -> usize {
    match layer {
        Layer::Edge => 0,
        Layer::Fog => 1,
        Layer::Cloud => 2,
    }
}

impl DeploymentProxy {
    /// Builds the federation over the given core: one cluster per layer,
    /// peered upward (edge → fog → cloud) like LIQO virtual nodes.
    pub fn new(sim: &SimCore) -> Self {
        let mut by_layer: [Vec<NodeId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut layer_of_node = HashMap::new();
        for n in sim.nodes() {
            let layer = n.spec().layer();
            by_layer[layer_index(layer)].push(n.id());
            layer_of_node.insert(n.id(), layer);
        }
        let mut federation = Federation::new();
        let edge = federation.add_cluster(by_layer[0].clone());
        let fog = federation.add_cluster(by_layer[1].clone());
        let cloud = federation.add_cluster(by_layer[2].clone());
        federation.peer(edge, fog);
        federation.peer(fog, cloud);
        federation.peer(edge, cloud);
        DeploymentProxy {
            federation,
            cluster_of_layer: [edge, fog, cloud],
            layer_of_node,
            pods: HashMap::new(),
            replica_pods: HashMap::new(),
            binds: 0,
            moves: 0,
            task_moves: 0,
            obs: Obs::disabled(),
            clock_us: 0,
        }
    }

    /// Attaches an observability handle: deploy/migrate trace events and
    /// pod counters are recorded through it.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Advances the proxy's notion of simulated time, used to stamp
    /// deploy/migrate trace events (the proxy itself has no clock).
    pub fn set_clock(&mut self, at_us: u64) {
        self.clock_us = at_us;
    }

    /// The underlying federation.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// Pods bound so far.
    pub fn binds(&self) -> u64 {
        self.binds
    }

    /// Pod migrations executed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Individual task migrations executed so far (burst-backlog
    /// drains; pods stay put, only in-flight work moves).
    pub fn task_moves(&self) -> u64 {
        self.task_moves
    }

    /// Records one task-level migration: unlike [`bind_component`]
    /// rebinds, the pod does not move — a single in-flight task was
    /// checkpointed (or killed) on `from` and resumed (or restarted) on
    /// `to`. Traced as a [`TraceKind::Migrate`] with the component set
    /// to `u32::MAX`, the task-migration sentinel.
    ///
    /// [`bind_component`]: DeploymentProxy::bind_component
    pub fn note_task_migration(&mut self, app: u16, from: NodeId, to: NodeId) {
        self.task_moves += 1;
        self.obs.counter_inc("task_migrations", "");
        self.obs.trace(
            self.clock_us,
            TraceKind::Migrate { app, component: u32::MAX, from: from.as_raw(), to: to.as_raw() },
        );
    }

    /// Pod currently backing a component.
    pub fn pod_of(&self, app: u16, component: usize) -> Option<(ClusterId, PodId, NodeId)> {
        self.pods.get(&(app, component)).copied()
    }

    fn pod_spec(app: &Application, component: usize) -> PodSpec {
        let comp = &app.components[component];
        // Request: one millicore per 0.01 Mc of per-request work, floored
        // at 100m — a simple sizing heuristic in lieu of profiling.
        let cpu = ((comp.requirements.work_mc * 100.0) as u32).clamp(100, 4_000);
        PodSpec::new(format!("{}-{}", app.name, comp.name), cpu, comp.requirements.mem_mb)
    }

    /// Materializes a full placement: binds one pod per component onto
    /// its decided node's layer cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::UnknownCluster`] when a node belongs to
    /// no known layer (cannot happen for nodes created via the core).
    pub fn apply_placement(
        &mut self,
        app_id: u16,
        app: &Application,
        placement: &Placement,
    ) -> Result<(), ScheduleError> {
        for comp in 0..placement.len() {
            let node = placement.node_of(comp);
            self.bind_component(app_id, app, comp, node)?;
        }
        Ok(())
    }

    fn cluster_for(&self, node: NodeId) -> Result<ClusterId, ScheduleError> {
        self.layer_of_node
            .get(&node)
            .map(|l| self.cluster_of_layer[layer_index(*l)])
            .ok_or(ScheduleError::UnknownCluster(ClusterId::from_raw(u32::MAX)))
    }

    /// Binds (or rebinds) one component to `node`, evicting a previous
    /// pod if the component moved.
    ///
    /// # Errors
    ///
    /// Propagates cluster errors.
    pub fn bind_component(
        &mut self,
        app_id: u16,
        app: &Application,
        component: usize,
        node: NodeId,
    ) -> Result<(), ScheduleError> {
        let mut migrated_from = None;
        if let Some((cl, pod, old_node)) = self.pods.get(&(app_id, component)).copied() {
            if old_node == node {
                return Ok(());
            }
            let cluster =
                self.federation.cluster_mut(cl).ok_or(ScheduleError::UnknownCluster(cl))?;
            cluster.evict(pod)?;
            self.moves += 1;
            migrated_from = Some(old_node);
        }
        let target = self.cluster_for(node)?;
        let spec = Self::pod_spec(app, component);
        let cluster =
            self.federation.cluster_mut(target).ok_or(ScheduleError::UnknownCluster(target))?;
        let pod = cluster.bind(spec, node);
        self.binds += 1;
        self.pods.insert((app_id, component), (target, pod, node));
        match migrated_from {
            Some(from) => {
                self.obs.counter_inc("pod_migrations", "");
                self.obs.trace(
                    self.clock_us,
                    TraceKind::Migrate {
                        app: app_id,
                        component: component as u32,
                        from: from.as_raw(),
                        to: node.as_raw(),
                    },
                );
            }
            None => {
                self.obs.counter_inc("pod_binds", "");
                self.obs.trace(
                    self.clock_us,
                    TraceKind::Deploy {
                        app: app_id,
                        component: component as u32,
                        node: node.as_raw(),
                    },
                );
            }
        }
        Ok(())
    }

    /// Binds an additional horizontal replica of a component on `node`
    /// (elastic scale-up). The replica coexists with the primary pod;
    /// routing spreads stage tasks across primary + replicas. No-op
    /// error-free duplicate binds are not deduplicated — callers pick a
    /// node not already hosting the component.
    ///
    /// # Errors
    ///
    /// Propagates cluster errors.
    pub fn scale_up(
        &mut self,
        app_id: u16,
        app: &Application,
        component: usize,
        node: NodeId,
    ) -> Result<(), ScheduleError> {
        let target = self.cluster_for(node)?;
        let spec = Self::pod_spec(app, component);
        let cluster =
            self.federation.cluster_mut(target).ok_or(ScheduleError::UnknownCluster(target))?;
        let pod = cluster.bind(spec, node);
        self.binds += 1;
        self.replica_pods.entry((app_id, component)).or_default().push((target, pod, node));
        self.obs.counter_inc("pod_binds", "");
        self.obs.trace(
            self.clock_us,
            TraceKind::Deploy { app: app_id, component: component as u32, node: node.as_raw() },
        );
        Ok(())
    }

    /// Evicts the newest replica of a component (elastic scale-down),
    /// returning the node it ran on, or `None` when the component has
    /// no replicas (the primary pod is never scaled away). The eviction
    /// is bookkeeping-only with respect to the simulator: tasks already
    /// dispatched to that node — including queued retries — run to
    /// completion, so scaling down never strands in-flight work.
    ///
    /// # Errors
    ///
    /// Propagates cluster errors.
    pub fn scale_down(
        &mut self,
        app_id: u16,
        component: usize,
    ) -> Result<Option<NodeId>, ScheduleError> {
        let Some(replicas) = self.replica_pods.get_mut(&(app_id, component)) else {
            return Ok(None);
        };
        let Some((cl, pod, node)) = replicas.pop() else { return Ok(None) };
        if replicas.is_empty() {
            self.replica_pods.remove(&(app_id, component));
        }
        if !mutation_leaks_scaled_down_pod() {
            let cluster =
                self.federation.cluster_mut(cl).ok_or(ScheduleError::UnknownCluster(cl))?;
            cluster.evict(pod)?;
        }
        Ok(Some(node))
    }

    /// Nodes hosting replicas of a component, in scale-up order.
    pub fn replica_nodes(&self, app: u16, component: usize) -> Vec<NodeId> {
        self.replica_pods
            .get(&(app, component))
            .map(|v| v.iter().map(|(_, _, n)| *n).collect())
            .unwrap_or_default()
    }

    /// Number of live replicas of a component (excluding the primary).
    pub fn replica_count(&self, app: u16, component: usize) -> usize {
        self.replica_pods.get(&(app, component)).map_or(0, Vec::len)
    }

    /// Components (as `(app, component)`) whose pods sit on `node`.
    pub fn components_on(&self, node: NodeId) -> Vec<(u16, usize)> {
        let mut v: Vec<(u16, usize)> =
            self.pods.iter().filter(|(_, (_, _, n))| *n == node).map(|(k, _)| *k).collect();
        v.sort_unstable();
        v
    }

    /// Total CPU millicores requested on a node across the federation.
    pub fn requested_cpu_millis(&self, node: NodeId) -> u32 {
        self.federation.clusters().iter().map(|c| c.requested_cpu_millis(node)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use myrtus_continuum::topology::ContinuumBuilder;
    use myrtus_workload::scenarios;

    fn fixture() -> (myrtus_continuum::topology::Continuum, Application, Placement) {
        let c = ContinuumBuilder::new().build();
        let app = scenarios::telerehab();
        let edge = c.edge()[0];
        let cloud = c.cloud()[0];
        let mut assignment = vec![edge; app.components.len()];
        *assignment.last_mut().expect("non-empty") = cloud;
        (c, app, Placement::new(assignment))
    }

    #[test]
    fn placement_materializes_as_pods() {
        let (c, app, placement) = fixture();
        let mut proxy = DeploymentProxy::new(c.sim());
        proxy.apply_placement(0, &app, &placement).expect("binds");
        assert_eq!(proxy.binds(), app.components.len() as u64);
        assert_eq!(proxy.moves(), 0);
        // Edge components land in the edge cluster, the store in cloud.
        let (edge_cl, ..) = proxy.pod_of(0, 0).expect("bound");
        let (cloud_cl, _, cloud_node) = proxy.pod_of(0, 4).expect("bound");
        assert_ne!(edge_cl, cloud_cl);
        assert_eq!(cloud_node, c.cloud()[0]);
        assert_eq!(proxy.components_on(c.edge()[0]).len(), 4);
    }

    #[test]
    fn rebinding_moves_the_pod_and_frees_requests() {
        let (c, app, placement) = fixture();
        let mut proxy = DeploymentProxy::new(c.sim());
        proxy.apply_placement(0, &app, &placement).expect("binds");
        let before = proxy.requested_cpu_millis(c.edge()[0]);
        proxy.bind_component(0, &app, 2, c.fmdcs()[0]).expect("rebinds");
        assert_eq!(proxy.moves(), 1);
        assert!(proxy.requested_cpu_millis(c.edge()[0]) < before);
        assert!(proxy.requested_cpu_millis(c.fmdcs()[0]) > 0);
        let (_, _, node) = proxy.pod_of(0, 2).expect("bound");
        assert_eq!(node, c.fmdcs()[0]);
    }

    #[test]
    fn rebinding_to_the_same_node_is_a_noop() {
        let (c, app, placement) = fixture();
        let mut proxy = DeploymentProxy::new(c.sim());
        proxy.apply_placement(0, &app, &placement).expect("binds");
        let binds = proxy.binds();
        proxy.bind_component(0, &app, 0, placement.node_of(0)).expect("noop");
        assert_eq!(proxy.binds(), binds);
        assert_eq!(proxy.moves(), 0);
    }

    #[test]
    fn replicas_scale_up_and_down_lifo_without_touching_the_primary() {
        let (c, app, placement) = fixture();
        let mut proxy = DeploymentProxy::new(c.sim());
        proxy.apply_placement(0, &app, &placement).expect("binds");
        let primary = proxy.pod_of(0, 1).expect("bound");
        assert_eq!(proxy.replica_count(0, 1), 0);
        let r1 = c.edge()[1];
        let r2 = c.fmdcs()[0];
        proxy.scale_up(0, &app, 1, r1).expect("scale up");
        proxy.scale_up(0, &app, 1, r2).expect("scale up");
        assert_eq!(proxy.replica_count(0, 1), 2);
        assert_eq!(proxy.replica_nodes(0, 1), vec![r1, r2]);
        assert!(proxy.requested_cpu_millis(r2) > 0);
        // Scale-down pops the newest replica first.
        assert_eq!(proxy.scale_down(0, 1).expect("evicts"), Some(r2));
        assert_eq!(proxy.requested_cpu_millis(r2), 0);
        assert_eq!(proxy.scale_down(0, 1).expect("evicts"), Some(r1));
        assert_eq!(proxy.scale_down(0, 1).expect("empty"), None);
        // The primary pod never moved.
        assert_eq!(proxy.pod_of(0, 1).expect("still bound"), primary);
    }

    #[test]
    fn federation_layers_are_peered_upward() {
        let (c, _, _) = fixture();
        let proxy = DeploymentProxy::new(c.sim());
        assert_eq!(proxy.federation().clusters().len(), 3);
        // Edge cluster members are exactly the edge nodes.
        let edge_cluster = &proxy.federation().clusters()[0];
        assert_eq!(edge_cluster.members().len(), c.edge().len());
    }
}
